//! The planning subsystem (paper §2.2): TD(λ) Q-learning over step pairs.
//!
//! - A state is `<StepID_{i-1}, StepID_i>` — the previous and current step.
//! - An action is `<ToolID_{i+1}, Level_{i+1}>` — the prompt that would be
//!   sent to the reminding subsystem.
//! - Rewards follow the paper: **1000** when the transition completes the
//!   ADL, **100** for an intermediate step prompted at the minimal level,
//!   **50** at the specific level. The paper leaves the wrong-prediction
//!   case implicit; we complete it with **0** so that a prompt that does
//!   not match what the user actually did earns nothing — this is what
//!   makes the greedy policy converge to the user's personal routine.

use coreda_adl::activity::AdlSpec;
use coreda_adl::routine::Routine;
use coreda_adl::step::StepId;
use coreda_adl::tool::ToolId;
use coreda_des::rng::SimRng;
use coreda_rl::algo::{
    DoubleQLearning, DynaQ, Outcome, QLearning, Sarsa, TdConfig, TdControl, WatkinsQLambda,
};
use coreda_rl::policy::{EpsilonGreedy, Policy};
use coreda_rl::schedule::Schedule;
use coreda_rl::space::{ActionId, ProblemShape, StateId};
use coreda_rl::traces::TraceKind;
use serde::{Deserialize, Serialize};

use crate::reminding::{Prompt, ReminderLevel};

/// Bijective mapping between the planner's domain objects and dense RL
/// indices.
///
/// States enumerate every ordered pair over `{idle} ∪ steps`; actions
/// enumerate `tools × levels`.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_adl::step::StepId;
/// use coreda_core::planning::StateEncoder;
///
/// let tea = catalog::tea_making();
/// let enc = StateEncoder::new(&tea);
/// assert_eq!(enc.shape().states(), 25); // (4 steps + idle)²
/// assert_eq!(enc.shape().actions(), 8); // 4 tools × 2 levels
/// let s = enc.state_of(StepId::IDLE, tea.steps()[0].id()).unwrap();
/// assert_eq!(enc.decode_state(s), (StepId::IDLE, tea.steps()[0].id()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateEncoder {
    /// Idle first, then the spec's steps in canonical order.
    step_ids: Vec<StepId>,
    tools: Vec<ToolId>,
}

impl StateEncoder {
    /// Builds the encoder for one ADL.
    #[must_use]
    pub fn new(spec: &AdlSpec) -> Self {
        let mut step_ids = vec![StepId::IDLE];
        step_ids.extend(spec.step_ids());
        let tools = spec.tools().iter().map(coreda_adl::tool::Tool::id).collect();
        StateEncoder { step_ids, tools }
    }

    /// The RL problem dimensions.
    #[must_use]
    pub fn shape(&self) -> ProblemShape {
        let n = self.step_ids.len();
        ProblemShape::new(n * n, self.tools.len() * ReminderLevel::ALL.len())
    }

    fn step_index(&self, id: StepId) -> Option<usize> {
        self.step_ids.iter().position(|&s| s == id)
    }

    /// Encodes a `(previous, current)` step pair, or `None` if either step
    /// does not belong to this ADL.
    #[must_use]
    pub fn state_of(&self, prev: StepId, cur: StepId) -> Option<StateId> {
        let p = self.step_index(prev)?;
        let c = self.step_index(cur)?;
        Some(StateId::new(p * self.step_ids.len() + c))
    }

    /// Decodes a state back to its step pair.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range for this encoder.
    #[must_use]
    pub fn decode_state(&self, s: StateId) -> (StepId, StepId) {
        let n = self.step_ids.len();
        assert!(s.index() < n * n, "state {s} out of range");
        (self.step_ids[s.index() / n], self.step_ids[s.index() % n])
    }

    /// Encodes a prompt, or `None` if the tool is not part of this ADL.
    #[must_use]
    pub fn action_of(&self, prompt: Prompt) -> Option<ActionId> {
        let t = self.tools.iter().position(|&tool| tool == prompt.tool)?;
        let l = match prompt.level {
            ReminderLevel::Minimal => 0,
            ReminderLevel::Specific => 1,
        };
        Some(ActionId::new(t * 2 + l))
    }

    /// Decodes an action back to a prompt.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range for this encoder.
    #[must_use]
    pub fn decode_action(&self, a: ActionId) -> Prompt {
        assert!(a.index() < self.tools.len() * 2, "action {a} out of range");
        Prompt {
            tool: self.tools[a.index() / 2],
            level: if a.index().is_multiple_of(2) {
                ReminderLevel::Minimal
            } else {
                ReminderLevel::Specific
            },
        }
    }

    /// The tools this encoder prompts over.
    #[must_use]
    pub fn tools(&self) -> &[ToolId] {
        &self.tools
    }

    /// The step-id universe (idle first, then the spec's steps).
    #[must_use]
    pub fn step_ids(&self) -> &[StepId] {
        &self.step_ids
    }
}

/// The paper's reward constants, overridable for the reward-shape
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Reward for a prompt matching the transition that completes the ADL.
    pub terminal: f64,
    /// Reward for a matching intermediate prompt at the minimal level.
    pub minimal: f64,
    /// Reward for a matching intermediate prompt at the specific level.
    pub specific: f64,
    /// Reward when the prompt does not match what the user did.
    pub mismatch: f64,
}

impl Default for RewardConfig {
    /// The values from §2.2 of the paper.
    fn default() -> Self {
        RewardConfig { terminal: 1000.0, minimal: 100.0, specific: 50.0, mismatch: 0.0 }
    }
}

impl RewardConfig {
    /// The reward for taking `prompt` when the user actually moved to
    /// `actual_next`, with `is_terminal` saying whether that completed the
    /// ADL.
    #[must_use]
    pub fn reward(&self, prompt: Prompt, actual_next: StepId, is_terminal: bool) -> f64 {
        let matched = actual_next.tool() == Some(prompt.tool);
        if !matched {
            return self.mismatch;
        }
        if is_terminal {
            self.terminal
        } else {
            match prompt.level {
                ReminderLevel::Minimal => self.minimal,
                ReminderLevel::Specific => self.specific,
            }
        }
    }
}

/// Which TD-control algorithm the planner runs (the paper uses
/// [`LearnerKind::WatkinsQLambda`]; the others exist for the ablation
/// studies and for deployments that prefer their trade-offs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LearnerKind {
    /// The paper's TD(λ) Q-learning (uses `lambda` and `trace_kind`).
    WatkinsQLambda,
    /// One-step Q-learning.
    QLearning,
    /// One-step SARSA (on-policy).
    Sarsa,
    /// Double Q-learning (bias-corrected; seeded from the planner seed).
    DoubleQ {
        /// Seed for the internal coin.
        seed: u64,
    },
    /// Dyna-Q model replay — the "fast learning" future-work item.
    DynaQ {
        /// Planning updates per real transition.
        planning_steps: usize,
        /// Seed for model sampling.
        seed: u64,
    },
}

/// The planner's learner, dispatching over the configured algorithm.
#[derive(Debug, Clone)]
enum Learner {
    WatkinsQLambda(WatkinsQLambda),
    QLearning(QLearning),
    Sarsa(Sarsa),
    DoubleQ(DoubleQLearning),
    DynaQ(DynaQ),
}

impl Learner {
    fn as_dyn(&self) -> &dyn TdControl {
        match self {
            Learner::WatkinsQLambda(l) => l,
            Learner::QLearning(l) => l,
            Learner::Sarsa(l) => l,
            Learner::DoubleQ(l) => l,
            Learner::DynaQ(l) => l,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn TdControl {
        match self {
            Learner::WatkinsQLambda(l) => l,
            Learner::QLearning(l) => l,
            Learner::Sarsa(l) => l,
            Learner::DoubleQ(l) => l,
            Learner::DynaQ(l) => l,
        }
    }
}

/// Hyper-parameters of the planning subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanningConfig {
    /// The TD-control algorithm to run.
    pub learner: LearnerKind,
    /// Learning-rate schedule (per observed transition).
    pub alpha: Schedule,
    /// Discount factor (the paper's "converge factor" β).
    pub gamma: f64,
    /// Eligibility-trace decay λ.
    pub lambda: f64,
    /// Trace refresh rule.
    pub trace_kind: TraceKind,
    /// Exploration schedule (per training episode).
    pub epsilon: Schedule,
    /// Reward constants.
    pub reward: RewardConfig,
}

impl Default for PlanningConfig {
    /// Defaults calibrated so that learning converges on the paper's
    /// Figure 4 time-scale (≥95 % within ~50 episodes, ≥98 % within
    /// ~90–100 on clean data). A moderate γ keeps the mismatch action's
    /// bootstrapped value (`γ·V(s')`) well below a matching prompt's
    /// (`100 + γ·V(s')`), so one lucky early exploration cannot lock in a
    /// wrong greedy action for long.
    fn default() -> Self {
        PlanningConfig {
            learner: LearnerKind::WatkinsQLambda,
            // Decaying per-update learning rate: high early for fast
            // acquisition, low late so noisy bootstraps stop flipping the
            // greedy action.
            alpha: Schedule::exponential(0.4, 0.997, 0.15),
            gamma: 0.05,
            lambda: 0.8,
            trace_kind: TraceKind::Replacing,
            epsilon: Schedule::constant(0.35),
            reward: RewardConfig::default(),
        }
    }
}

/// The planning subsystem: learns a user's routine and predicts the next
/// step as a [`Prompt`].
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_adl::routine::Routine;
/// use coreda_core::planning::{PlanningConfig, PlanningSubsystem};
/// use coreda_des::rng::SimRng;
///
/// let tea = catalog::tea_making();
/// let routine = Routine::canonical(&tea);
/// let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
/// let mut rng = SimRng::seed_from(1);
/// for _ in 0..200 {
///     planner.train_episode(routine.steps(), &mut rng);
/// }
/// assert_eq!(planner.accuracy_vs_routine(&routine), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PlanningSubsystem {
    encoder: StateEncoder,
    learner: Learner,
    policy: EpsilonGreedy,
    reward: RewardConfig,
    terminal_step: StepId,
    episodes_trained: u64,
    /// Reusable filtered-sequence buffer so per-episode training does not
    /// allocate (the fleet engine trains hundreds of episodes per job).
    scratch: Vec<StepId>,
}

impl PlanningSubsystem {
    /// Creates a planner for one ADL.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (λ or γ out of range).
    #[must_use]
    pub fn new(spec: &AdlSpec, cfg: PlanningConfig) -> Self {
        let encoder = StateEncoder::new(spec);
        let td = TdConfig::new(cfg.alpha, cfg.gamma);
        let shape = encoder.shape();
        let learner = match cfg.learner {
            LearnerKind::WatkinsQLambda => Learner::WatkinsQLambda(WatkinsQLambda::new(
                shape,
                td,
                cfg.lambda,
                cfg.trace_kind,
            )),
            LearnerKind::QLearning => Learner::QLearning(QLearning::new(shape, td)),
            LearnerKind::Sarsa => Learner::Sarsa(Sarsa::new(shape, td)),
            LearnerKind::DoubleQ { seed } => {
                Learner::DoubleQ(DoubleQLearning::new(shape, td, seed))
            }
            LearnerKind::DynaQ { planning_steps, seed } => {
                Learner::DynaQ(DynaQ::new(shape, td, planning_steps, seed))
            }
        };
        PlanningSubsystem {
            encoder,
            learner,
            policy: EpsilonGreedy::new(cfg.epsilon),
            reward: cfg.reward,
            terminal_step: spec.terminal_step(),
            episodes_trained: 0,
            scratch: Vec::new(),
        }
    }

    /// The encoder in use.
    #[must_use]
    pub const fn encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// Number of training episodes consumed so far.
    #[must_use]
    pub const fn episodes_trained(&self) -> u64 {
        self.episodes_trained
    }

    /// Trains on one complete StepID sequence ("one training sample is a
    /// complete process of an ADL"). Idle events are skipped — they carry
    /// no routine information — and steps foreign to this ADL are ignored.
    ///
    /// Returns the number of transitions learned from.
    pub fn train_episode(&mut self, steps: &[StepId], rng: &mut SimRng) -> usize {
        let ep = self.episodes_trained;
        self.episodes_trained += 1;
        let mut seq = std::mem::take(&mut self.scratch);
        seq.clear();
        seq.extend(
            steps
                .iter()
                .copied()
                .filter(|s| !s.is_idle() && self.encoder.step_index(*s).is_some()),
        );
        if seq.len() < 2 {
            self.scratch = seq;
            return 0;
        }
        self.learner.as_dyn_mut().begin_episode();
        let mut prev = StepId::IDLE;
        let mut learned = 0;
        for i in 0..seq.len() - 1 {
            let cur = seq[i];
            let next = seq[i + 1];
            let s = self.encoder.state_of(prev, cur).expect("filtered to known steps");
            let a = self.policy.select(self.learner.as_dyn().q(), s, ep, rng);
            let prompt = self.encoder.decode_action(a);
            // The MDP terminates only when the terminal step is reached
            // *and it ends the recording*. A sequence that merely stops
            // earlier (a missed detection truncated it) still bootstraps
            // from its successor state; and a mid-episode visit to the
            // terminal tool (a wrong grab the user then corrected) is an
            // ordinary transition, not a completion — crediting it with
            // the 1000 terminal reward would teach the planner to prompt
            // the terminal tool early.
            let is_terminal = next == self.terminal_step && i + 2 == seq.len();
            let r = self.reward.reward(prompt, next, is_terminal);
            if is_terminal {
                self.learner.as_dyn_mut().observe(s, a, r, Outcome::Terminal);
            } else {
                let s2 = self.encoder.state_of(cur, next).expect("filtered to known steps");
                let a2 = if i + 2 == seq.len() {
                    // Last observed transition of a truncated recording:
                    // no further action will be taken this episode, so
                    // bootstrap as if continuing greedily.
                    self.learner.as_dyn().q().greedy_action(s2)
                } else {
                    self.policy.select(self.learner.as_dyn().q(), s2, ep, rng)
                };
                self.learner.as_dyn_mut().observe(
                    s,
                    a,
                    r,
                    Outcome::Continue { next_state: s2, next_action: a2 },
                );
            }
            prev = cur;
            learned += 1;
        }
        self.scratch = seq;
        learned
    }

    /// The greedy prompt for the state `(prev, cur)`, or `None` if either
    /// step is foreign to this ADL.
    #[must_use]
    pub fn predict(&self, prev: StepId, cur: StepId) -> Option<Prompt> {
        let s = self.encoder.state_of(prev, cur)?;
        Some(self.encoder.decode_action(self.learner.as_dyn().q().greedy_action(s)))
    }

    /// Convenience: just the predicted next tool.
    #[must_use]
    pub fn predict_tool(&self, prev: StepId, cur: StepId) -> Option<ToolId> {
        self.predict(prev, cur).map(|p| p.tool)
    }

    /// How confident the planner is in its prediction at `(prev, cur)`:
    /// the normalised value gap between the best tool and the best
    /// *other* tool, in `[0, 1]`.
    ///
    /// 0 means the state is untrained or ambiguous (several tools look
    /// equally good); values near 1 mean the routine is unambiguous
    /// there. The live system can gate reminders on this, so an
    /// unconverged planner does not nag the user with guesses.
    #[must_use]
    pub fn prediction_confidence(&self, prev: StepId, cur: StepId) -> Option<f64> {
        let s = self.encoder.state_of(prev, cur)?;
        let row = self.learner.as_dyn().q().row(s);
        // Collapse the two levels: a tool's strength is its better level.
        let mut per_tool: Vec<f64> = Vec::with_capacity(row.len() / 2);
        for pair in row.chunks(2) {
            per_tool.push(pair.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
        let mut best = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &v in &per_tool {
            if v > best {
                second = best;
                best = v;
            } else if v > second {
                second = v;
            }
        }
        if !best.is_finite() || best <= 0.0 {
            return Some(0.0);
        }
        Some(((best - second.max(0.0)) / best).clamp(0.0, 1.0))
    }

    /// Fraction of `routine`'s transitions on which the greedy policy
    /// prompts the correct next tool (the paper's "converging condition"
    /// metric behind Figure 4).
    #[must_use]
    pub fn accuracy_vs_routine(&self, routine: &Routine) -> f64 {
        // Either level of the correct tool counts as a hit, so compare
        // tools rather than raw action ids.
        let transitions = routine.transitions();
        if transitions.is_empty() {
            return 1.0;
        }
        let hits = transitions
            .iter()
            .filter(|&&(prev, cur, next)| {
                self.predict_tool(prev, cur) == next.tool()
            })
            .count();
        hits as f64 / transitions.len() as f64
    }

    /// Read access to the learned Q-values (diagnostics and tests).
    #[must_use]
    pub fn q_table(&self) -> &coreda_rl::qtable::QTable {
        self.learner.as_dyn().q()
    }

    /// Overwrites the learned values and episode counter from a
    /// persistence snapshot. Used by [`crate::persistence`]; `values`
    /// must be in row-major `(state, action)` order.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the encoder's table size.
    pub fn restore_values(&mut self, values: &[f64], episodes_trained: u64) {
        let shape = self.encoder.shape();
        assert_eq!(values.len(), shape.table_len(), "value blob has the wrong size");
        let q = self.learner.as_dyn_mut().q_mut();
        let mut it = values.iter();
        for s in shape.state_ids() {
            for a in shape.action_ids() {
                q.set(s, a, *it.next().expect("length checked above"));
            }
        }
        self.episodes_trained = episodes_trained;
    }

    /// Captures the planner's complete resumable learned state, or `None`
    /// for learner kinds other than [`LearnerKind::WatkinsQLambda`].
    ///
    /// Only the paper's default learner supports checkpointing: the
    /// ablation learners with internal RNGs (`DoubleQ`, `DynaQ`) would
    /// need their private stream positions serialized too, and nothing in
    /// the metro/fuzzing paths instantiates them.
    #[must_use]
    pub fn capture_learned(&self) -> Option<LearnedState> {
        let Learner::WatkinsQLambda(l) = &self.learner else {
            return None;
        };
        Some(LearnedState {
            values: l.q().values().collect(),
            visits: l.q().visit_counts().collect(),
            traces: l.trace_entries().to_vec(),
            updates: l.updates(),
            episodes_trained: self.episodes_trained,
        })
    }

    /// Whether `state` is exactly what [`capture_learned`] would return
    /// right now, compared without allocating. Fleet restores use this to
    /// keep homes on a shared trained planner instead of splitting off a
    /// per-home copy whose contents would be identical anyway.
    ///
    /// `false` for learner kinds that cannot capture at all (they could
    /// never have produced `state`).
    ///
    /// [`capture_learned`]: PlanningSubsystem::capture_learned
    #[must_use]
    pub fn learned_matches(&self, state: &LearnedState) -> bool {
        let Learner::WatkinsQLambda(l) = &self.learner else {
            return false;
        };
        self.episodes_trained == state.episodes_trained
            && l.updates() == state.updates
            && l.trace_entries() == state.traces.as_slice()
            && l.q().values().eq(state.values.iter().copied())
            && l.q().visit_counts().eq(state.visits.iter().copied())
    }

    /// Restores state captured by [`PlanningSubsystem::capture_learned`]
    /// onto a planner freshly built from the same spec and config.
    ///
    /// Unlike [`PlanningSubsystem::restore_values`] (the persistence
    /// path, which deliberately drops visit counts and traces), this is a
    /// full-fidelity restore: the resumed planner's subsequent updates
    /// are bit-identical to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Returns an error if the planner's learner is not
    /// [`LearnerKind::WatkinsQLambda`].
    ///
    /// # Panics
    ///
    /// Panics if the state's table dimensions do not match this planner's
    /// encoder.
    pub fn apply_learned(&mut self, state: &LearnedState) -> Result<(), &'static str> {
        let Learner::WatkinsQLambda(l) = &mut self.learner else {
            return Err("checkpoint restore is only supported for the WatkinsQLambda learner");
        };
        l.restore_state(&state.values, &state.visits, &state.traces, state.updates);
        self.episodes_trained = state.episodes_trained;
        Ok(())
    }

    /// Observe a single live transition (online learning while the system
    /// is deployed). `prev → cur` is the state the user was in, `next` the
    /// step they moved to, `prompt` what the system displayed (or would
    /// have).
    pub fn observe_transition(
        &mut self,
        prev: StepId,
        cur: StepId,
        next: StepId,
        prompt: Prompt,
        completed: bool,
    ) {
        let (Some(s), Some(a)) = (self.encoder.state_of(prev, cur), self.encoder.action_of(prompt))
        else {
            return;
        };
        let r = self.reward.reward(prompt, next, completed && next == self.terminal_step);
        match self.encoder.state_of(cur, next) {
            Some(s2) if !completed => {
                let a2 = self.learner.as_dyn().q().greedy_action(s2);
                self.learner
                    .as_dyn_mut()
                    .observe(s, a, r, Outcome::Continue { next_state: s2, next_action: a2 });
            }
            _ => self.learner.as_dyn_mut().observe(s, a, r, Outcome::Terminal),
        }
    }
}

/// The planner's complete resumable learned state, as captured by
/// [`PlanningSubsystem::capture_learned`]: Q-values with visit counts,
/// live eligibility traces, the TD update counter (which positions the
/// learning-rate schedule) and the episode counter (which positions the
/// exploration schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedState {
    /// Q-values in state-major order.
    pub values: Vec<f64>,
    /// Visit counts in state-major order.
    pub visits: Vec<u64>,
    /// Live eligibility-trace entries in insertion order.
    pub traces: Vec<(StateId, ActionId, f64)>,
    /// TD updates consumed so far.
    pub updates: u64,
    /// Training episodes consumed so far.
    pub episodes_trained: u64,
}

/// Measures a learning curve by training a fresh planner and evaluating
/// accuracy against a reference routine after each episode.
///
/// Returns per-episode accuracies (length = `episodes.len()`).
pub fn learning_curve(
    spec: &AdlSpec,
    cfg: PlanningConfig,
    episodes: &[Vec<StepId>],
    reference: &Routine,
    rng: &mut SimRng,
) -> Vec<f64> {
    let mut planner = PlanningSubsystem::new(spec, cfg);
    let mut out = Vec::with_capacity(episodes.len());
    for ep in episodes {
        planner.train_episode(ep, rng);
        out.push(planner.accuracy_vs_routine(reference));
    }
    out
}

/// Mean learning curve over `seeds` independently seeded runs, one fleet
/// job per seed. Each run draws its exploration stream from a
/// counter-based seed ([`crate::fleet::derive_seed`]), so the result is
/// identical at any worker count.
pub fn learning_curve_fleet(
    engine: crate::fleet::FleetEngine,
    spec: &AdlSpec,
    cfg: PlanningConfig,
    episodes: &[Vec<StepId>],
    reference: &Routine,
    seeds: usize,
    base_seed: u64,
) -> Vec<f64> {
    let curves = engine.map((0..seeds).collect(), |s| {
        let seed = crate::fleet::derive_seed(base_seed, "learning-curve", s as u64);
        let mut rng = SimRng::seed_from(seed);
        learning_curve(spec, cfg, episodes, reference, &mut rng)
    });
    crate::metrics::mean_curve(&curves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_adl::activity::catalog;

    fn tea_planner() -> (AdlSpec, Routine, PlanningSubsystem) {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
        (tea, routine, planner)
    }

    #[test]
    fn encoder_roundtrips_states_and_actions() {
        let tea = catalog::tea_making();
        let enc = StateEncoder::new(&tea);
        let ids = tea.step_ids();
        for &prev in std::iter::once(&StepId::IDLE).chain(ids.iter()) {
            for &cur in std::iter::once(&StepId::IDLE).chain(ids.iter()) {
                let s = enc.state_of(prev, cur).unwrap();
                assert_eq!(enc.decode_state(s), (prev, cur));
            }
        }
        for a in enc.shape().action_ids() {
            let prompt = enc.decode_action(a);
            assert_eq!(enc.action_of(prompt), Some(a));
        }
    }

    #[test]
    fn encoder_rejects_foreign_steps() {
        let tea = catalog::tea_making();
        let enc = StateEncoder::new(&tea);
        assert_eq!(enc.state_of(StepId::from_raw(77), StepId::IDLE), None);
        assert_eq!(
            enc.action_of(Prompt { tool: ToolId::new(77), level: ReminderLevel::Minimal }),
            None
        );
    }

    #[test]
    fn reward_matches_paper_constants() {
        let r = RewardConfig::default();
        let tea = catalog::tea_making();
        let cup = tea.terminal_step();
        let prompt_min = Prompt { tool: cup.tool().unwrap(), level: ReminderLevel::Minimal };
        let prompt_spec = Prompt { tool: cup.tool().unwrap(), level: ReminderLevel::Specific };
        assert_eq!(r.reward(prompt_min, cup, true), 1000.0);
        assert_eq!(r.reward(prompt_min, cup, false), 100.0);
        assert_eq!(r.reward(prompt_spec, cup, false), 50.0);
        // Mismatched prompt earns nothing.
        let wrong = Prompt { tool: ToolId::new(catalog::POT), level: ReminderLevel::Minimal };
        assert_eq!(r.reward(wrong, cup, true), 0.0);
        // A prompt can never match idleness.
        assert_eq!(r.reward(prompt_min, StepId::IDLE, false), 0.0);
    }

    #[test]
    fn planner_learns_the_canonical_routine() {
        let (_, routine, mut planner) = tea_planner();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..300 {
            planner.train_episode(routine.steps(), &mut rng);
        }
        assert_eq!(planner.accuracy_vs_routine(&routine), 1.0);
        assert_eq!(planner.episodes_trained(), 300);
    }

    #[test]
    fn planner_learns_a_personalised_routine() {
        // Mr. Tanaka pours water *before* fetching tea leaves.
        let tea = catalog::tea_making();
        let ids = tea.step_ids();
        let personal = Routine::new(&tea, vec![ids[1], ids[0], ids[2], ids[3]]);
        let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
        let mut rng = SimRng::seed_from(2);
        for _ in 0..300 {
            planner.train_episode(personal.steps(), &mut rng);
        }
        assert_eq!(planner.accuracy_vs_routine(&personal), 1.0);
        // And it is his routine, not the canonical one, that is predicted.
        let canonical = Routine::canonical(&tea);
        assert!(planner.accuracy_vs_routine(&canonical) < 1.0);
    }

    #[test]
    fn converged_policy_prefers_minimal_prompts() {
        // The 100-vs-50 reward asymmetry should drive the greedy action to
        // the minimal level ("exercise his/her brain") at every
        // *intermediate* transition. At the transition into the terminal
        // step the paper's reward is 1000 for either level, so the levels
        // are indistinguishable there and only the tool is determined.
        let (_, routine, mut planner) = tea_planner();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..600 {
            planner.train_episode(routine.steps(), &mut rng);
        }
        let terminal = routine.last();
        for &(prev, cur, next) in &routine.transitions() {
            if next == terminal {
                continue;
            }
            let prompt = planner.predict(prev, cur).unwrap();
            assert_eq!(
                prompt.level,
                ReminderLevel::Minimal,
                "state ({prev}, {cur}) should prompt minimally"
            );
        }
    }

    #[test]
    fn idle_events_are_skipped_in_training() {
        let (_, routine, mut planner) = tea_planner();
        let mut rng = SimRng::seed_from(4);
        let mut noisy: Vec<StepId> = Vec::new();
        for &s in routine.steps() {
            noisy.push(StepId::IDLE);
            noisy.push(s);
        }
        let learned = planner.train_episode(&noisy, &mut rng);
        assert_eq!(learned, 3, "idles must be filtered: 4 steps → 3 transitions");
    }

    #[test]
    fn too_short_sequences_are_ignored() {
        let (tea, _, mut planner) = tea_planner();
        let mut rng = SimRng::seed_from(5);
        assert_eq!(planner.train_episode(&[], &mut rng), 0);
        assert_eq!(planner.train_episode(&[tea.steps()[0].id()], &mut rng), 0);
        assert_eq!(planner.episodes_trained(), 2, "episodes still counted for schedules");
    }

    #[test]
    fn predict_returns_none_for_foreign_state() {
        let (_, _, planner) = tea_planner();
        assert_eq!(planner.predict(StepId::from_raw(77), StepId::IDLE), None);
    }

    #[test]
    fn online_observation_moves_q_values() {
        let (tea, routine, mut planner) = tea_planner();
        let ids = tea.step_ids();
        let prompt = Prompt { tool: ids[1].tool().unwrap(), level: ReminderLevel::Minimal };
        let before = planner.q_table().clone();
        planner.observe_transition(StepId::IDLE, ids[0], ids[1], prompt, false);
        assert_ne!(&before, planner.q_table());
        let _ = routine;
    }

    #[test]
    fn capture_apply_resumes_training_identically() {
        let (_, routine, mut live) = tea_planner();
        let (_, _, mut ghost) = tea_planner();
        let mut live_rng = SimRng::seed_from(7);
        let mut ghost_rng = SimRng::seed_from(7);
        for _ in 0..40 {
            live.train_episode(routine.steps(), &mut live_rng);
            ghost.train_episode(routine.steps(), &mut ghost_rng);
        }
        let state = live.capture_learned().expect("default learner is Watkins");
        let (tea, _, _) = tea_planner();
        let mut resumed = PlanningSubsystem::new(&tea, PlanningConfig::default());
        resumed.apply_learned(&state).unwrap();
        let (s, b) = live_rng.state_parts();
        let mut resumed_rng = SimRng::from_state_parts(s, b);
        for _ in 0..40 {
            resumed.train_episode(routine.steps(), &mut resumed_rng);
            ghost.train_episode(routine.steps(), &mut ghost_rng);
        }
        let a: Vec<f64> = resumed.q_table().values().collect();
        let e: Vec<f64> = ghost.q_table().values().collect();
        assert_eq!(a, e, "resumed planner diverged from uninterrupted ghost");
        assert_eq!(resumed.episodes_trained(), ghost.episodes_trained());
    }

    #[test]
    fn apply_learned_rejects_non_watkins() {
        let tea = catalog::tea_making();
        let cfg = PlanningConfig { learner: LearnerKind::QLearning, ..PlanningConfig::default() };
        let mut planner = PlanningSubsystem::new(&tea, cfg);
        assert_eq!(planner.capture_learned(), None);
        let (_, _, watkins) = tea_planner();
        let state = watkins.capture_learned().unwrap();
        assert!(planner.apply_learned(&state).is_err());
    }

    #[test]
    fn every_learner_kind_learns_the_routine() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        for kind in [
            LearnerKind::WatkinsQLambda,
            LearnerKind::QLearning,
            LearnerKind::Sarsa,
            LearnerKind::DoubleQ { seed: 7 },
            LearnerKind::DynaQ { planning_steps: 10, seed: 7 },
        ] {
            let cfg = PlanningConfig { learner: kind, ..PlanningConfig::default() };
            let mut planner = PlanningSubsystem::new(&tea, cfg);
            let mut rng = SimRng::seed_from(44);
            for _ in 0..400 {
                planner.train_episode(routine.steps(), &mut rng);
            }
            assert_eq!(
                planner.accuracy_vs_routine(&routine),
                1.0,
                "{kind:?} should learn the routine"
            );
        }
    }

    #[test]
    fn learning_curve_rises_to_one() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let episodes: Vec<Vec<StepId>> = (0..400).map(|_| routine.steps().to_vec()).collect();
        let mut rng = SimRng::seed_from(6);
        let curve = learning_curve(&tea, PlanningConfig::default(), &episodes, &routine, &mut rng);
        assert_eq!(curve.len(), 400);
        assert_eq!(*curve.last().unwrap(), 1.0);
        // Accuracy starts low: an untrained table predicts the first tool
        // (tie-break) everywhere.
        assert!(curve[0] < 1.0);
    }

    #[test]
    fn learning_curve_fleet_is_worker_count_invariant() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let episodes: Vec<Vec<StepId>> = (0..60).map(|_| routine.steps().to_vec()).collect();
        let serial = learning_curve_fleet(
            crate::fleet::FleetEngine::new(1),
            &tea,
            PlanningConfig::default(),
            &episodes,
            &routine,
            4,
            2007,
        );
        let parallel = learning_curve_fleet(
            crate::fleet::FleetEngine::new(8),
            &tea,
            PlanningConfig::default(),
            &episodes,
            &routine,
            4,
            2007,
        );
        assert_eq!(serial, parallel, "mean curve must not depend on worker count");
        assert!(*parallel.last().unwrap() > 0.9);
    }
}
