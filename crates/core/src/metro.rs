//! Metro-scale serving: many homes, one engine.
//!
//! The ROADMAP north star is a base-station fleet serving millions of
//! users; this module is the serving-side counterpart of the PR-1
//! training fleet. [`run_scale`] simulates N independent households —
//! each a full CoReDA deployment: per-activity [`Coreda`] systems with
//! their own sensornets and planners, plus a home-wide
//! [`SessionTracker`] — for a wall of simulated hours, sharded across
//! [`FleetEngine`] workers.
//!
//! Two engine modes run the *same* per-instant pipeline logic:
//!
//! - [`EngineKind::Wheel`] (the metro engine): each shard multiplexes its
//!   homes over one timing-wheel [`Simulator`]; homes sleep through quiet
//!   stretches and wake event-driven — at the next episode start, the
//!   next 100 ms pipeline tick of a running episode, or the session
//!   tracker's idle-close deadline.
//! - [`EngineKind::Heap`] (the seed baseline): dense 10 Hz polling of
//!   every home across the whole horizon on the original binary-heap
//!   queue — what the pre-metro code would have done.
//!
//! Both produce bit-identical [`HomeStats`] because quiet instants draw
//! no randomness, and results are bit-identical at any `jobs` count
//! because every random stream is counter-derived per home
//! ([`derive_seed`]) and homes never interact.
//!
//! Home state is laid out struct-of-arrays: each worker owns a [`Shard`]
//! of parallel vectors indexed by shard-local home id (the per-activity
//! [`Coreda`] systems live in one home-major arena), and everything
//! immutable — ADL specs, trained planner templates, the reminding
//! renderer, the session-tracker name tables — is built once per run in
//! a [`FleetCtx`] and shared by reference or `Arc`. The wake loop also
//! batches every wake sharing an instant and sweeps the due homes in
//! ascending index order, so same-instant work walks the arenas in
//! memory order. See DESIGN.md "Memory layout & cache locality" for the
//! ownership map and the bytes-per-home budget.

use std::sync::Arc;

use coreda_adl::activity::catalog;
use coreda_adl::activity::AdlSpec;
use coreda_adl::patient::PatientProfile;
use coreda_adl::routine::Routine;
use coreda_des::rng::SimRng;
use coreda_des::sim::Simulator;
use coreda_des::time::{SimDuration, SimTime};

use crate::checkpoint::{
    compact, config_digest, delta_checkpoint, CheckpointError, DeltaCheckpoint, HomeCheckpoint,
    MetroCheckpoint,
};
use crate::escalation::{CareEvent, CareEventKind, CareMonitor, CareOutput, CarePolicy, FleetAnalytics};
use crate::fleet::{default_jobs, derive_seed, FleetEngine};
use crate::live::StochasticBehavior;
use crate::planning::PlanningSubsystem;
use crate::reminding::RemindingSubsystem;
use crate::sessions::{SessionEvent, SessionTracker};
use crate::system::{Coreda, CoredaConfig, LiveEpisode};
use crate::telemetry::{Ctr, HomeRecorder, Telemetry, TraceKind};
use crate::wal::{self, WalRecord};

/// Which event queue drives the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Timing-wheel queue, event-driven wakes (the metro engine).
    Wheel,
    /// Binary-heap queue, dense 10 Hz polling (the seed baseline).
    Heap,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Wheel => "wheel",
            EngineKind::Heap => "heap",
        })
    }
}

/// How the wake loop orders same-window work. Both modes produce
/// bit-identical output — reports, telemetry, WAL, checkpoints, care
/// logs, served streams — because the reorder is applied only across
/// *distinct homes*, which never interact; the mode is excluded from
/// [`config_digest`] like `jobs` and `engine`, so checkpoints move
/// freely between modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Epoch-tiled locality scheduling (the default): all wakes inside a
    /// bounded near-instant window ([`EPOCH_MS`]) drain in one pass and
    /// are served grouped by home in ascending arena order, so a 100k-home
    /// sweep touches each due home's state once per window instead of
    /// once per instant.
    Epoch,
    /// Strict global `(due, seq)` order, batching only wakes that share
    /// one exact instant — the reference sweep the differential suite
    /// holds epoch tiling against.
    Strict,
}

impl std::fmt::Display for SchedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedMode::Epoch => "epoch",
            SchedMode::Strict => "strict",
        })
    }
}

/// Configuration of a metro-scale serving run.
#[derive(Debug, Clone)]
pub struct MetroConfig {
    /// Number of independent households.
    pub homes: usize,
    /// Simulated wall of time to serve.
    pub horizon: SimDuration,
    /// Base seed; every home derives its own counter-based streams.
    pub seed: u64,
    /// Worker threads to shard homes across (results are identical at
    /// any count).
    pub jobs: usize,
    /// Queue/scheduling mode.
    pub engine: EngineKind,
    /// Shortest quiet gap between a home's episodes.
    pub gap_min: SimDuration,
    /// Longest quiet gap between a home's episodes.
    pub gap_max: SimDuration,
    /// Per-system configuration (radio, thresholds, planner...).
    pub system: CoredaConfig,
    /// Offline training episodes for the per-activity planner templates.
    pub train_episodes: usize,
    /// Session-tracker idle-close window. Gaps shorter than this leave
    /// the previous session open into the next episode, producing
    /// cross-activity flags and abandoned closes — deliberate overlap.
    pub idle_close: SimDuration,
    /// Wake-ordering mode. Like `jobs` and `engine`, a pure performance
    /// knob: results are bit-identical either way.
    pub sched: SchedMode,
}

impl Default for MetroConfig {
    fn default() -> Self {
        MetroConfig {
            homes: 16,
            horizon: SimDuration::from_secs(1800),
            seed: 2007,
            jobs: default_jobs(),
            engine: EngineKind::Wheel,
            gap_min: SimDuration::from_secs(60),
            gap_max: SimDuration::from_secs(240),
            system: CoredaConfig::default(),
            train_episodes: 150,
            idle_close: SimDuration::from_secs(120),
            sched: SchedMode::Epoch,
        }
    }
}

/// What one home did over the horizon. Identical across engines and at
/// any worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HomeStats {
    /// Live episodes begun.
    pub episodes_started: u64,
    /// Episodes the patient finished.
    pub episodes_completed: u64,
    /// Reminders issued.
    pub reminders: u64,
    /// Praises issued.
    pub praises: u64,
    /// Activity sessions the tracker opened.
    pub sessions_started: u64,
    /// Sessions closed with the terminal tool seen.
    pub sessions_completed: u64,
    /// Sessions closed without it.
    pub sessions_abandoned: u64,
    /// Foreign-tool-use flags raised.
    pub cross_activity_flags: u64,
    /// 100 ms pipeline ticks executed (the logical serving work — the
    /// same count whichever engine ran them).
    pub pipeline_ticks: u64,
    /// Total sensor-node energy consumed, in microjoules.
    pub energy_uj: f64,
}

impl HomeStats {
    /// Fleet-wide totals must survive pathological inputs (a fuzzed or
    /// hand-built report), so aggregation saturates instead of wrapping —
    /// but never *silently*: the return value counts how many fields hit
    /// the clamp, so callers can surface that the totals are lower
    /// bounds rather than exact counts.
    fn absorb(&mut self, other: &HomeStats) -> u64 {
        let mut clamped = 0u64;
        let mut sat = |a: u64, b: u64| {
            let (v, overflowed) = a.overflowing_add(b);
            if overflowed {
                clamped += 1;
                u64::MAX
            } else {
                v
            }
        };
        self.episodes_started = sat(self.episodes_started, other.episodes_started);
        self.episodes_completed = sat(self.episodes_completed, other.episodes_completed);
        self.reminders = sat(self.reminders, other.reminders);
        self.praises = sat(self.praises, other.praises);
        self.sessions_started = sat(self.sessions_started, other.sessions_started);
        self.sessions_completed = sat(self.sessions_completed, other.sessions_completed);
        self.sessions_abandoned = sat(self.sessions_abandoned, other.sessions_abandoned);
        self.cross_activity_flags = sat(self.cross_activity_flags, other.cross_activity_flags);
        self.pipeline_ticks = sat(self.pipeline_ticks, other.pipeline_ticks);
        self.energy_uj += other.energy_uj;
        clamped
    }
}

/// One event on a home's serving tap — the ordered stream a differential
/// harness compares across engines and worker counts (exact per-home
/// equality is a much stronger check than equal counters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TapEvent {
    /// A live episode began for the home's activity `act`.
    EpisodeStarted {
        /// Instant the episode began.
        at: SimTime,
        /// Index into the home's activities.
        act: usize,
    },
    /// A pipeline tick produced something user-visible.
    Tick {
        /// Instant of the tick.
        at: SimTime,
        /// What the tick produced.
        out: crate::system::TickOutcome,
    },
    /// The session tracker recognised an event.
    Session(SessionEvent),
}

/// The result of a [`run_scale`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Homes served.
    pub homes: usize,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Engine that ran the serve.
    pub engine: EngineKind,
    /// Per-home statistics, in home order.
    pub per_home: Vec<HomeStats>,
    /// Raw DES events processed across all shards. Jobs-invariant, but
    /// engine-*dependent* (dense polling pops far more events than
    /// event-driven wakes) — excluded from cross-engine comparisons.
    pub des_events: u64,
    /// Per-home serving taps, in home order. `None` unless the run was
    /// made through [`run_scale_recorded`]; when present, the streams are
    /// bit-identical across engines and worker counts.
    pub events: Option<Vec<Vec<TapEvent>>>,
}

impl ScaleReport {
    /// Fleet-wide totals.
    #[must_use]
    pub fn totals(&self) -> HomeStats {
        self.totals_checked().0
    }

    /// Fleet-wide totals plus the number of fields that saturated while
    /// summing. A non-zero count means some totals are `u64::MAX` lower
    /// bounds, not exact values.
    #[must_use]
    pub fn totals_checked(&self) -> (HomeStats, u64) {
        let mut t = HomeStats::default();
        let mut clamped = 0u64;
        for h in &self.per_home {
            clamped += t.absorb(h);
        }
        (t, clamped)
    }

    /// Total 100 ms pipeline ticks executed.
    #[must_use]
    pub fn pipeline_ticks(&self) -> u64 {
        self.per_home.iter().fold(0u64, |t, h| t.saturating_add(h.pipeline_ticks))
    }

    /// Deterministic summary: no wall-clock, no worker count — byte-
    /// identical for equal configurations at any `jobs`.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let (t, clamped) = self.totals_checked();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "metro-scale serve: {homes} homes x {secs} s ({engine} engine)",
            homes = self.homes,
            secs = self.horizon.as_millis() / 1000,
            engine = self.engine,
        );
        let _ = writeln!(
            out,
            "  episodes: {started} started, {completed} completed",
            started = t.episodes_started,
            completed = t.episodes_completed,
        );
        let _ = writeln!(
            out,
            "  reminders: {rem} issued, {praise} praises",
            rem = t.reminders,
            praise = t.praises,
        );
        let _ = writeln!(
            out,
            "  sessions: {s} started, {c} completed, {a} abandoned, {x} cross-activity flags",
            s = t.sessions_started,
            c = t.sessions_completed,
            a = t.sessions_abandoned,
            x = t.cross_activity_flags,
        );
        let _ = writeln!(
            out,
            "  pipeline ticks: {ticks} ({des} des events)",
            ticks = t.pipeline_ticks,
            des = self.des_events,
        );
        let _ = writeln!(out, "  node energy: {:.3} mJ", t.energy_uj / 1000.0);
        if clamped > 0 {
            let _ = writeln!(
                out,
                "  WARNING: {clamped} total(s) saturated at u64::MAX; counts above are lower bounds",
            );
        }
        out
    }
}

/// An episode in flight in one home.
#[derive(Debug)]
struct RunningEpisode {
    /// Index into the home's systems (which activity).
    act: usize,
    ep: LiveEpisode,
    /// The episode's own counter-derived random stream.
    rng: SimRng,
}

/// The resident label shared by every home. Every profile is
/// statistically identical and the name is display-only (it reaches
/// reminder texts, which scale serving never renders — only per-episode
/// logs do, and metro runs collect none), so one interned label replaces
/// the per-home `format!("home-{id}")` the boxed layout allocated.
const RESIDENT: &str = "resident";

/// Everything immutable a fleet shares, built once per run: ADL specs,
/// canonical routines, trained planner templates, the reminding renderer
/// and the session-tracker prototype (whose activity/name tables are
/// `Arc`-shared, so cloning it per home is two reference bumps). Worker
/// shards borrow it read-only.
struct FleetCtx {
    specs: Vec<Arc<AdlSpec>>,
    routines: Vec<Routine>,
    templates: Vec<Arc<PlanningSubsystem>>,
    reminding: Arc<RemindingSubsystem>,
    tracker_proto: SessionTracker,
}

impl FleetCtx {
    /// Builds the shared context: specs from the catalog, one trained
    /// planner template per activity (building 10k homes must not cost
    /// 10k trainings — nor, now, 10k Q-table clones).
    fn build(cfg: &MetroConfig) -> Self {
        let specs = vec![catalog::tea_making(), catalog::tooth_brushing()];
        let tracker_proto = SessionTracker::new(&specs, cfg.idle_close);
        let routines: Vec<Routine> = specs.iter().map(Routine::canonical).collect();
        let templates = specs
            .iter()
            .enumerate()
            .map(|(act, spec)| {
                let mut planner = PlanningSubsystem::new(spec, cfg.system.planning);
                let mut rng = SimRng::seed_from(derive_seed(cfg.seed, "metro-train", act as u64));
                for _ in 0..cfg.train_episodes {
                    planner.train_episode(routines[act].steps(), &mut rng);
                }
                Arc::new(planner)
            })
            .collect();
        FleetCtx {
            specs: specs.into_iter().map(Arc::new).collect(),
            routines,
            templates,
            reminding: Arc::new(RemindingSubsystem::new(RESIDENT)),
            tracker_proto,
        }
    }
}

/// Hot per-home scheduling state — one `Copy` record per home, packed
/// contiguously so the wake loop touches a single cache line per idle
/// home instead of chasing a `Home` box.
#[derive(Debug, Clone, Copy)]
struct SchedState {
    ep_index: u64,
    next_start: SimTime,
    /// Coalesces duplicate same-instant wakes in the wheel engine.
    last_handled: Option<SimTime>,
    /// Per-home 100 ms grid offset, spreading homes across wheel slots.
    offset_ms: u64,
}

/// Hot per-home lanes: everything the wake loop reads or writes on
/// *every* wake — the scheduling record and the statistics counters —
/// packed into one `Copy` row so a wake touches one contiguous record
/// (and one TLB page stream) instead of two parallel arrays. Cold state
/// stays out of line: sensor EEPROMs allocate on first write inside the
/// `Coreda` arena, session history lives in the trackers, and the
/// planner/renderer tables are `Arc`-shared — none of it is touched
/// unless the wake actually does work.
#[derive(Debug, Clone, Copy)]
struct HomeLanes {
    sched: SchedState,
    stats: HomeStats,
}

/// Best-effort prefetch of the cache line holding `*p` into L1. The
/// epoch sweep serves homes in ascending arena order and knows the next
/// due home before finishing the current one, so issuing these a chain
/// ahead hides the DRAM latency of a 100k-home working set that no
/// cache level covers. A no-op on architectures without a hint.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a pure performance hint; any address is safe.
    unsafe {
        std::arch::x86_64::_mm_prefetch(p.cast::<i8>(), std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: prfm is a pure performance hint; any address is safe.
    unsafe {
        std::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// The smallest instant on a home's 100 ms grid at or after `t`.
fn align_up(offset_ms: u64, t: SimTime) -> SimTime {
    let ms = t.as_millis();
    let rel = ms.saturating_sub(offset_ms);
    let steps = rel.div_ceil(Coreda::TICK.as_millis());
    SimTime::from_millis(offset_ms + steps * Coreda::TICK.as_millis())
}

/// Width of the epoch-tiling window, in milliseconds: one level-0
/// rotation of the timing wheel. Wakes within one window pop
/// bucket-by-bucket without a cascade anyway, so draining the whole
/// window in one pass is pure batching — and the bound keeps a home's
/// in-window follow-up chain short (a handful of 100 ms pipeline
/// ticks), so the inline merge stays a linear scan over a tiny vec.
const EPOCH_MS: u64 = 256;

/// Routes a follow-up wake spawned while serving an epoch chain: dues
/// inside the window stay inline (the chain serves them immediately, in
/// due order), dues past it go to the queue like any other wake. Legal
/// because the simulator clock already sits at the window end.
fn push_follow(
    sim: &mut Simulator<Wake>,
    inline: &mut Vec<SimTime>,
    end: SimTime,
    due: SimTime,
    i: usize,
) {
    if due <= end {
        inline.push(due);
    } else {
        sim.schedule_at(due, Wake(i));
    }
}

fn draw_gap(rng: &mut SimRng, gap_min_ms: u64, gap_max_ms: u64) -> SimDuration {
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let ms = rng.uniform_range(gap_min_ms as f64, gap_max_ms as f64) as u64;
    SimDuration::from_millis(ms)
}

fn count_session_event(stats: &mut HomeStats, ev: SessionEvent) {
    match ev {
        SessionEvent::Started { .. } => stats.sessions_started += 1,
        SessionEvent::Ended { completed: true, .. } => stats.sessions_completed += 1,
        SessionEvent::Ended { completed: false, .. } => stats.sessions_abandoned += 1,
        SessionEvent::CrossActivityUse { .. } => stats.cross_activity_flags += 1,
    }
}

/// Mirrors a session event into the flight recorder, stamped with the
/// event's *own* instant (idle closes fire at the deadline, not at the
/// tick that noticed them).
fn record_session_event(rec: &mut HomeRecorder, ev: SessionEvent) {
    match ev {
        SessionEvent::Started { activity, at } => {
            rec.inc(Ctr::SessionsStarted);
            rec.event(at, TraceKind::SessionStarted { name: activity });
        }
        SessionEvent::Ended { activity, at, completed } => {
            rec.inc(if completed { Ctr::SessionsCompleted } else { Ctr::SessionsAbandoned });
            rec.event(at, TraceKind::SessionEnded { name: activity, completed });
        }
        SessionEvent::CrossActivityUse { active, at, .. } => {
            rec.inc(Ctr::CrossActivityFlags);
            rec.event(at, TraceKind::CrossActivity { name: active });
        }
    }
}

/// Bumps the home's escalation counters for freshly emitted care
/// events — per-home recorders, so the counts merge in home order like
/// every other telemetry stream.
fn count_care_events(rec: &mut HomeRecorder, fresh: &[CareEvent]) {
    for ev in fresh {
        rec.inc(match ev.kind {
            CareEventKind::Raised => Ctr::EscalationsRaised,
            CareEventKind::Acked => Ctr::EscalationsAcked,
            CareEventKind::Resolved => Ctr::EscalationsResolved,
        });
    }
}

/// Per-shard escalation overlay: one [`CareMonitor`] per home folding
/// the derived WAL records, plus the shard's share of the fleet
/// analytics reduction. Lives beside — never inside — the home arenas,
/// because care is an observation-only layer: it reads the derived
/// records and writes nothing back into the simulation.
struct CareState {
    policy: CarePolicy,
    /// Monitors indexed by shard-local home id.
    monitors: Vec<CareMonitor>,
    analytics: FleetAnalytics,
    /// Guards [`Shard::finish_care`]: the served path finishes care
    /// explicitly (to deliver trailing events) before the shard fold
    /// runs it again.
    finished: bool,
}

/// One worker's contiguous slice of the fleet, struct-of-arrays: parallel
/// vectors indexed by shard-local home index, the per-activity [`Coreda`]
/// systems in one home-major arena (`systems[home * acts + act]`).
/// Same-phase work sweeps these arrays in index order, and the borrow
/// checker splits mutable access field-by-field — no per-home box ever
/// holds unrelated state hostage.
///
/// State that is identical across homes is hoisted to one instance per
/// shard: the stochastic behaviour (profile + pure scratch) and the
/// session-event buffer serve every home in turn.
struct Shard<'a> {
    ctx: &'a FleetCtx,
    /// Fleet-global id of the shard's first home (write-ahead log
    /// records carry global ids).
    first_home: usize,
    /// Activities per home — the arena row width.
    acts: usize,
    systems: Vec<Coreda>,
    trackers: Vec<SessionTracker>,
    /// Root of each home's episode substreams.
    roots: Vec<SimRng>,
    /// Gap/start draws — drawn at the same points by both engines.
    sched_rngs: Vec<SimRng>,
    episodes: Vec<Option<RunningEpisode>>,
    /// Hot lanes: per-home scheduling + statistics, one row per home.
    hot: Vec<HomeLanes>,
    /// Serving taps: outer `Some` when the run records event streams.
    taps: Option<Vec<Vec<TapEvent>>>,
    /// Flight recorders: outer `Some` when the run collects telemetry.
    recs: Option<Vec<HomeRecorder>>,
    /// Write-ahead event log: `Some` when the run appends one record per
    /// observable-transition wake (quiet wakes append nothing).
    wal: Option<Vec<WalRecord>>,
    /// Caregiver escalation overlay: `Some` when the run watches the
    /// derived records for escalation triggers.
    care: Option<CareState>,
    /// One behaviour serves the whole shard: it holds only the shared
    /// profile and call-local scratch, never per-home state.
    behavior: StochasticBehavior,
    /// Session events buffered during a tick (the report sink cannot
    /// borrow the recorder while `live_tick` holds it).
    scratch_sessions: Vec<SessionEvent>,
    /// Same-instant wake batch — strict wake-loop scratch.
    batch: Vec<usize>,
    /// Drained epoch window — epoch wake-loop scratch.
    epoch: Vec<(SimTime, Wake)>,
    /// In-window follow-ups of the chain being served — epoch scratch.
    inline: Vec<SimTime>,
    gap_min_ms: u64,
    gap_max_ms: u64,
}

impl<'a> Shard<'a> {
    #[allow(clippy::too_many_arguments)]
    fn build(
        cfg: &MetroConfig,
        ctx: &'a FleetCtx,
        first_home: usize,
        count: usize,
        record: bool,
        trace: bool,
        log: bool,
        care: Option<&CarePolicy>,
    ) -> Self {
        let acts = ctx.specs.len();
        let mut systems = Vec::with_capacity(count * acts);
        let mut roots = Vec::with_capacity(count);
        let mut sched_rngs = Vec::with_capacity(count);
        let mut hot = Vec::with_capacity(count);
        for id in first_home..first_home + count {
            for (act, (spec, template)) in ctx.specs.iter().zip(&ctx.templates).enumerate() {
                let seed = derive_seed(cfg.seed, "metro-system", (id as u64) * 16 + act as u64);
                systems.push(Coreda::with_shared(
                    Arc::clone(spec),
                    Arc::clone(template),
                    Arc::clone(&ctx.reminding),
                    cfg.system,
                    seed,
                ));
            }
            let root = SimRng::seed_from(derive_seed(cfg.seed, "metro-home", id as u64));
            let mut sched_rng = root.substream("sched", 0);
            let offset_ms = (id as u64 * 7 + 3) % 100;
            let first = draw_gap(&mut sched_rng, cfg.gap_min.as_millis(), cfg.gap_max.as_millis());
            hot.push(HomeLanes {
                sched: SchedState {
                    ep_index: 0,
                    next_start: align_up(offset_ms, SimTime::ZERO + first),
                    last_handled: None,
                    offset_ms,
                },
                stats: HomeStats::default(),
            });
            roots.push(root);
            sched_rngs.push(sched_rng);
        }
        Shard {
            ctx,
            first_home,
            acts,
            systems,
            trackers: (0..count).map(|_| ctx.tracker_proto.clone()).collect(),
            roots,
            sched_rngs,
            episodes: (0..count).map(|_| None).collect(),
            hot,
            taps: record.then(|| (0..count).map(|_| Vec::new()).collect()),
            recs: trace.then(|| (0..count).map(|_| HomeRecorder::new()).collect()),
            wal: log.then(Vec::new),
            care: care.map(|policy| CareState {
                policy: policy.clone(),
                monitors: (first_home..first_home + count)
                    .map(|id| CareMonitor::new(u32::try_from(id).expect("fleets fit in u32")))
                    .collect(),
                analytics: FleetAnalytics::new(),
                finished: false,
            }),
            behavior: StochasticBehavior::new(PatientProfile::moderate(RESIDENT)),
            scratch_sessions: Vec::new(),
            batch: Vec::new(),
            epoch: Vec::new(),
            inline: Vec::new(),
            gap_min_ms: cfg.gap_min.as_millis(),
            gap_max_ms: cfg.gap_max.as_millis(),
        }
    }

    fn len(&self) -> usize {
        self.hot.len()
    }

    /// The canonical per-instant sequence for home `i` — identical code
    /// for both engines, so cross-engine equality reduces to both engines
    /// calling it at every instant where anything can change.
    fn poll_instant(&mut self, i: usize, now: SimTime) {
        // 1. Begin the next episode when its start arrives.
        if self.episodes[i].is_none() && now >= self.hot[i].sched.next_start {
            let ep_index = self.hot[i].sched.ep_index;
            let act = usize::try_from(ep_index).unwrap_or(usize::MAX) % self.acts;
            let mut rng = self.roots[i].substream("episode", ep_index);
            let system = &mut self.systems[i * self.acts + act];
            let ep =
                system.begin_live(&self.ctx.routines[act], &mut self.behavior, now, &mut rng, None);
            self.episodes[i] = Some(RunningEpisode { act, ep, rng });
            self.hot[i].stats.episodes_started += 1;
            if let Some(taps) = self.taps.as_mut() {
                taps[i].push(TapEvent::EpisodeStarted { at: now, act });
            }
            if let Some(recs) = self.recs.as_mut() {
                let rec = &mut recs[i];
                rec.inc(Ctr::EpisodesStarted);
                #[allow(clippy::cast_possible_truncation)]
                rec.event(
                    now,
                    TraceKind::EpisodeStarted { episode: ep_index.min(u64::from(u32::MAX)) as u32 },
                );
            }
        }

        // 2. Run the running episode's 100 ms pipeline tick.
        let mut finished = false;
        if let Some(run) = self.episodes[i].as_mut() {
            if now >= run.ep.next_tick_at() {
                let system = &mut self.systems[i * self.acts + run.act];
                let tracker = &mut self.trackers[i];
                let stats = &mut self.hot[i].stats;
                let taps = &mut self.taps;
                let scratch = &mut self.scratch_sessions;
                let out = system.live_tick(
                    &mut run.ep,
                    &self.ctx.routines[run.act],
                    &mut self.behavior,
                    now,
                    &mut run.rng,
                    None,
                    self.recs.as_mut().map(|r| &mut r[i]),
                    &mut |src, at| {
                        for ev in tracker.on_report(src, at) {
                            count_session_event(stats, ev);
                            if let Some(taps) = taps.as_mut() {
                                taps[i].push(TapEvent::Session(ev));
                            }
                            scratch.push(ev);
                        }
                    },
                );
                let stats = &mut self.hot[i].stats;
                stats.pipeline_ticks += 1;
                stats.reminders += u64::from(out.reminders);
                stats.praises += u64::from(out.praises);
                if out.completed_now {
                    stats.episodes_completed += 1;
                }
                if out != crate::system::TickOutcome::default() {
                    if let Some(taps) = self.taps.as_mut() {
                        taps[i].push(TapEvent::Tick { at: now, out });
                    }
                }
                if let Some(recs) = self.recs.as_mut() {
                    // The report sink above could not borrow the recorder
                    // while `live_tick` held it; drain the buffered
                    // session events now, in arrival order.
                    let rec = &mut recs[i];
                    for ev in self.scratch_sessions.drain(..) {
                        record_session_event(rec, ev);
                    }
                    if out.completed_now {
                        rec.inc(Ctr::EpisodesCompleted);
                    }
                    if out.finished {
                        rec.event(now, TraceKind::EpisodeEnded { completed: out.completed_now });
                    }
                } else {
                    self.scratch_sessions.clear();
                }
                finished = out.finished;
            }
        }

        // 3. Home-wide idle close (the tracker's clock tick).
        if let Some(ev) = self.trackers[i].on_tick(now) {
            count_session_event(&mut self.hot[i].stats, ev);
            if let Some(taps) = self.taps.as_mut() {
                taps[i].push(TapEvent::Session(ev));
            }
            if let Some(recs) = self.recs.as_mut() {
                record_session_event(&mut recs[i], ev);
            }
        }

        // 4. Episode cleanup: draw the quiet gap and schedule the next.
        if finished {
            self.episodes[i] = None;
            let gap = draw_gap(&mut self.sched_rngs[i], self.gap_min_ms, self.gap_max_ms);
            let s = &mut self.hot[i].sched;
            s.ep_index += 1;
            s.next_start = align_up(s.offset_ms, now + gap);
        }
    }

    /// Serves home `i`'s wake and, when the write-ahead log is on,
    /// appends one record if the wake produced any observable
    /// assistance-state transition (episode start/end, reminder, praise,
    /// session event). The record is *derived* — a diff of the home's
    /// counters around the canonical [`Shard::poll_instant`] — so
    /// logging cannot perturb the simulation, and quiet wakes (the
    /// overwhelming majority under dense polling) append nothing, which
    /// is what makes the log identical across engines and O(activity)
    /// in cost.
    fn poll_wake(&mut self, i: usize, now: SimTime) {
        if self.wal.is_none() && self.care.is_none() {
            self.poll_instant(i, now);
            return;
        }
        let before = self.hot[i].stats;
        let ep_before = self.episodes[i].is_some();
        self.poll_instant(i, now);
        // Quiet wake — the overwhelming majority under dense polling:
        // every counter a record could carry is unchanged and the
        // episode slot did not flip, so the derived record would be
        // trivial. Bail before building it; this keeps the overlay and
        // the log at O(activity) rather than O(ticks).
        {
            let after = &self.hot[i].stats;
            if ep_before == self.episodes[i].is_some()
                && after.episodes_started == before.episodes_started
                && after.episodes_completed == before.episodes_completed
                && after.reminders == before.reminders
                && after.praises == before.praises
                && after.sessions_started == before.sessions_started
                && after.sessions_completed == before.sessions_completed
                && after.sessions_abandoned == before.sessions_abandoned
                && after.cross_activity_flags == before.cross_activity_flags
            {
                return;
            }
        }
        let after = self.hot[i].stats;
        let started = after.episodes_started > before.episodes_started;
        let ep_after = self.episodes[i].is_some();
        let mut flags = 0u8;
        if started {
            flags |= wal::EPISODE_STARTED;
        }
        if (ep_before || started) && !ep_after {
            flags |= wal::EPISODE_ENDED;
        }
        if after.episodes_completed > before.episodes_completed {
            flags |= wal::EPISODE_COMPLETED;
        }
        let act = if started {
            let act = match &self.episodes[i] {
                Some(run) => run.act,
                // Started and finished within this wake: the finish
                // already advanced `ep_index` past the started episode.
                None => {
                    usize::try_from(self.hot[i].sched.ep_index.wrapping_sub(1)).unwrap_or(usize::MAX)
                        % self.acts
                }
            };
            u8::try_from(act).unwrap_or(wal::NO_ACT - 1)
        } else {
            wal::NO_ACT
        };
        let d8 = |a: u64, b: u64| u8::try_from(a.saturating_sub(b)).unwrap_or(u8::MAX);
        let record = WalRecord {
            at: now,
            home: u32::try_from(self.first_home + i).expect("fleets fit in u32"),
            act,
            flags,
            reminders: d8(after.reminders, before.reminders),
            praises: d8(after.praises, before.praises),
            sessions_started: d8(after.sessions_started, before.sessions_started),
            sessions_completed: d8(after.sessions_completed, before.sessions_completed),
            sessions_abandoned: d8(after.sessions_abandoned, before.sessions_abandoned),
            cross_activity: d8(after.cross_activity_flags, before.cross_activity_flags),
        };
        if !record.is_trivial() {
            if let Some(care) = self.care.as_mut() {
                // The monitor is a pure fold over the derived records —
                // the same stream the log stores — so the escalation log
                // inherits the WAL's jobs/engine/served invariances.
                let seen = care.monitors[i].events().len();
                care.monitors[i].observe(&care.policy, &record, &mut care.analytics);
                if let Some(recs) = self.recs.as_mut() {
                    count_care_events(&mut recs[i], &care.monitors[i].events()[seen..]);
                }
            }
            if let Some(wal) = self.wal.as_mut() {
                wal.push(record);
            }
        }
    }

    /// Snapshots everything home `i` cannot rebuild from its config:
    /// system states, live session, RNG positions, the in-flight episode,
    /// scheduling state, statistics, and (when traced) the recorder.
    /// `pending` is the home's share of the shard queue at the snapshot.
    ///
    /// Energy is *not* carried in the stats (it stays zero until
    /// [`Shard::finish`] recomputes it from the restored node meters),
    /// and taps are not checkpointed — a resumed recorded run taps only
    /// the resumed segment.
    fn capture_home(&self, i: usize, pending: Vec<SimTime>) -> HomeCheckpoint {
        let s = self.hot[i].sched;
        HomeCheckpoint {
            systems: self.systems[i * self.acts..(i + 1) * self.acts]
                .iter()
                .map(Coreda::export_state)
                .collect(),
            tracker: self.trackers[i].export_active(),
            root: self.roots[i].state_parts(),
            sched: self.sched_rngs[i].state_parts(),
            episode: self.episodes[i]
                .as_ref()
                .map(|run| (run.act, run.ep.export_state(), run.rng.state_parts())),
            ep_index: s.ep_index,
            next_start: s.next_start,
            last_handled: s.last_handled,
            stats: HomeStats { energy_uj: 0.0, ..self.hot[i].stats },
            pending,
            rec: self.recs.as_ref().map(|r| r[i].export_state()),
        }
    }

    /// Overwrites freshly built home `i` with checkpointed state. The
    /// build-time gap draw is discarded wholesale: the restored
    /// `sched_rng` position already accounts for every draw the original
    /// run made. The caller re-schedules `ckpt.pending` itself.
    ///
    /// `restore_state` on a system whose captured learned weights match
    /// the shared template (always, for a read-only serve) keeps the home
    /// on the template `Arc` — a resumed fleet stays as deduplicated as a
    /// fresh one.
    fn restore_home(&mut self, i: usize, ckpt: &HomeCheckpoint) {
        assert_eq!(
            self.acts,
            ckpt.systems.len(),
            "checkpoint was taken with a different activity set"
        );
        for (system, state) in
            self.systems[i * self.acts..(i + 1) * self.acts].iter_mut().zip(&ckpt.systems)
        {
            system
                .restore_state(state)
                .expect("config digest matched, so the rebuilt system accepts its state");
        }
        self.trackers[i].restore_active(ckpt.tracker);
        self.roots[i] = SimRng::from_state_parts(ckpt.root.0, ckpt.root.1);
        self.sched_rngs[i] = SimRng::from_state_parts(ckpt.sched.0, ckpt.sched.1);
        self.episodes[i] = ckpt.episode.as_ref().map(|&(act, ref ep, rng)| RunningEpisode {
            act,
            ep: LiveEpisode::from_state(ep),
            rng: SimRng::from_state_parts(rng.0, rng.1),
        });
        let offset_ms = self.hot[i].sched.offset_ms;
        self.hot[i].sched = SchedState {
            ep_index: ckpt.ep_index,
            next_start: ckpt.next_start,
            last_handled: ckpt.last_handled,
            offset_ms,
        };
        self.hot[i].stats = HomeStats { energy_uj: 0.0, ..ckpt.stats };
        // Counters merge across the snapshot boundary: a resumed traced
        // run's summary covers the whole run, not just the tail. An
        // untraced checkpoint resumed with tracing on simply starts a
        // fresh recorder covering the resumed segment.
        if let (Some(recs), Some(state)) = (self.recs.as_mut(), ckpt.rec.as_ref()) {
            recs[i].restore_state(state);
        }
    }
}

/// One wake of one home (index local to the shard).
#[derive(Debug, Clone, Copy)]
struct Wake(usize);

struct ChunkOut {
    stats: Vec<HomeStats>,
    taps: Option<Vec<Vec<TapEvent>>>,
    recs: Option<Vec<HomeRecorder>>,
    /// Shard-local write-ahead records, in wake order: `(at, home)`
    /// under the strict sweep, home-major within each epoch window
    /// under epoch tiling. Either way the global sort in
    /// `run_scale_inner` lands on the same unique `(at, home)` order.
    wal: Option<Vec<WalRecord>>,
    des_events: u64,
    /// Shard-local queue high-water mark — engine- and jobs-dependent.
    max_pending: usize,
    /// One entry per requested stop: `(processed events at the stop,
    /// per-home snapshots)`, shard-local.
    checkpoints: Vec<(u64, Vec<HomeCheckpoint>)>,
    /// Shard-local escalation log (home-major, per-home time order) and
    /// analytics, when the care overlay ran.
    care: Option<CareOutput>,
}

impl Shard<'_> {
    /// Pops every wake sharing the current instant into `self.batch` and
    /// returns the instant. The due homes are then swept in ascending
    /// index order — homes are independent, so cross-home order within
    /// one instant cannot change any per-home result, and the ascending
    /// sweep walks the shard's arenas in memory order instead of queue
    /// order. Each home's own follow-ups keep their relative dispatch
    /// order (they are always strictly future, so none joins the batch
    /// being swept).
    fn collect_batch(&mut self, sim: &mut Simulator<Wake>, first: usize) -> SimTime {
        let now = sim.now();
        self.batch.clear();
        self.batch.push(first);
        // Dense polling pops whole-fleet instants whose wakes were
        // scheduled home-by-home in ascending order, so batches usually
        // arrive already sorted and duplicate-free: detect that while
        // collecting and skip the re-sort/dedup on the hot path.
        let mut sorted_unique = true;
        let mut last = first;
        while sim.next_due() == Some(now) {
            if let Some(Wake(i)) = sim.step() {
                sorted_unique &= i > last;
                last = i;
                self.batch.push(i);
            }
        }
        if !sorted_unique {
            self.batch.sort_unstable();
            self.batch.dedup();
        }
        now
    }

    /// Serves every wake up to and including `until` with the wheel
    /// engine's scheduling policy. Shared between the inter-checkpoint
    /// segments and the final run to the horizon, so stopping mid-run
    /// reuses the exact loop body an uninterrupted run executes.
    ///
    /// Follow-up wakes are scheduled *unconditionally*, even past the
    /// horizon: `step_until` never pops them, so they cost a queue slot
    /// and nothing else — and it keeps a snapshot's pending set
    /// independent of the horizon the capturing run happened to use. A
    /// checkpoint taken at the very end of a short run must still carry
    /// each home's natural next wake, or a resume with a longer
    /// `--hours` would find a dead fleet.
    fn wheel_segment(&mut self, sim: &mut Simulator<Wake>, until: SimTime) {
        while let Some(Wake(first)) = sim.step_until(until) {
            let now = self.collect_batch(sim, first);
            let mut batch = std::mem::take(&mut self.batch);
            for &i in &batch {
                if self.hot[i].sched.last_handled == Some(now) {
                    // A duplicate wake for an instant already served
                    // (dedup above catches these; kept for parity with
                    // the pre-batching loop).
                    continue;
                }
                self.hot[i].sched.last_handled = Some(now);
                self.poll_wake(i, now);
                if let Some(run) = &self.episodes[i] {
                    sim.schedule_at(run.ep.next_tick_at(), Wake(i));
                } else {
                    sim.schedule_at(self.hot[i].sched.next_start, Wake(i));
                    if let Some(deadline) = self.trackers[i].idle_deadline() {
                        sim.schedule_at(align_up(self.hot[i].sched.offset_ms, deadline), Wake(i));
                    }
                }
            }
            batch.clear();
            self.batch = batch;
        }
    }

    /// The heap engine's dense 10 Hz loop body, segment-shaped like
    /// [`Shard::wheel_segment`] (and scheduling unconditionally for the
    /// same reason). Dense polling makes whole-fleet instants the common
    /// case, so the same-instant batch sweep pays off most here.
    fn heap_segment(&mut self, sim: &mut Simulator<Wake>, until: SimTime) {
        while let Some(Wake(first)) = sim.step_until(until) {
            let now = self.collect_batch(sim, first);
            let mut batch = std::mem::take(&mut self.batch);
            for &i in &batch {
                self.hot[i].sched.last_handled = Some(now);
                self.poll_wake(i, now);
                sim.schedule_at(now + Coreda::TICK, Wake(i));
            }
            batch.clear();
            self.batch = batch;
        }
    }

    /// Serves every wake up to `until` in epoch-tiled order: drain a
    /// bounded near-instant window ([`EPOCH_MS`]) from the queue in one
    /// pass, regroup its wakes by home, and serve each home's chain
    /// contiguously with the next chain's lanes prefetched. Distinct
    /// homes never interact, so reordering *across* homes within the
    /// window is unobservable; *within* a home the chain is served in
    /// strict due order (including follow-ups the chain spawns inside
    /// the window), so every per-home output — and therefore every
    /// deterministic artifact — is bit-identical to the strict sweep.
    fn epoch_segment(&mut self, sim: &mut Simulator<Wake>, engine: EngineKind, until: SimTime) {
        let mut epoch = std::mem::take(&mut self.epoch);
        let mut inline = std::mem::take(&mut self.inline);
        while let Some(t0) = sim.next_due() {
            if t0 > until {
                break;
            }
            // Clip to the segment stop: a checkpoint instant must see
            // exactly the wakes due by then served, no more.
            let end = SimTime::from_millis((t0.as_millis() + EPOCH_MS - 1).min(until.as_millis()));
            epoch.clear();
            sim.drain_until(end, &mut epoch);
            // Group each home's wakes into one contiguous, due-ordered
            // chain. Duplicate keys are identical tuples, so the
            // unstable sort cannot reorder anything observable.
            epoch.sort_unstable_by_key(|&(due, Wake(i))| (i, due));
            let mut k = 0;
            while k < epoch.len() {
                let Wake(i) = epoch[k].1;
                let mut k_end = k + 1;
                while k_end < epoch.len() && epoch[k_end].1 .0 == i {
                    k_end += 1;
                }
                // Pull the next chain's home into cache while this one
                // is being served: one chain of pipeline work is ample
                // distance to hide a main-memory load.
                if k_end < epoch.len() {
                    let Wake(j) = epoch[k_end].1;
                    prefetch(&self.hot[j]);
                    prefetch(&self.systems[j * self.acts]);
                    prefetch(&self.trackers[j]);
                    prefetch(&self.roots[j]);
                }
                self.serve_chain(sim, engine, i, &epoch[k..k_end], end, &mut inline);
                k = k_end;
            }
        }
        if until > sim.now() {
            sim.advance_to(until);
        }
        self.epoch = epoch;
        self.inline = inline;
    }

    /// Serves one home's chain of wakes within an epoch window: the
    /// drained queue entries in `chain` merged with the follow-up wakes
    /// the chain itself spawns inside the window (`inline`, consumed
    /// empty by the time this returns). Equal-instant duplicates
    /// collapse to a single served wake exactly as the strict sweep's
    /// batch dedup does, and every consumed entry is counted so the DES
    /// event totals match the strict engine's pop-per-event accounting.
    fn serve_chain(
        &mut self,
        sim: &mut Simulator<Wake>,
        engine: EngineKind,
        i: usize,
        chain: &[(SimTime, Wake)],
        end: SimTime,
        inline: &mut Vec<SimTime>,
    ) {
        debug_assert!(inline.is_empty());
        let mut cursor = 0;
        loop {
            // Next instant: min over the remaining drained entries
            // (due-sorted) and the inline follow-ups (unsorted, tiny).
            let queued = chain.get(cursor).map(|&(due, _)| due);
            let inlined = inline.iter().copied().min();
            let now = match (queued, inlined) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            // Consume every entry at `now` — duplicates serve once.
            while chain.get(cursor).is_some_and(|&(due, _)| due == now) {
                cursor += 1;
            }
            let before = inline.len();
            inline.retain(|&due| due != now);
            sim.note_processed((before - inline.len()) as u64);
            if engine == EngineKind::Wheel && self.hot[i].sched.last_handled == Some(now) {
                // A duplicate wake for an instant already served (a
                // resume rehydrates the wake that produced the
                // checkpoint's `last_handled`) — consumed and counted,
                // never re-served, matching the strict wheel sweep.
                continue;
            }
            self.hot[i].sched.last_handled = Some(now);
            self.poll_wake(i, now);
            match engine {
                EngineKind::Wheel => {
                    if let Some(run) = &self.episodes[i] {
                        push_follow(sim, inline, end, run.ep.next_tick_at(), i);
                    } else {
                        push_follow(sim, inline, end, self.hot[i].sched.next_start, i);
                        if let Some(deadline) = self.trackers[i].idle_deadline() {
                            push_follow(
                                sim,
                                inline,
                                end,
                                align_up(self.hot[i].sched.offset_ms, deadline),
                                i,
                            );
                        }
                    }
                }
                EngineKind::Heap => push_follow(sim, inline, end, now + Coreda::TICK, i),
            }
        }
    }

    fn segment(
        &mut self,
        sim: &mut Simulator<Wake>,
        engine: EngineKind,
        sched: SchedMode,
        until: SimTime,
    ) {
        match sched {
            SchedMode::Epoch => self.epoch_segment(sim, engine, until),
            SchedMode::Strict => match engine {
                EngineKind::Wheel => self.wheel_segment(sim, until),
                EngineKind::Heap => self.heap_segment(sim, until),
            },
        }
    }

    /// Snapshots the shard at the current instant without perturbing it:
    /// walks the queue's pending wakes in dispatch order through
    /// [`Simulator::iter_pending`] — a read-only view, so frequent delta
    /// checkpoints never pay the old drain-and-reschedule round trip —
    /// and captures each home with its share of the queue.
    fn capture(&self, sim: &Simulator<Wake>) -> (u64, Vec<HomeCheckpoint>) {
        let mut per_home: Vec<Vec<SimTime>> = vec![Vec::new(); self.len()];
        for (due, &Wake(i)) in sim.iter_pending() {
            per_home[i].push(due);
        }
        let snaps = (0..self.len())
            .map(|i| self.capture_home(i, std::mem::take(&mut per_home[i])))
            .collect();
        (sim.processed(), snaps)
    }

    /// Ends each home's care fold at `horizon` (caregiver actions due by
    /// then happen; the home samples its compliance into the analytics)
    /// and bumps the per-home escalation counters for whatever the
    /// drain emitted. Idempotent — the monitors guard their own finish.
    fn finish_care(&mut self, horizon: SimTime) {
        let Some(care) = self.care.as_mut() else { return };
        if care.finished {
            return;
        }
        care.finished = true;
        for (i, monitor) in care.monitors.iter_mut().enumerate() {
            let seen = monitor.events().len();
            monitor.finish(&care.policy, horizon, &mut care.analytics);
            if let Some(recs) = self.recs.as_mut() {
                count_care_events(&mut recs[i], &monitor.events()[seen..]);
                recs[i].add(Ctr::CareTrendWindows, monitor.trend_windows());
            }
        }
    }

    /// Folds the shard's arenas into a [`ChunkOut`], recomputing each
    /// home's energy from its (possibly restored) node meters.
    fn finish(mut self, horizon: SimTime, des_events: u64, max_pending: usize, checkpoints: Vec<(u64, Vec<HomeCheckpoint>)>) -> ChunkOut {
        self.finish_care(horizon);
        let acts = self.acts;
        for (i, lanes) in self.hot.iter_mut().enumerate() {
            lanes.stats.energy_uj =
                self.systems[i * acts..(i + 1) * acts].iter().map(Coreda::total_energy_uj).sum();
        }
        let care = self.care.map(|care| {
            let mut out = CareOutput::default();
            for monitor in care.monitors {
                out.events.extend_from_slice(monitor.events());
            }
            out.analytics = care.analytics;
            out
        });
        ChunkOut {
            stats: self.hot.into_iter().map(|lanes| lanes.stats).collect(),
            taps: self.taps,
            recs: self.recs,
            wal: self.wal,
            des_events,
            max_pending,
            checkpoints,
            care,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chunk(
    cfg: &MetroConfig,
    ctx: &FleetCtx,
    first_home: usize,
    count: usize,
    record: bool,
    trace: bool,
    log: bool,
    care: Option<&CarePolicy>,
    stops: &[SimTime],
    resume: Option<&[HomeCheckpoint]>,
) -> ChunkOut {
    let mut shard = Shard::build(cfg, ctx, first_home, count, record, trace, log, care);
    let horizon_end = SimTime::ZERO + cfg.horizon;

    let mut sim: Simulator<Wake> = match cfg.engine {
        EngineKind::Wheel => Simulator::new(),
        EngineKind::Heap => Simulator::with_heap_queue(),
    };

    // Initial scheduling: a fresh run wakes each home at its first
    // instant of interest; a resumed run rehydrates the exact pending
    // wakes the checkpoint drained, in their drained (dispatch) order.
    match resume {
        None => match cfg.engine {
            EngineKind::Wheel => {
                for (i, s) in shard.hot.iter().enumerate() {
                    sim.schedule_at(s.sched.next_start, Wake(i));
                }
            }
            EngineKind::Heap => {
                for (i, s) in shard.hot.iter().enumerate() {
                    sim.schedule_at(SimTime::from_millis(s.sched.offset_ms), Wake(i));
                }
            }
        },
        Some(ckpts) => {
            assert_eq!(ckpts.len(), count, "resume shard size mismatch");
            for (i, ckpt) in ckpts.iter().enumerate() {
                shard.restore_home(i, ckpt);
                for &due in &ckpt.pending {
                    sim.schedule_at(due, Wake(i));
                }
            }
        }
    }

    let mut checkpoints = Vec::with_capacity(stops.len());
    for &stop in stops {
        shard.segment(&mut sim, cfg.engine, cfg.sched, stop);
        checkpoints.push(shard.capture(&sim));
    }
    shard.segment(&mut sim, cfg.engine, cfg.sched, horizon_end);
    shard.finish(horizon_end, sim.processed(), sim.max_pending(), checkpoints)
}

/// Serves `cfg.homes` households for `cfg.horizon`, sharded across
/// `cfg.jobs` workers. Results are bit-identical at any worker count and
/// across both [`EngineKind`]s (modulo [`ScaleReport::des_events`]).
#[must_use]
pub fn run_scale(cfg: &MetroConfig) -> ScaleReport {
    run_scale_with(cfg, false)
}

/// [`run_scale`] with per-home serving taps recorded into
/// [`ScaleReport::events`] — the input to differential oracles that
/// compare whole event streams, not just counters.
#[must_use]
pub fn run_scale_recorded(cfg: &MetroConfig) -> ScaleReport {
    run_scale_with(cfg, true)
}

/// The result of a [`run_scale_traced`] call: the report plus the
/// flight-recorder telemetry collected alongside it.
#[derive(Debug)]
pub struct TraceOutput {
    /// The serving report — identical to what [`run_scale`] returns for
    /// the same config (recording draws no randomness and mutates no
    /// simulation state).
    pub report: ScaleReport,
    /// Per-home flight recorders, merged deterministically in home order.
    pub telemetry: Telemetry,
    /// Deepest any shard's event queue ever got. Engine- and
    /// jobs-*dependent* (sharding changes how many homes share a queue),
    /// so it lives outside [`Telemetry`] and is never part of
    /// determinism comparisons.
    pub peak_pending: usize,
}

/// [`run_scale`] with the flight recorder on: every home collects
/// pipeline counters, stage-latency histograms, and a bounded ring of
/// trace events. The report itself is bit-identical to an untraced run,
/// and the telemetry is bit-identical at any worker count and across
/// engines (recorders are merged in home order).
#[must_use]
pub fn run_scale_traced(cfg: &MetroConfig) -> TraceOutput {
    run_scale_inner(cfg, false, true, false, None, &[], None)
        .expect("a run without a resume source cannot mismatch")
        .0
}

/// [`run_scale`] that additionally snapshots the whole fleet at each
/// instant in `stops` — the run itself is unperturbed (capture drains
/// and re-schedules the queue non-destructively), so the returned report
/// is bit-identical to a plain [`run_scale`] of the same config.
///
/// # Panics
///
/// Panics if `stops` is not sorted ascending or reaches past the
/// horizon. The CLI validates user input before calling; hitting this
/// from code is a bug.
#[must_use]
pub fn run_scale_checkpointed(
    cfg: &MetroConfig,
    stops: &[SimTime],
) -> (ScaleReport, Vec<MetroCheckpoint>) {
    let (out, ckpts, _, _) = run_scale_inner(cfg, false, false, false, None, stops, None)
        .expect("a run without a resume source cannot mismatch");
    (out.report, ckpts)
}

/// [`run_scale_traced`] with fleet snapshots at each instant in `stops`;
/// the snapshots carry the flight-recorder state, so a traced resume
/// continues the same counters and trace rings.
///
/// # Panics
///
/// Panics on invalid `stops`, as [`run_scale_checkpointed`].
#[must_use]
pub fn run_scale_checkpointed_traced(
    cfg: &MetroConfig,
    stops: &[SimTime],
) -> (TraceOutput, Vec<MetroCheckpoint>) {
    let (out, ckpts, _, _) = run_scale_inner(cfg, false, true, false, None, stops, None)
        .expect("a run without a resume source cannot mismatch");
    (out, ckpts)
}

/// Continues a serve from a fleet snapshot to `cfg.horizon`. The
/// resumed report — statistics, energy, DES event count — is
/// bit-identical to an uninterrupted [`run_scale`] of the same config,
/// for any checkpoint instant, any `cfg.jobs`, and either engine.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`] when the snapshot's
/// [`config_digest`] does not match `cfg` (a resume may change only
/// `jobs`, `horizon` and `engine`).
pub fn resume_scale(
    cfg: &MetroConfig,
    ckpt: &MetroCheckpoint,
) -> Result<ScaleReport, CheckpointError> {
    run_scale_inner(cfg, false, false, false, None, &[], Some(ckpt)).map(|(out, ..)| out.report)
}

/// [`resume_scale`] with the flight recorder on. When the snapshot was
/// itself traced, counters and trace rings merge across the boundary:
/// the resumed telemetry describes the whole run, not just the tail.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`], as [`resume_scale`].
pub fn resume_scale_traced(
    cfg: &MetroConfig,
    ckpt: &MetroCheckpoint,
) -> Result<TraceOutput, CheckpointError> {
    run_scale_inner(cfg, false, true, false, None, &[], Some(ckpt)).map(|(out, ..)| out)
}

/// Resume *and* keep checkpointing: continues from `ckpt` and snapshots
/// again at each instant in `stops` (which must lie past the snapshot).
/// This is what a periodically checkpointing server restarts into.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`], as [`resume_scale`].
///
/// # Panics
///
/// Panics on invalid `stops`, as [`run_scale_checkpointed`].
pub fn resume_scale_checkpointed(
    cfg: &MetroConfig,
    ckpt: &MetroCheckpoint,
    stops: &[SimTime],
) -> Result<(ScaleReport, Vec<MetroCheckpoint>), CheckpointError> {
    run_scale_inner(cfg, false, false, false, None, stops, Some(ckpt))
        .map(|(out, ckpts, _, _)| (out.report, ckpts))
}

/// A durable run's on-disk artifacts: one full base snapshot, a chain of
/// incremental deltas (each diffed against the snapshot the previous
/// ones rebuild), and the write-ahead event log of every observable
/// transition. Steady-state durability cost is the deltas + log tail —
/// O(activity) — instead of a full snapshot per interval.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableRun {
    /// The full snapshot the chain starts from.
    pub base: MetroCheckpoint,
    /// Incremental checkpoints, oldest first.
    pub deltas: Vec<DeltaCheckpoint>,
    /// The whole run's event log, `(at, home)`-ordered.
    pub wal: Vec<WalRecord>,
}

impl DurableRun {
    /// The instant the newest checkpoint (base or delta) covers.
    #[must_use]
    pub fn last_checkpoint_at(&self) -> SimTime {
        self.deltas.last().map_or(self.base.at, |d| d.at)
    }

    /// Folds the delta chain into the base: the full snapshot a
    /// compaction would persist as the next base.
    ///
    /// # Errors
    ///
    /// Propagates [`compact`]'s failures (a delta diffed against a
    /// different base, or out-of-order chaining).
    pub fn compacted(&self) -> Result<MetroCheckpoint, CheckpointError> {
        compact(&self.base, &self.deltas)
    }
}

/// [`run_scale`] with the write-ahead event log on: returns the report
/// plus one [`WalRecord`] per observable-transition wake, fleet-ordered
/// by `(at, home)`. The log is bit-identical across engines and at any
/// worker count, and the report matches an unlogged run exactly
/// (records are derived from counter diffs, never fed back).
#[must_use]
pub fn run_scale_walled(cfg: &MetroConfig) -> (ScaleReport, Vec<WalRecord>) {
    let (out, _, wal, _) = run_scale_inner(cfg, false, false, true, None, &[], None)
        .expect("a run without a resume source cannot mismatch");
    (out.report, wal.expect("wal was requested"))
}

/// [`run_scale`] with the caregiver escalation overlay on: every home's
/// derived transition stream feeds a [`CareMonitor`], and the run
/// returns the fleet-ordered escalation log plus the fleet analytics
/// quantile rollup. The overlay is observation-only — the report is
/// bit-identical to a plain [`run_scale`] — and the care output is
/// bit-identical at any worker count, on either engine, and served ≡
/// batch.
#[must_use]
pub fn run_scale_care(cfg: &MetroConfig, policy: &CarePolicy) -> (ScaleReport, CareOutput) {
    let (out, _, _, care) = run_scale_inner(cfg, false, false, false, Some(policy), &[], None)
        .expect("a run without a resume source cannot mismatch");
    (out.report, care.expect("care was requested"))
}

/// [`run_scale_care`] with the flight recorder on: the telemetry gains
/// the `escalations_raised/acked/resolved` and `care_trend_windows`
/// counters alongside the care output.
#[must_use]
pub fn run_scale_care_traced(cfg: &MetroConfig, policy: &CarePolicy) -> (TraceOutput, CareOutput) {
    let (out, _, _, care) = run_scale_inner(cfg, false, true, false, Some(policy), &[], None)
        .expect("a run without a resume source cannot mismatch");
    (out, care.expect("care was requested"))
}

/// [`run_scale_care`] with the write-ahead log on too — the input the
/// escalation-consistency oracle cross-checks the care log against.
#[must_use]
pub fn run_scale_care_walled(
    cfg: &MetroConfig,
    policy: &CarePolicy,
) -> (ScaleReport, Vec<WalRecord>, CareOutput) {
    let (out, _, wal, care) = run_scale_inner(cfg, false, false, true, Some(policy), &[], None)
        .expect("a run without a resume source cannot mismatch");
    (out.report, wal.expect("wal was requested"), care.expect("care was requested"))
}

/// Runs a serve with incremental durability: a full snapshot at
/// `stops[0]` becomes the base, every later stop becomes a delta diffed
/// against its predecessor, and the write-ahead log covers the whole
/// horizon. The run itself is unperturbed — the report is bit-identical
/// to a plain [`run_scale`].
///
/// # Panics
///
/// Panics if `stops` is empty (a durable run needs at least a base) or
/// invalid as in [`run_scale_checkpointed`].
#[must_use]
pub fn run_scale_durable(cfg: &MetroConfig, stops: &[SimTime]) -> (ScaleReport, DurableRun) {
    assert!(!stops.is_empty(), "a durable run needs at least one checkpoint stop");
    let (out, ckpts, wal, _) = run_scale_inner(cfg, false, false, true, None, stops, None)
        .expect("a run without a resume source cannot mismatch");
    let mut iter = ckpts.into_iter();
    let base = iter.next().expect("stops is non-empty");
    let mut prev = base.clone();
    let mut deltas = Vec::new();
    for cur in iter {
        deltas.push(delta_checkpoint(&prev, &cur));
        prev = cur;
    }
    (out.report, DurableRun { base, deltas, wal: wal.expect("wal was requested") })
}

/// Resumes from a durable chain: folds base → deltas into the newest
/// snapshot, replays the simulation from there to `cfg.horizon`, and
/// cross-checks the replay against the stored log tail — every record
/// the resumed run regenerates past the checkpoint instant must match
/// the stored one, or the log and the snapshot chain belong to
/// different histories. The returned report is bit-identical to an
/// uninterrupted run at any checkpoint cadence, worker count, and
/// engine.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`] / [`CheckpointError::BaseMismatch`]
/// for a chain that does not belong to `cfg`, and
/// [`CheckpointError::WalDivergence`] when the stored log disagrees with
/// the deterministic replay.
pub fn resume_scale_durable(
    cfg: &MetroConfig,
    run: &DurableRun,
) -> Result<ScaleReport, CheckpointError> {
    let ckpt = run.compacted()?;
    let (out, _, regen, _) = run_scale_inner(cfg, false, false, true, None, &[], Some(&ckpt))?;
    let regen = regen.expect("wal was requested");
    // The stored tail past the checkpoint and the regenerated stream
    // must agree record-for-record over their common extent (horizons
    // may differ: a resume is free to run longer or shorter than the
    // run that wrote the log).
    let tail = run.wal.iter().filter(|r| r.at > ckpt.at);
    for (stored, fresh) in tail.zip(&regen) {
        if stored != fresh {
            return Err(CheckpointError::WalDivergence { at: stored.at, home: stored.home });
        }
    }
    Ok(out.report)
}

fn run_scale_with(cfg: &MetroConfig, record: bool) -> ScaleReport {
    run_scale_inner(cfg, record, false, false, None, &[], None)
        .expect("a run without a resume source cannot mismatch")
        .0
        .report
}

/// What one serve produces: trace output, checkpoints at each stop, the
/// event log when one was requested, and the care output when the
/// escalation overlay ran.
type InnerRun =
    (TraceOutput, Vec<MetroCheckpoint>, Option<Vec<WalRecord>>, Option<CareOutput>);

#[allow(clippy::too_many_arguments)]
fn run_scale_inner(
    cfg: &MetroConfig,
    record: bool,
    trace: bool,
    log: bool,
    care: Option<&CarePolicy>,
    stops: &[SimTime],
    resume: Option<&MetroCheckpoint>,
) -> Result<InnerRun, CheckpointError> {
    let horizon_end = SimTime::ZERO + cfg.horizon;
    assert!(
        stops.windows(2).all(|w| w[0] <= w[1]),
        "checkpoint stops must be sorted ascending"
    );
    assert!(
        stops.iter().all(|&s| s <= horizon_end),
        "checkpoint stops must lie within the horizon"
    );
    let digest = config_digest(cfg);
    let mut base_des = 0u64;
    if let Some(ckpt) = resume {
        if ckpt.digest != digest {
            return Err(CheckpointError::ConfigMismatch {
                expected: ckpt.digest,
                actual: digest,
            });
        }
        if ckpt.homes.len() != cfg.homes {
            return Err(CheckpointError::ConfigMismatch {
                expected: ckpt.digest,
                actual: digest,
            });
        }
        base_des = ckpt.des_events;
    }
    let ctx = FleetCtx::build(cfg);

    // Contiguous chunks, one per worker: flattening shard results in
    // chunk order reproduces home order whatever the worker count.
    let shards = cfg.jobs.max(1).min(cfg.homes.max(1));
    let base = cfg.homes / shards;
    let extra = cfg.homes % shards;
    let mut chunks = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let count = base + usize::from(s < extra);
        if count > 0 {
            chunks.push((start, count));
        }
        start += count;
    }

    let engine = FleetEngine::new(cfg.jobs);
    let results = engine.map(chunks, |(first, count)| {
        let shard_resume = resume.map(|ckpt| &ckpt.homes[first..first + count]);
        run_chunk(cfg, &ctx, first, count, record, trace, log, care, stops, shard_resume)
    });

    let mut per_home = Vec::with_capacity(cfg.homes);
    let mut events = record.then(|| Vec::with_capacity(cfg.homes));
    let mut wal_records = log.then(Vec::new);
    let mut care_out = care.map(|_| CareOutput::default());
    let mut telemetry = Telemetry::default();
    let mut des_events = base_des;
    let mut peak_pending = 0usize;
    let mut checkpoints: Vec<MetroCheckpoint> = stops
        .iter()
        .map(|&at| MetroCheckpoint {
            at,
            digest,
            des_events: base_des,
            homes: Vec::with_capacity(cfg.homes),
        })
        .collect();
    for chunk in results {
        per_home.extend(chunk.stats);
        if let (Some(events), Some(taps)) = (events.as_mut(), chunk.taps) {
            events.extend(taps);
        }
        if let Some(recs) = chunk.recs {
            // Chunks are contiguous and flattened in chunk order, so this
            // reproduces home order at any worker count.
            telemetry.homes.extend(recs);
        }
        if let (Some(all), Some(records)) = (wal_records.as_mut(), chunk.wal) {
            all.extend(records);
        }
        if let (Some(out), Some(chunk_care)) = (care_out.as_mut(), chunk.care) {
            // Chunk order is home order, so events arrive home-major and
            // the analytics merge is deterministic whatever the worker
            // count (histogram merge is also order-insensitive).
            out.events.extend(chunk_care.events);
            out.analytics.merge(&chunk_care.analytics);
        }
        des_events = des_events.saturating_add(chunk.des_events);
        peak_pending = peak_pending.max(chunk.max_pending);
        for (ckpt, (processed, homes)) in checkpoints.iter_mut().zip(chunk.checkpoints) {
            // Shard queues count their own events; fleet-level totals sum
            // them (plus whatever the resume source had already served).
            ckpt.des_events = ckpt.des_events.saturating_add(processed);
            ckpt.homes.extend(homes);
        }
    }
    let report = ScaleReport {
        homes: cfg.homes,
        horizon: cfg.horizon,
        engine: cfg.engine,
        per_home,
        des_events,
        events,
    };
    if trace {
        let (_, clamped) = report.totals_checked();
        telemetry.fleet.add(Ctr::TotalsSaturated, clamped);
    }
    if let Some(all) = wal_records.as_mut() {
        // One global sort merges the shard streams — `(at, home)`-ordered
        // under strict sweeps, home-major per epoch window under tiling —
        // into the unique fleet-wide order (at most one record per
        // `(at, home)`), making the log jobs- and sched-invariant.
        all.sort_unstable_by_key(|r| (r.at, r.home));
    }
    if let Some(out) = care_out.as_mut() {
        // Home-major shard streams → the unique global time order; the
        // per-home monotone seq breaks same-instant ties so the sorted
        // log is identical at any worker count.
        out.events.sort_unstable_by_key(|e| (e.at, e.home, e.seq));
    }
    Ok((TraceOutput { report, telemetry, peak_pending }, checkpoints, wal_records, care_out))
}

// ---------------------------------------------------------------------------
// Online serving sessions
// ---------------------------------------------------------------------------

/// A serve configuration names more homes than the wire protocol can
/// address: CRSV frames carry home ids as `u32`, so the largest legal
/// fleet is `u32::MAX + 1` homes. Returned by [`ServeCtx::new`] at
/// setup — the one place fleet size is decided — instead of panicking
/// mid-shard when the first oversized id is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTooLarge {
    /// The configured fleet size that does not fit.
    pub homes: usize,
}

impl std::fmt::Display for FleetTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet of {} homes exceeds the wire protocol's u32 home-id space",
            self.homes
        )
    }
}

impl std::error::Error for FleetTooLarge {}

/// Run-wide shared state for an externally driven (served) fleet: the
/// configuration plus the immutable [`FleetCtx`] every shard borrows.
/// Built once per serve; [`ServeCtx::session`] hands out per-shard
/// sessions whose wake stream is bit-identical to the batch
/// [`run_scale`] sweep — the serving front end owns *when* wakes are
/// served (its clock) but never *what* they do.
pub struct ServeCtx {
    cfg: MetroConfig,
    ctx: FleetCtx,
    digest: u64,
    care: Option<CarePolicy>,
}

impl std::fmt::Debug for ServeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeCtx")
            .field("cfg", &self.cfg)
            .field("digest", &self.digest)
            .field("care", &self.care.is_some())
            .finish()
    }
}

impl ServeCtx {
    /// Builds the shared context (trains the planner templates once),
    /// validating that every home id fits the wire protocol's `u32`
    /// address space up front.
    ///
    /// # Errors
    ///
    /// [`FleetTooLarge`] when `cfg.homes` cannot be addressed — the
    /// config-validation form of what used to be a mid-shard panic.
    pub fn new(cfg: MetroConfig) -> Result<ServeCtx, FleetTooLarge> {
        if cfg.homes.saturating_sub(1) > u32::MAX as usize {
            return Err(FleetTooLarge { homes: cfg.homes });
        }
        let ctx = FleetCtx::build(&cfg);
        let digest = config_digest(&cfg);
        Ok(ServeCtx { cfg, ctx, digest, care: None })
    }

    /// Turns the caregiver escalation overlay on for every session this
    /// context opens.
    #[must_use]
    pub fn with_care(mut self, policy: CarePolicy) -> ServeCtx {
        self.care = Some(policy);
        self
    }

    /// The serve's configuration.
    #[must_use]
    pub fn config(&self) -> &MetroConfig {
        &self.cfg
    }

    /// The configuration digest clients echo in their handshake; a
    /// mismatch means the client was built against a different fleet.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The `(first_home, count)` shard layout for `cfg.jobs` — the exact
    /// contiguous chunking [`run_scale`] uses, so flattening session
    /// results in chunk order reproduces home order at any worker count.
    #[must_use]
    pub fn chunks(&self) -> Vec<(usize, usize)> {
        let shards = self.cfg.jobs.max(1).min(self.cfg.homes.max(1));
        let base = self.cfg.homes / shards;
        let extra = self.cfg.homes % shards;
        let mut chunks = Vec::with_capacity(shards);
        let mut start = 0usize;
        for s in 0..shards {
            let count = base + usize::from(s < extra);
            if count > 0 {
                chunks.push((start, count));
            }
            start += count;
        }
        chunks
    }

    /// Opens a serving session over homes `[first_home, first_home +
    /// count)`. The session always derives delivery records (the log is
    /// on), and optionally taps event streams (`record`) or runs the
    /// flight recorder (`trace`) — both observation-only, exactly as in
    /// the batch path.
    #[must_use]
    pub fn session(&self, first_home: usize, count: usize, record: bool, trace: bool) -> ServeSession<'_> {
        let shard =
            Shard::build(&self.cfg, &self.ctx, first_home, count, record, trace, true, self.care.as_ref());
        let mut sim: Simulator<Wake> = match self.cfg.engine {
            EngineKind::Wheel => Simulator::new(),
            EngineKind::Heap => Simulator::with_heap_queue(),
        };
        // Initial wakes, exactly as `run_chunk` schedules a fresh run.
        match self.cfg.engine {
            EngineKind::Wheel => {
                for (i, s) in shard.hot.iter().enumerate() {
                    sim.schedule_at(s.sched.next_start, Wake(i));
                }
            }
            EngineKind::Heap => {
                for (i, s) in shard.hot.iter().enumerate() {
                    sim.schedule_at(SimTime::from_millis(s.sched.offset_ms), Wake(i));
                }
            }
        }
        ServeSession {
            care_cursors: vec![0; shard.len()],
            shard,
            sim,
            engine: self.cfg.engine,
            sched: self.cfg.sched,
            horizon_end: SimTime::ZERO + self.cfg.horizon,
            wal_cursor: 0,
            epoch_end: SimTime::ZERO,
            epoch: Vec::new(),
            chains: Vec::new(),
            active: None,
            chain_cursor: 0,
            chain_end: 0,
            inline: Vec::new(),
            pending_wake: None,
        }
    }
}

/// One shard of a served fleet, driven wake-by-wake from outside. The
/// pop/sweep structure mirrors [`Shard::wheel_segment`] /
/// [`Shard::heap_segment`] exactly — same pops, same dedup, same
/// follow-up scheduling — so a caller that serves every batch in order
/// reproduces the batch run byte-for-byte, including the DES event
/// count and queue high-water mark.
pub struct ServeSession<'a> {
    shard: Shard<'a>,
    sim: Simulator<Wake>,
    engine: EngineKind,
    sched: SchedMode,
    horizon_end: SimTime,
    /// Records already drained into per-wake deliveries.
    wal_cursor: usize,
    /// Per-home care events already drained into `Escalate` frames.
    care_cursors: Vec<usize>,
    /// End of the window [`ServeSession::next_epoch`] drained last.
    epoch_end: SimTime,
    /// The drained window, sorted by `(home, due)` — each home's wakes
    /// form one contiguous, due-ordered chain.
    epoch: Vec<(SimTime, Wake)>,
    /// `(local home, chain start, chain end)` per due home, home-ascending.
    chains: Vec<(usize, usize, usize)>,
    /// The home whose chain [`ServeSession::next_wake`] is walking.
    active: Option<usize>,
    chain_cursor: usize,
    chain_end: usize,
    /// In-window follow-ups the active chain spawned; never queued.
    inline: Vec<SimTime>,
    /// An instant returned by [`ServeSession::next_wake`] but not yet
    /// consumed by [`ServeSession::serve_wake`] — replayed on re-ask, so
    /// a caller probing the same home twice cannot lose a wake.
    pending_wake: Option<SimTime>,
}

impl std::fmt::Debug for ServeSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeSession")
            .field("first_home", &self.shard.first_home)
            .field("homes", &self.shard.len())
            .field("engine", &self.engine)
            .field("now", &self.sim.now())
            .finish()
    }
}

impl ServeSession<'_> {
    /// Fleet-global id of the session's first home.
    #[must_use]
    pub fn first_home(&self) -> usize {
        self.shard.first_home
    }

    /// Homes in the session.
    #[must_use]
    pub fn homes(&self) -> usize {
        self.shard.len()
    }

    /// Pops the next same-instant wake batch (up to the horizon) and
    /// fills `due` with the fleet-global home ids due at that instant,
    /// ascending and deduplicated — the order the batch engines sweep.
    /// Returns the instant, or `None` when the horizon is served.
    pub fn next_batch(&mut self, due: &mut Vec<u32>) -> Option<SimTime> {
        due.clear();
        let Wake(first) = self.sim.step_until(self.horizon_end)?;
        let now = self.shard.collect_batch(&mut self.sim, first);
        due.extend(self.shard.batch.iter().map(|&i| {
            u32::try_from(self.shard.first_home + i).expect("fleets fit in u32")
        }));
        Some(now)
    }

    /// Serves one due home's wake at `now` (an instant returned by
    /// [`ServeSession::next_batch`] listing `home`): runs the canonical
    /// per-instant pipeline and schedules the home's follow-up wakes
    /// under the session's engine policy. Any observable transitions are
    /// appended to `deliveries` as derived [`WalRecord`]s — the prompt /
    /// escalation payloads an online server sends to the home's client.
    ///
    /// With `skip` (a disconnected client) the wake is consumed without
    /// touching home state or scheduling follow-ups: the home freezes
    /// and its wake stream drains. Skipping one home cannot perturb any
    /// other — homes never interact.
    ///
    /// # Panics
    ///
    /// Panics if `home` is outside the session's range.
    pub fn serve_home(&mut self, home: u32, now: SimTime, skip: bool, deliveries: &mut Vec<WalRecord>) {
        let i = (home as usize)
            .checked_sub(self.shard.first_home)
            .filter(|&i| i < self.shard.len())
            .expect("home outside this session");
        match self.engine {
            EngineKind::Wheel => {
                if self.shard.hot[i].sched.last_handled == Some(now) {
                    // Parity with `wheel_segment`: a duplicate wake for
                    // an already-served instant is consumed silently.
                    return;
                }
                self.shard.hot[i].sched.last_handled = Some(now);
                if skip {
                    return;
                }
                self.shard.poll_wake(i, now);
                if let Some(run) = &self.shard.episodes[i] {
                    self.sim.schedule_at(run.ep.next_tick_at(), Wake(i));
                } else {
                    self.sim.schedule_at(self.shard.hot[i].sched.next_start, Wake(i));
                    if let Some(deadline) = self.shard.trackers[i].idle_deadline() {
                        self.sim
                            .schedule_at(align_up(self.shard.hot[i].sched.offset_ms, deadline), Wake(i));
                    }
                }
            }
            EngineKind::Heap => {
                self.shard.hot[i].sched.last_handled = Some(now);
                if skip {
                    return;
                }
                self.shard.poll_wake(i, now);
                self.sim.schedule_at(now + Coreda::TICK, Wake(i));
            }
        }
        let wal = self.shard.wal.as_ref().expect("sessions always log");
        deliveries.extend_from_slice(&wal[self.wal_cursor..]);
        self.wal_cursor = wal.len();
    }

    /// Drains the next epoch window (up to the horizon) and fills `due`
    /// with the fleet-global home ids owning wakes in it, ascending and
    /// deduplicated. Under [`SchedMode::Epoch`] the window is
    /// [`EPOCH_MS`] wide; under [`SchedMode::Strict`] it is the single
    /// next instant, which makes the chain API reproduce the classic
    /// batch sweep exactly. Returns the window's first instant, or
    /// `None` when the horizon is served.
    ///
    /// Serve the returned homes in order: for each, loop
    /// [`ServeSession::next_wake`] / [`ServeSession::serve_wake`] until
    /// the chain is dry, then move on. Per-home wake sequences — and
    /// with them every deliverable — are bit-identical to the
    /// [`ServeSession::next_batch`] sweep in either mode.
    pub fn next_epoch(&mut self, due: &mut Vec<u32>) -> Option<SimTime> {
        due.clear();
        debug_assert!(self.inline.is_empty() && self.pending_wake.is_none());
        let t0 = self.sim.next_due().filter(|&t| t <= self.horizon_end)?;
        let end = match self.sched {
            SchedMode::Strict => t0,
            SchedMode::Epoch => SimTime::from_millis(
                (t0.as_millis() + EPOCH_MS - 1).min(self.horizon_end.as_millis()),
            ),
        };
        self.epoch.clear();
        self.chains.clear();
        self.active = None;
        self.sim.drain_until(end, &mut self.epoch);
        self.epoch.sort_unstable_by_key(|&(due, Wake(i))| (i, due));
        self.epoch_end = end;
        let mut k = 0;
        while k < self.epoch.len() {
            let i = self.epoch[k].1 .0;
            let mut k_end = k + 1;
            while k_end < self.epoch.len() && self.epoch[k_end].1 .0 == i {
                k_end += 1;
            }
            self.chains.push((i, k, k_end));
            due.push(u32::try_from(self.shard.first_home + i).expect("fleets fit in u32"));
            k = k_end;
        }
        Some(t0)
    }

    /// Advances `home`'s chain in the current epoch to its next distinct
    /// wake instant and returns it, or `None` when the chain is dry (or
    /// `home` owns no wakes in this window). Duplicate entries are
    /// consumed and counted exactly as the batch engines dedup them.
    /// Calling again before [`ServeSession::serve_wake`] returns the
    /// same instant.
    ///
    /// # Panics
    ///
    /// Panics if `home` is outside the session's range.
    pub fn next_wake(&mut self, home: u32) -> Option<SimTime> {
        let i = (home as usize)
            .checked_sub(self.shard.first_home)
            .filter(|&i| i < self.shard.len())
            .expect("home outside this session");
        if self.active != Some(i) {
            debug_assert!(
                self.inline.is_empty() && self.pending_wake.is_none(),
                "switched homes with an unserved chain"
            );
            let &(_, start, end) = self.chains.iter().find(|&&(h, _, _)| h == i)?;
            self.active = Some(i);
            self.chain_cursor = start;
            self.chain_end = end;
        }
        if let Some(now) = self.pending_wake {
            return Some(now);
        }
        loop {
            let queued =
                (self.chain_cursor < self.chain_end).then(|| self.epoch[self.chain_cursor].0);
            let inlined = self.inline.iter().copied().min();
            let now = match (queued, inlined) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    self.active = None;
                    return None;
                }
            };
            while self.chain_cursor < self.chain_end && self.epoch[self.chain_cursor].0 == now {
                self.chain_cursor += 1;
            }
            let before = self.inline.len();
            self.inline.retain(|&due| due != now);
            self.sim.note_processed((before - self.inline.len()) as u64);
            if self.engine == EngineKind::Wheel && self.shard.hot[i].sched.last_handled == Some(now)
            {
                // Parity with the batch sweeps: a duplicate wake for an
                // already-served instant is consumed silently.
                continue;
            }
            self.pending_wake = Some(now);
            return Some(now);
        }
    }

    /// Serves the wake [`ServeSession::next_wake`] returned for `home`:
    /// runs the canonical per-instant pipeline and routes the home's
    /// follow-ups — in-window ones inline to this chain, later ones to
    /// the queue. Observable transitions append to `deliveries` as
    /// derived [`WalRecord`]s, exactly as [`ServeSession::serve_home`].
    ///
    /// With `skip` (a disconnected client) the wake is consumed without
    /// touching home state or spawning follow-ups — the home freezes
    /// and its chain drains, matching the classic skip semantics wake
    /// for wake.
    ///
    /// # Panics
    ///
    /// Panics if `home` is outside the session's range.
    pub fn serve_wake(&mut self, home: u32, at: SimTime, skip: bool, deliveries: &mut Vec<WalRecord>) {
        let i = (home as usize)
            .checked_sub(self.shard.first_home)
            .filter(|&i| i < self.shard.len())
            .expect("home outside this session");
        debug_assert_eq!(self.active, Some(i), "serve_wake without a next_wake");
        debug_assert_eq!(self.pending_wake, Some(at), "serve_wake instant mismatch");
        self.pending_wake = None;
        self.shard.hot[i].sched.last_handled = Some(at);
        if skip {
            return;
        }
        self.shard.poll_wake(i, at);
        match self.engine {
            EngineKind::Wheel => {
                if let Some(run) = &self.shard.episodes[i] {
                    push_follow(
                        &mut self.sim,
                        &mut self.inline,
                        self.epoch_end,
                        run.ep.next_tick_at(),
                        i,
                    );
                } else {
                    push_follow(
                        &mut self.sim,
                        &mut self.inline,
                        self.epoch_end,
                        self.shard.hot[i].sched.next_start,
                        i,
                    );
                    if let Some(deadline) = self.shard.trackers[i].idle_deadline() {
                        push_follow(
                            &mut self.sim,
                            &mut self.inline,
                            self.epoch_end,
                            align_up(self.shard.hot[i].sched.offset_ms, deadline),
                            i,
                        );
                    }
                }
            }
            EngineKind::Heap => push_follow(
                &mut self.sim,
                &mut self.inline,
                self.epoch_end,
                at + Coreda::TICK,
                i,
            ),
        }
        let wal = self.shard.wal.as_ref().expect("sessions always log");
        deliveries.extend_from_slice(&wal[self.wal_cursor..]);
        self.wal_cursor = wal.len();
    }

    /// Appends `home`'s escalation events emitted since the last drain —
    /// what the serving front end wraps into `Escalate` frames after
    /// [`ServeSession::serve_home`]. No-op unless the context enabled
    /// care ([`ServeCtx::with_care`]).
    ///
    /// # Panics
    ///
    /// Panics if `home` is outside the session's range.
    pub fn drain_care(&mut self, home: u32, out: &mut Vec<CareEvent>) {
        let i = (home as usize)
            .checked_sub(self.shard.first_home)
            .filter(|&i| i < self.shard.len())
            .expect("home outside this session");
        let Some(care) = self.shard.care.as_ref() else { return };
        let events = care.monitors[i].events();
        out.extend_from_slice(&events[self.care_cursors[i]..]);
        self.care_cursors[i] = events.len();
    }

    /// Ends every home's care fold at the horizon and appends the
    /// trailing events (acks/resolves due by then) in home order — the
    /// final `Escalate` frames a server delivers before `Bye`. No-op
    /// without care.
    pub fn finish_care(&mut self, out: &mut Vec<CareEvent>) {
        self.shard.finish_care(self.horizon_end);
        let Some(care) = self.shard.care.as_ref() else { return };
        for (i, monitor) in care.monitors.iter().enumerate() {
            let events = monitor.events();
            out.extend_from_slice(&events[self.care_cursors[i]..]);
            self.care_cursors[i] = events.len();
        }
    }

    /// Folds the session into its shard result (recomputing per-home
    /// energy, as the batch path does at the end of a run).
    #[must_use]
    pub fn finish(self) -> ServedShard {
        let des_events = self.sim.processed();
        let max_pending = self.sim.max_pending();
        let horizon = self.horizon_end;
        ServedShard { out: self.shard.finish(horizon, des_events, max_pending, Vec::new()) }
    }
}

/// One finished [`ServeSession`]'s output, opaque until merged through
/// [`collect_served`].
pub struct ServedShard {
    out: ChunkOut,
}

impl std::fmt::Debug for ServedShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedShard")
            .field("homes", &self.out.stats.len())
            .field("des_events", &self.out.des_events)
            .finish()
    }
}

/// Merges finished served shards — in [`ServeCtx::chunks`] order — into
/// the run's [`TraceOutput`] plus the fleet-ordered event log (and the
/// care output when the context enabled the escalation overlay), with
/// the exact merge the batch [`run_scale`] path performs. Under the sim
/// clock the result is bit-identical to the batch run of the same
/// configuration (grid, telemetry, log, and care) at any worker count
/// and either engine.
#[must_use]
pub fn collect_served(
    cfg: &MetroConfig,
    shards: Vec<ServedShard>,
) -> (TraceOutput, Vec<WalRecord>, Option<CareOutput>) {
    let record = shards.first().is_some_and(|s| s.out.taps.is_some());
    let trace = shards.first().is_some_and(|s| s.out.recs.is_some());
    let care = shards.first().is_some_and(|s| s.out.care.is_some());
    let mut per_home = Vec::with_capacity(cfg.homes);
    let mut events = record.then(|| Vec::with_capacity(cfg.homes));
    let mut wal_records = Vec::new();
    let mut care_out = care.then(CareOutput::default);
    let mut telemetry = Telemetry::default();
    let mut des_events = 0u64;
    let mut peak_pending = 0usize;
    for shard in shards {
        let chunk = shard.out;
        per_home.extend(chunk.stats);
        if let (Some(events), Some(taps)) = (events.as_mut(), chunk.taps) {
            events.extend(taps);
        }
        if let Some(recs) = chunk.recs {
            telemetry.homes.extend(recs);
        }
        if let Some(records) = chunk.wal {
            wal_records.extend(records);
        }
        if let (Some(out), Some(chunk_care)) = (care_out.as_mut(), chunk.care) {
            out.events.extend(chunk_care.events);
            out.analytics.merge(&chunk_care.analytics);
        }
        des_events = des_events.saturating_add(chunk.des_events);
        peak_pending = peak_pending.max(chunk.max_pending);
    }
    let report = ScaleReport {
        homes: cfg.homes,
        horizon: cfg.horizon,
        engine: cfg.engine,
        per_home,
        des_events,
        events,
    };
    if trace {
        let (_, clamped) = report.totals_checked();
        telemetry.fleet.add(Ctr::TotalsSaturated, clamped);
    }
    wal_records.sort_unstable_by_key(|r| (r.at, r.home));
    if let Some(out) = care_out.as_mut() {
        out.events.sort_unstable_by_key(|e| (e.at, e.home, e.seq));
    }
    ((TraceOutput { report, telemetry, peak_pending }), wal_records, care_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The arena build must point every home's planner and renderer at
    /// the `FleetCtx`'s shared allocations — per-home copies would put
    /// the Q-tables back on the per-home budget. Address equality of
    /// the `Deref` targets proves the `Arc`s share storage.
    #[test]
    fn fleet_homes_share_planner_and_renderer_allocations() {
        let cfg = small_cfg();
        let ctx = FleetCtx::build(&cfg);
        let shard = Shard::build(&cfg, &ctx, 0, cfg.homes, false, false, false, None);
        let acts = ctx.specs.len();
        assert!(acts >= 2, "catalog should exercise >1 activity");
        for act in 0..acts {
            let template: &PlanningSubsystem = &ctx.templates[act];
            for home in 0..cfg.homes {
                let sys = &shard.systems[home * acts + act];
                assert!(
                    std::ptr::eq(sys.planner(), template),
                    "home {home} act {act} carries a private planner copy"
                );
                assert!(
                    std::ptr::eq(sys.reminding(), &*ctx.reminding),
                    "home {home} act {act} carries a private renderer copy"
                );
            }
        }
    }

    fn small_cfg() -> MetroConfig {
        MetroConfig {
            homes: 4,
            horizon: SimDuration::from_secs(600),
            jobs: 1,
            gap_min: SimDuration::from_secs(60),
            gap_max: SimDuration::from_secs(180),
            train_episodes: 120,
            ..MetroConfig::default()
        }
    }

    #[test]
    fn homes_actually_serve() {
        let report = run_scale(&small_cfg());
        let t = report.totals();
        assert_eq!(report.per_home.len(), 4);
        assert!(t.episodes_started >= 4, "every home should start an episode: {t:?}");
        assert!(t.sessions_started > 0, "tool reports should open sessions: {t:?}");
        assert!(t.pipeline_ticks > 0);
        assert!(t.energy_uj > 0.0, "radio traffic costs energy");
    }

    #[test]
    fn wheel_and_heap_engines_agree_per_home() {
        let wheel = run_scale(&small_cfg());
        let heap = run_scale(&MetroConfig { engine: EngineKind::Heap, ..small_cfg() });
        assert_eq!(wheel.per_home, heap.per_home);
        // Dense polling pops far more raw DES events for the same work.
        assert!(
            heap.des_events > wheel.des_events,
            "heap {h} should exceed wheel {w}",
            h = heap.des_events,
            w = wheel.des_events
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let serial = run_scale(&small_cfg());
        let parallel = run_scale(&MetroConfig { jobs: 3, ..small_cfg() });
        assert_eq!(serial, parallel);
        assert_eq!(serial.render(), parallel.render());
    }

    /// Driving serving sessions wake-by-wake from outside must reproduce
    /// the batch sweep exactly: per-home grid, DES event count, and the
    /// derived event log.
    #[test]
    fn served_sessions_reproduce_the_batch_run() {
        for engine in [EngineKind::Wheel, EngineKind::Heap] {
            let cfg = MetroConfig { engine, ..small_cfg() };
            let batch = run_scale(&cfg);
            let (_, wal) = run_scale_walled(&cfg);
            let ctx = ServeCtx::new(cfg.clone()).expect("small fleets fit");
            let mut shards = Vec::new();
            let mut deliveries = Vec::new();
            for (first, count) in ctx.chunks() {
                let mut session = ctx.session(first, count, false, false);
                let mut due = Vec::new();
                while let Some(now) = session.next_batch(&mut due) {
                    for &home in &due {
                        session.serve_home(home, now, false, &mut deliveries);
                    }
                }
                shards.push(session.finish());
            }
            let (out, merged, care) = collect_served(&cfg, shards);
            assert!(care.is_none(), "care off ⇒ no care output");
            assert_eq!(out.report, batch, "{engine} serve diverged from batch");
            assert_eq!(merged, wal, "{engine} served log diverged");
            deliveries.sort_unstable_by_key(|r| (r.at, r.home));
            assert_eq!(deliveries, wal, "{engine} per-wake deliveries diverged");
        }
    }

    /// The tentpole determinism rule: epoch tiling is a pure
    /// performance knob. Report, WAL, care log, and telemetry JSONL are
    /// bit-identical to the strict-order sweep on either engine at any
    /// worker count.
    #[test]
    fn epoch_and_strict_scheduling_are_bit_identical() {
        let policy = CarePolicy::default();
        for engine in [EngineKind::Wheel, EngineKind::Heap] {
            for jobs in [1, 3] {
                let epoch = MetroConfig { engine, jobs, sched: SchedMode::Epoch, ..small_cfg() };
                let strict = MetroConfig { sched: SchedMode::Strict, ..epoch.clone() };
                let (er, ewal, ecare) = run_scale_care_walled(&epoch, &policy);
                let (sr, swal, scare) = run_scale_care_walled(&strict, &policy);
                assert_eq!(er, sr, "{engine} jobs={jobs}: report diverged");
                assert_eq!(ewal, swal, "{engine} jobs={jobs}: WAL diverged");
                assert_eq!(ecare, scare, "{engine} jobs={jobs}: care log diverged");
                let et = run_scale_traced(&epoch);
                let st = run_scale_traced(&strict);
                assert_eq!(
                    et.telemetry.to_jsonl(),
                    st.telemetry.to_jsonl(),
                    "{engine} jobs={jobs}: telemetry diverged"
                );
            }
        }
    }

    /// A checkpoint is sched-agnostic like it is jobs- and
    /// engine-agnostic: captured under one mode, it resumes under the
    /// other to the exact uninterrupted result.
    #[test]
    fn checkpoints_move_between_sched_modes() {
        let strict = MetroConfig { sched: SchedMode::Strict, ..small_cfg() };
        let epoch = MetroConfig { sched: SchedMode::Epoch, ..small_cfg() };
        let full = run_scale(&strict);
        let stop = SimTime::from_millis(strict.horizon.as_millis() / 2);
        // Strict capture → epoch resume.
        let (_, ckpts) = run_scale_checkpointed(&strict, &[stop]);
        let resumed = resume_scale(&epoch, &ckpts[0]).expect("same config, new sched");
        assert_eq!(resumed.per_home, full.per_home, "strict→epoch resume diverged");
        // Epoch capture → strict resume.
        let (_, ckpts) = run_scale_checkpointed(&epoch, &[stop]);
        let resumed = resume_scale(&strict, &ckpts[0]).expect("same config, new sched");
        assert_eq!(resumed.per_home, full.per_home, "epoch→strict resume diverged");
    }

    /// The epoch chain API (`next_epoch`/`next_wake`/`serve_wake`) must
    /// reproduce the batch run exactly in *both* scheduling modes — under
    /// `Strict` the window degenerates to a single instant and the chain
    /// walk becomes the classic batch sweep.
    #[test]
    fn chain_api_reproduces_the_batch_run() {
        for engine in [EngineKind::Wheel, EngineKind::Heap] {
            for sched in [SchedMode::Epoch, SchedMode::Strict] {
                let cfg = MetroConfig { engine, sched, ..small_cfg() };
                let batch = run_scale(&cfg);
                let (_, wal) = run_scale_walled(&cfg);
                let ctx = ServeCtx::new(cfg.clone()).expect("small fleets fit");
                let mut shards = Vec::new();
                let mut deliveries = Vec::new();
                for (first, count) in ctx.chunks() {
                    let mut session = ctx.session(first, count, false, false);
                    let mut due = Vec::new();
                    while session.next_epoch(&mut due).is_some() {
                        for &home in &due {
                            while let Some(now) = session.next_wake(home) {
                                session.serve_wake(home, now, false, &mut deliveries);
                            }
                        }
                    }
                    shards.push(session.finish());
                }
                let (out, merged, _) = collect_served(&cfg, shards);
                assert_eq!(out.report, batch, "{engine}/{sched} chain serve diverged");
                assert_eq!(merged, wal, "{engine}/{sched} served log diverged");
                deliveries.sort_unstable_by_key(|r| (r.at, r.home));
                assert_eq!(deliveries, wal, "{engine}/{sched} deliveries diverged");
            }
        }
    }

    /// The sorted-unique fast path and the re-sort slow path of
    /// [`Shard::collect_batch`] must land on the same batch.
    #[test]
    fn collect_batch_handles_sorted_and_unsorted_pops() {
        let cfg = small_cfg();
        let ctx = FleetCtx::build(&cfg);
        let mut shard = Shard::build(&cfg, &ctx, 0, cfg.homes, false, false, false, None);
        let at = SimTime::from_millis(1_000);

        // Ascending, duplicate-free pops: the fast path must keep them.
        let mut sim: Simulator<Wake> = Simulator::new();
        for i in 0..4 {
            sim.schedule_at(at, Wake(i));
        }
        let Some(Wake(first)) = sim.step() else { panic!("scheduled wakes exist") };
        assert_eq!(shard.collect_batch(&mut sim, first), at);
        assert_eq!(shard.batch, vec![0, 1, 2, 3]);

        // Out-of-order pops with duplicates: the slow path must restore
        // the ascending deduplicated sweep order.
        let mut sim: Simulator<Wake> = Simulator::new();
        for i in [3usize, 1, 2, 1] {
            sim.schedule_at(at, Wake(i));
        }
        let Some(Wake(first)) = sim.step() else { panic!("scheduled wakes exist") };
        assert_eq!(shard.collect_batch(&mut sim, first), at);
        assert_eq!(shard.batch, vec![1, 2, 3]);
    }

    /// A skipped (disconnected) home freezes — no further deliveries —
    /// without perturbing any other home.
    #[test]
    fn skipping_a_home_freezes_only_that_home() {
        let cfg = small_cfg();
        let batch = run_scale(&cfg);
        let cut = SimTime::from_millis(cfg.horizon.as_millis() / 2);
        let ctx = ServeCtx::new(cfg.clone()).expect("small fleets fit");
        let mut session = ctx.session(0, cfg.homes, false, false);
        let mut due = Vec::new();
        let mut deliveries = Vec::new();
        while let Some(now) = session.next_batch(&mut due) {
            for &home in &due {
                let skip = home == 0 && now >= cut;
                session.serve_home(home, now, skip, &mut deliveries);
            }
        }
        let (out, merged, _) = collect_served(&cfg, vec![session.finish()]);
        assert_ne!(out.report.per_home[0], batch.per_home[0], "home 0 should freeze");
        assert_eq!(out.report.per_home[1..], batch.per_home[1..], "other homes must not drift");
        assert!(
            merged.iter().all(|r| r.home != 0 || r.at < cut),
            "a frozen home must deliver nothing past its disconnect"
        );
    }

    #[test]
    fn render_is_complete_and_deterministic() {
        let report = run_scale(&small_cfg());
        let text = report.render();
        assert!(text.contains("4 homes"));
        assert!(text.contains("wheel engine"));
        assert!(text.contains("episodes:"));
        assert!(text.contains("sessions:"));
        assert!(text.contains("pipeline ticks:"));
        assert_eq!(text, run_scale(&small_cfg()).render());
    }

    #[test]
    fn recorded_taps_are_engine_and_jobs_invariant() {
        let wheel = run_scale_recorded(&small_cfg());
        let heap = run_scale_recorded(&MetroConfig { engine: EngineKind::Heap, ..small_cfg() });
        let parallel = run_scale_recorded(&MetroConfig { jobs: 3, ..small_cfg() });
        assert_eq!(wheel.events, heap.events);
        assert_eq!(wheel.events, parallel.events);
        let taps = wheel.events.as_ref().unwrap();
        assert_eq!(taps.len(), 4);
        assert!(taps.iter().any(|t| !t.is_empty()), "taps should carry events");
        // The unrecorded path stays tap-free, so full-report equality
        // tests keep comparing `None == None`.
        assert_eq!(run_scale(&small_cfg()).events, None);
    }

    #[test]
    fn traced_run_matches_untraced_report() {
        let plain = run_scale(&small_cfg());
        let traced = run_scale_traced(&small_cfg());
        assert_eq!(plain, traced.report, "recording must not perturb the simulation");
        assert_eq!(traced.telemetry.homes.len(), 4);
        let agg = traced.telemetry.aggregate();
        let t = plain.totals();
        assert_eq!(agg.counter(Ctr::EpisodesStarted), t.episodes_started);
        assert_eq!(agg.counter(Ctr::EpisodesCompleted), t.episodes_completed);
        assert_eq!(agg.counter(Ctr::RemindersIssued), t.reminders);
        assert_eq!(agg.counter(Ctr::Praises), t.praises);
        assert_eq!(agg.counter(Ctr::SessionsStarted), t.sessions_started);
        assert_eq!(agg.counter(Ctr::SessionsCompleted), t.sessions_completed);
        assert_eq!(agg.counter(Ctr::SessionsAbandoned), t.sessions_abandoned);
        assert_eq!(agg.counter(Ctr::CrossActivityFlags), t.cross_activity_flags);
        assert_eq!(agg.counter(Ctr::TotalsSaturated), 0);
        assert!(agg.counter(Ctr::SampleWindows) > 0, "sensing stage should be hot");
        assert!(traced.telemetry.events_recorded() > 0, "trace rings should hold events");
        assert!(traced.peak_pending > 0, "the serving queue is never empty mid-run");
    }

    #[test]
    fn traced_run_is_jobs_and_engine_invariant() {
        let wheel = run_scale_traced(&small_cfg());
        let heap = run_scale_traced(&MetroConfig { engine: EngineKind::Heap, ..small_cfg() });
        let parallel = run_scale_traced(&MetroConfig { jobs: 3, ..small_cfg() });
        assert_eq!(wheel.telemetry, heap.telemetry);
        assert_eq!(wheel.telemetry, parallel.telemetry);
        assert_eq!(wheel.telemetry.to_jsonl(), parallel.telemetry.to_jsonl());
    }

    #[test]
    fn saturated_totals_warn_in_render() {
        let mut report = run_scale(&small_cfg());
        report.per_home[0].reminders = u64::MAX;
        report.per_home[1].reminders = u64::MAX;
        let (t, clamped) = report.totals_checked();
        assert_eq!(t.reminders, u64::MAX);
        assert!(clamped > 0);
        let text = report.render();
        assert!(text.contains("WARNING"), "saturation must be loud: {text}");
        assert!(text.contains("lower bounds"), "{text}");
    }

    #[test]
    fn checkpointing_does_not_perturb_the_run() {
        let plain = run_scale(&small_cfg());
        let stops = [SimTime::from_secs(200), SimTime::from_secs(400)];
        let (report, ckpts) = run_scale_checkpointed(&small_cfg(), &stops);
        assert_eq!(plain, report, "capture must be non-destructive");
        assert_eq!(ckpts.len(), 2);
        assert_eq!(ckpts[0].at, stops[0]);
        assert_eq!(ckpts[0].homes.len(), 4);
        assert!(ckpts[0].des_events < ckpts[1].des_events);
    }

    #[test]
    fn resume_matches_uninterrupted_run() {
        let cfg = small_cfg();
        let full = run_scale(&cfg);
        let (_, ckpts) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(300)]);
        let resumed = resume_scale(&cfg, &ckpts[0]).unwrap();
        assert_eq!(full, resumed, "snapshot-then-resume must be invisible");
    }

    #[test]
    fn snapshot_survives_the_codec_and_resumes() {
        let cfg = small_cfg();
        let (_, ckpts) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(300)]);
        let blob = crate::checkpoint::save_checkpoint(&ckpts[0], 2);
        let back = crate::checkpoint::load_checkpoint(&blob, 2).unwrap();
        assert_eq!(back, ckpts[0]);
        assert_eq!(resume_scale(&cfg, &back).unwrap(), run_scale(&cfg));
    }

    #[test]
    fn resume_rejects_a_different_config_but_not_resume_knobs() {
        let cfg = small_cfg();
        let (_, ckpts) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(300)]);
        let reseeded = MetroConfig { seed: 9, ..small_cfg() };
        assert!(matches!(
            resume_scale(&reseeded, &ckpts[0]),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        // Worker count is a resume-time free choice.
        let parallel = MetroConfig { jobs: 3, ..small_cfg() };
        assert_eq!(resume_scale(&parallel, &ckpts[0]).unwrap(), run_scale(&cfg));
    }

    #[test]
    fn traced_resume_merges_counters_across_the_boundary() {
        let cfg = small_cfg();
        let full = run_scale_traced(&cfg);
        let (_, ckpts) = run_scale_checkpointed_traced(&cfg, &[SimTime::from_secs(300)]);
        let resumed = resume_scale_traced(&cfg, &ckpts[0]).unwrap();
        assert_eq!(resumed.report, full.report);
        assert_eq!(
            resumed.telemetry, full.telemetry,
            "telemetry must cover the whole run, not just the resumed tail"
        );
    }

    #[test]
    fn resume_can_keep_checkpointing() {
        let cfg = small_cfg();
        let (_, first) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(200)]);
        let (report, second) =
            resume_scale_checkpointed(&cfg, &first[0], &[SimTime::from_secs(400)]).unwrap();
        assert_eq!(report, run_scale(&cfg));
        // A re-checkpointed snapshot is as good as one from the original
        // run: resuming it still lands on the uninterrupted result.
        assert_eq!(resume_scale(&cfg, &second[0]).unwrap(), run_scale(&cfg));
        let (_, direct) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(400)]);
        assert_eq!(second[0], direct[0], "chained and direct snapshots agree");
    }

    #[test]
    fn snapshot_at_the_horizon_resumes_into_a_longer_run() {
        // The degenerate-but-natural CLI flow: serve to T, snapshot the
        // *end* state, later resume to 2T. The snapshot must carry each
        // home's natural next wake even though the capturing run's
        // horizon ended — a pending set truncated at the old horizon
        // would resume into a dead fleet.
        let short = MetroConfig { horizon: SimDuration::from_secs(300), ..small_cfg() };
        let long = MetroConfig { horizon: SimDuration::from_secs(600), ..small_cfg() };
        let (_, ckpts) = run_scale_checkpointed(&short, &[SimTime::from_secs(300)]);
        assert!(
            ckpts[0].homes.iter().all(|h| !h.pending.is_empty()),
            "an end-of-run snapshot must still hold every home's next wake"
        );
        let resumed = resume_scale(&long, &ckpts[0]).unwrap();
        assert_eq!(resumed, run_scale(&long));
        // Same through the heap engine.
        let short_heap = MetroConfig { engine: EngineKind::Heap, ..short };
        let long_heap = MetroConfig { engine: EngineKind::Heap, ..long };
        let (_, heap_ckpts) = run_scale_checkpointed(&short_heap, &[SimTime::from_secs(300)]);
        assert_eq!(
            resume_scale(&long_heap, &heap_ckpts[0]).unwrap(),
            run_scale(&long_heap)
        );
    }

    #[test]
    fn logging_does_not_perturb_the_run_and_captures_every_transition() {
        let cfg = small_cfg();
        let (report, wal) = run_scale_walled(&cfg);
        assert_eq!(report, run_scale(&cfg), "the log is derived, never fed back");
        assert!(!wal.is_empty(), "a serving fleet must log transitions");
        assert!(
            wal.windows(2).all(|w| (w[0].at, w[0].home) <= (w[1].at, w[1].home)),
            "records arrive fleet-ordered by (at, home)"
        );
        // Every counter the report accumulates is the sum of its log
        // increments: the WAL is a complete account of the run.
        let t = report.totals();
        let sum = |f: fn(&WalRecord) -> u8| wal.iter().map(|r| u64::from(f(r))).sum::<u64>();
        assert_eq!(sum(|r| r.reminders), t.reminders);
        assert_eq!(sum(|r| r.praises), t.praises);
        assert_eq!(sum(|r| r.sessions_completed), t.sessions_completed);
        let starts =
            wal.iter().filter(|r| r.flags & wal::EPISODE_STARTED != 0).count() as u64;
        assert_eq!(starts, t.episodes_started);
    }

    #[test]
    fn wal_is_engine_and_jobs_invariant() {
        let cfg = small_cfg();
        let (_, serial) = run_scale_walled(&cfg);
        let (_, parallel) = run_scale_walled(&MetroConfig { jobs: 3, ..small_cfg() });
        assert_eq!(serial, parallel, "worker count must not reorder or change the log");
        let (_, heap) = run_scale_walled(&MetroConfig { engine: EngineKind::Heap, ..cfg });
        assert_eq!(serial, heap, "dense heap polling observes the same transitions");
    }

    #[test]
    fn durable_resume_is_bit_identical_to_an_uninterrupted_run() {
        let cfg = small_cfg();
        let stops: Vec<_> = [150, 300, 450].map(SimTime::from_secs).to_vec();
        let (report, run) = run_scale_durable(&cfg, &stops);
        assert_eq!(report, run_scale(&cfg));
        assert_eq!(run.deltas.len(), 2);
        assert_eq!(run.last_checkpoint_at(), SimTime::from_secs(450));
        // The folded chain is byte-for-byte the snapshot a full-capture
        // run would have taken at the last stop.
        let (_, direct) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(450)]);
        assert_eq!(run.compacted().unwrap(), direct[0]);
        // base → deltas → log tail replays into the uninterrupted result,
        // at another worker count and on the other engine too.
        assert_eq!(resume_scale_durable(&cfg, &run).unwrap(), report);
        let parallel = MetroConfig { jobs: 3, ..small_cfg() };
        assert_eq!(resume_scale_durable(&parallel, &run).unwrap(), report);
        let heap = MetroConfig { engine: EngineKind::Heap, ..small_cfg() };
        let (heap_report, heap_run) = run_scale_durable(&heap, &stops);
        assert_eq!(resume_scale_durable(&heap, &heap_run).unwrap(), heap_report);
        assert_eq!(heap_report.per_home, report.per_home);
    }

    #[test]
    fn a_tampered_log_tail_is_caught_as_divergence() {
        let cfg = small_cfg();
        let (_, mut run) = run_scale_durable(&cfg, &[SimTime::from_secs(150)]);
        let ckpt_at = run.last_checkpoint_at();
        let victim = run
            .wal
            .iter()
            .position(|r| r.at > ckpt_at)
            .expect("a 600s run logs past the 150s checkpoint");
        run.wal[victim].reminders = run.wal[victim].reminders.wrapping_add(1);
        let (at, home) = (run.wal[victim].at, run.wal[victim].home);
        match resume_scale_durable(&cfg, &run) {
            Err(CheckpointError::WalDivergence { at: got_at, home: got_home }) => {
                assert_eq!((got_at, got_home), (at, home));
            }
            other => panic!("tampered log must diverge, got {other:?}"),
        }
        // Records already covered by the snapshot chain are not replayed;
        // only the tail is cross-checked.
        run.wal[victim].reminders = run.wal[victim].reminders.wrapping_sub(1);
        if let Some(head) = run.wal.iter().position(|r| r.at <= ckpt_at) {
            run.wal[head].praises = run.wal[head].praises.wrapping_add(1);
            assert!(resume_scale_durable(&cfg, &run).is_ok());
        }
    }

    #[test]
    fn durable_chain_refuses_a_foreign_config() {
        let cfg = small_cfg();
        let (_, run) = run_scale_durable(&cfg, &[SimTime::from_secs(150)]);
        let reseeded = MetroConfig { seed: cfg.seed + 1, ..small_cfg() };
        assert!(matches!(
            resume_scale_durable(&reseeded, &run),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    /// A policy aggressive enough that the small test fleet escalates.
    fn eager_policy() -> CarePolicy {
        CarePolicy {
            prompt_failure_streak: 1,
            missed_adl_streak: 1,
            ack_delay_ms: [20_000, 10_000, 5_000],
            resolve_after_ms: 30_000,
            ..CarePolicy::default()
        }
    }

    #[test]
    fn care_overlay_is_observation_only_and_invariant() {
        let policy = eager_policy();
        let cfg = small_cfg();
        let (report, care) = run_scale_care(&cfg, &policy);
        assert_eq!(report, run_scale(&cfg), "care is derived, never fed back");
        assert!(!care.events.is_empty(), "an eager policy must escalate somewhere");
        assert!(
            care.events.windows(2).all(|w| {
                (w[0].at, w[0].home, w[0].seq) < (w[1].at, w[1].home, w[1].seq)
            }),
            "the care log is strictly (at, home, seq)-ordered"
        );
        let heap = MetroConfig { engine: EngineKind::Heap, ..small_cfg() };
        let parallel = MetroConfig { jobs: 3, ..small_cfg() };
        assert_eq!(care, run_scale_care(&heap, &policy).1, "engine must not change care");
        assert_eq!(care, run_scale_care(&parallel, &policy).1, "jobs must not change care");
        assert!(care.analytics.compliance_pct.total() > 0, "homes sample compliance");
    }

    #[test]
    fn traced_care_counts_the_escalation_lifecycle() {
        let policy = eager_policy();
        let cfg = small_cfg();
        let (traced, care) = run_scale_care_traced(&cfg, &policy);
        let agg = traced.telemetry.aggregate();
        let count = |kind| care.events.iter().filter(|e| e.kind == kind).count() as u64;
        assert_eq!(agg.counter(Ctr::EscalationsRaised), count(CareEventKind::Raised));
        assert_eq!(agg.counter(Ctr::EscalationsAcked), count(CareEventKind::Acked));
        assert_eq!(agg.counter(Ctr::EscalationsResolved), count(CareEventKind::Resolved));
        assert_eq!(traced.report, run_scale(&cfg), "tracing + care stays observation-only");
    }

    /// The served path must stream the exact batch care log: per-wake
    /// drains plus the finish drain cover every event, and the merged
    /// output is bit-identical to the batch overlay on either engine.
    #[test]
    fn served_care_matches_the_batch_overlay() {
        let policy = eager_policy();
        for engine in [EngineKind::Wheel, EngineKind::Heap] {
            let cfg = MetroConfig { engine, ..small_cfg() };
            let (_, _, batch_care) = run_scale_care_walled(&cfg, &policy);
            let ctx =
                ServeCtx::new(cfg.clone()).expect("small fleets fit").with_care(policy.clone());
            let mut shards = Vec::new();
            let mut streamed = Vec::new();
            let mut deliveries = Vec::new();
            for (first, count) in ctx.chunks() {
                let mut session = ctx.session(first, count, false, false);
                let mut due = Vec::new();
                while let Some(now) = session.next_batch(&mut due) {
                    for &home in &due {
                        session.serve_home(home, now, false, &mut deliveries);
                        session.drain_care(home, &mut streamed);
                    }
                }
                session.finish_care(&mut streamed);
                shards.push(session.finish());
            }
            let (_, _, care) = collect_served(&cfg, shards);
            let care = care.expect("care was enabled on the context");
            assert_eq!(care, batch_care, "{engine} served care diverged from batch");
            streamed.sort_unstable_by_key(|e| (e.at, e.home, e.seq));
            assert_eq!(streamed, care.events, "{engine} streamed frames miss events");
        }
    }

    #[test]
    fn oversized_fleets_are_rejected_at_session_setup() {
        let cfg = MetroConfig { homes: u32::MAX as usize + 2, ..small_cfg() };
        let err = match ServeCtx::new(cfg) {
            Err(err) => err,
            Ok(_) => panic!("a fleet past the u32 id space must be rejected"),
        };
        assert_eq!(err.homes, u32::MAX as usize + 2);
        assert!(err.to_string().contains("u32"), "{err}");
        // The largest addressable fleet is fine (ids 0..=u32::MAX) —
        // only the context build, never FleetCtx training, runs here.
        assert!(ServeCtx::new(MetroConfig { homes: 4, ..small_cfg() }).is_ok());
    }

    #[test]
    fn seeds_differentiate_homes() {
        let report = run_scale(&small_cfg());
        // Independent RNG streams: not every home behaves identically.
        let first = report.per_home[0];
        assert!(
            report.per_home.iter().any(|h| h != &first),
            "homes should diverge: {:?}",
            report.per_home
        );
    }
}
