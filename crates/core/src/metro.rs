//! Metro-scale serving: many homes, one engine.
//!
//! The ROADMAP north star is a base-station fleet serving millions of
//! users; this module is the serving-side counterpart of the PR-1
//! training fleet. [`run_scale`] simulates N independent households —
//! each a full CoReDA deployment: per-activity [`Coreda`] systems with
//! their own sensornets and planners, plus a home-wide
//! [`SessionTracker`] — for a wall of simulated hours, sharded across
//! [`FleetEngine`] workers.
//!
//! Two engine modes run the *same* per-instant pipeline logic:
//!
//! - [`EngineKind::Wheel`] (the metro engine): each shard multiplexes its
//!   homes over one timing-wheel [`Simulator`]; homes sleep through quiet
//!   stretches and wake event-driven — at the next episode start, the
//!   next 100 ms pipeline tick of a running episode, or the session
//!   tracker's idle-close deadline.
//! - [`EngineKind::Heap`] (the seed baseline): dense 10 Hz polling of
//!   every home across the whole horizon on the original binary-heap
//!   queue — what the pre-metro code would have done.
//!
//! Both produce bit-identical [`HomeStats`] because quiet instants draw
//! no randomness, and results are bit-identical at any `jobs` count
//! because every random stream is counter-derived per home
//! ([`derive_seed`]) and homes never interact.

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::patient::PatientProfile;
use coreda_adl::routine::Routine;
use coreda_des::rng::SimRng;
use coreda_des::sim::Simulator;
use coreda_des::time::{SimDuration, SimTime};

use crate::checkpoint::{config_digest, CheckpointError, HomeCheckpoint, MetroCheckpoint};
use crate::fleet::{default_jobs, derive_seed, FleetEngine};
use crate::live::StochasticBehavior;
use crate::planning::PlanningSubsystem;
use crate::sessions::{SessionEvent, SessionTracker};
use crate::system::{Coreda, CoredaConfig, LiveEpisode};
use crate::telemetry::{Ctr, HomeRecorder, Telemetry, TraceKind};

/// Which event queue drives the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Timing-wheel queue, event-driven wakes (the metro engine).
    Wheel,
    /// Binary-heap queue, dense 10 Hz polling (the seed baseline).
    Heap,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Wheel => "wheel",
            EngineKind::Heap => "heap",
        })
    }
}

/// Configuration of a metro-scale serving run.
#[derive(Debug, Clone)]
pub struct MetroConfig {
    /// Number of independent households.
    pub homes: usize,
    /// Simulated wall of time to serve.
    pub horizon: SimDuration,
    /// Base seed; every home derives its own counter-based streams.
    pub seed: u64,
    /// Worker threads to shard homes across (results are identical at
    /// any count).
    pub jobs: usize,
    /// Queue/scheduling mode.
    pub engine: EngineKind,
    /// Shortest quiet gap between a home's episodes.
    pub gap_min: SimDuration,
    /// Longest quiet gap between a home's episodes.
    pub gap_max: SimDuration,
    /// Per-system configuration (radio, thresholds, planner...).
    pub system: CoredaConfig,
    /// Offline training episodes for the per-activity planner templates.
    pub train_episodes: usize,
    /// Session-tracker idle-close window. Gaps shorter than this leave
    /// the previous session open into the next episode, producing
    /// cross-activity flags and abandoned closes — deliberate overlap.
    pub idle_close: SimDuration,
}

impl Default for MetroConfig {
    fn default() -> Self {
        MetroConfig {
            homes: 16,
            horizon: SimDuration::from_secs(1800),
            seed: 2007,
            jobs: default_jobs(),
            engine: EngineKind::Wheel,
            gap_min: SimDuration::from_secs(60),
            gap_max: SimDuration::from_secs(240),
            system: CoredaConfig::default(),
            train_episodes: 150,
            idle_close: SimDuration::from_secs(120),
        }
    }
}

/// What one home did over the horizon. Identical across engines and at
/// any worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HomeStats {
    /// Live episodes begun.
    pub episodes_started: u64,
    /// Episodes the patient finished.
    pub episodes_completed: u64,
    /// Reminders issued.
    pub reminders: u64,
    /// Praises issued.
    pub praises: u64,
    /// Activity sessions the tracker opened.
    pub sessions_started: u64,
    /// Sessions closed with the terminal tool seen.
    pub sessions_completed: u64,
    /// Sessions closed without it.
    pub sessions_abandoned: u64,
    /// Foreign-tool-use flags raised.
    pub cross_activity_flags: u64,
    /// 100 ms pipeline ticks executed (the logical serving work — the
    /// same count whichever engine ran them).
    pub pipeline_ticks: u64,
    /// Total sensor-node energy consumed, in microjoules.
    pub energy_uj: f64,
}

impl HomeStats {
    /// Fleet-wide totals must survive pathological inputs (a fuzzed or
    /// hand-built report), so aggregation saturates instead of wrapping —
    /// but never *silently*: the return value counts how many fields hit
    /// the clamp, so callers can surface that the totals are lower
    /// bounds rather than exact counts.
    fn absorb(&mut self, other: &HomeStats) -> u64 {
        let mut clamped = 0u64;
        let mut sat = |a: u64, b: u64| {
            let (v, overflowed) = a.overflowing_add(b);
            if overflowed {
                clamped += 1;
                u64::MAX
            } else {
                v
            }
        };
        self.episodes_started = sat(self.episodes_started, other.episodes_started);
        self.episodes_completed = sat(self.episodes_completed, other.episodes_completed);
        self.reminders = sat(self.reminders, other.reminders);
        self.praises = sat(self.praises, other.praises);
        self.sessions_started = sat(self.sessions_started, other.sessions_started);
        self.sessions_completed = sat(self.sessions_completed, other.sessions_completed);
        self.sessions_abandoned = sat(self.sessions_abandoned, other.sessions_abandoned);
        self.cross_activity_flags = sat(self.cross_activity_flags, other.cross_activity_flags);
        self.pipeline_ticks = sat(self.pipeline_ticks, other.pipeline_ticks);
        self.energy_uj += other.energy_uj;
        clamped
    }
}

/// One event on a home's serving tap — the ordered stream a differential
/// harness compares across engines and worker counts (exact per-home
/// equality is a much stronger check than equal counters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TapEvent {
    /// A live episode began for the home's activity `act`.
    EpisodeStarted {
        /// Instant the episode began.
        at: SimTime,
        /// Index into the home's activities.
        act: usize,
    },
    /// A pipeline tick produced something user-visible.
    Tick {
        /// Instant of the tick.
        at: SimTime,
        /// What the tick produced.
        out: crate::system::TickOutcome,
    },
    /// The session tracker recognised an event.
    Session(SessionEvent),
}

/// The result of a [`run_scale`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Homes served.
    pub homes: usize,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Engine that ran the serve.
    pub engine: EngineKind,
    /// Per-home statistics, in home order.
    pub per_home: Vec<HomeStats>,
    /// Raw DES events processed across all shards. Jobs-invariant, but
    /// engine-*dependent* (dense polling pops far more events than
    /// event-driven wakes) — excluded from cross-engine comparisons.
    pub des_events: u64,
    /// Per-home serving taps, in home order. `None` unless the run was
    /// made through [`run_scale_recorded`]; when present, the streams are
    /// bit-identical across engines and worker counts.
    pub events: Option<Vec<Vec<TapEvent>>>,
}

impl ScaleReport {
    /// Fleet-wide totals.
    #[must_use]
    pub fn totals(&self) -> HomeStats {
        self.totals_checked().0
    }

    /// Fleet-wide totals plus the number of fields that saturated while
    /// summing. A non-zero count means some totals are `u64::MAX` lower
    /// bounds, not exact values.
    #[must_use]
    pub fn totals_checked(&self) -> (HomeStats, u64) {
        let mut t = HomeStats::default();
        let mut clamped = 0u64;
        for h in &self.per_home {
            clamped += t.absorb(h);
        }
        (t, clamped)
    }

    /// Total 100 ms pipeline ticks executed.
    #[must_use]
    pub fn pipeline_ticks(&self) -> u64 {
        self.per_home.iter().fold(0u64, |t, h| t.saturating_add(h.pipeline_ticks))
    }

    /// Deterministic summary: no wall-clock, no worker count — byte-
    /// identical for equal configurations at any `jobs`.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let (t, clamped) = self.totals_checked();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "metro-scale serve: {homes} homes x {secs} s ({engine} engine)",
            homes = self.homes,
            secs = self.horizon.as_millis() / 1000,
            engine = self.engine,
        );
        let _ = writeln!(
            out,
            "  episodes: {started} started, {completed} completed",
            started = t.episodes_started,
            completed = t.episodes_completed,
        );
        let _ = writeln!(
            out,
            "  reminders: {rem} issued, {praise} praises",
            rem = t.reminders,
            praise = t.praises,
        );
        let _ = writeln!(
            out,
            "  sessions: {s} started, {c} completed, {a} abandoned, {x} cross-activity flags",
            s = t.sessions_started,
            c = t.sessions_completed,
            a = t.sessions_abandoned,
            x = t.cross_activity_flags,
        );
        let _ = writeln!(
            out,
            "  pipeline ticks: {ticks} ({des} des events)",
            ticks = t.pipeline_ticks,
            des = self.des_events,
        );
        let _ = writeln!(out, "  node energy: {:.3} mJ", t.energy_uj / 1000.0);
        if clamped > 0 {
            let _ = writeln!(
                out,
                "  WARNING: {clamped} total(s) saturated at u64::MAX; counts above are lower bounds",
            );
        }
        out
    }
}

/// An episode in flight in one home.
#[derive(Debug)]
struct RunningEpisode {
    /// Index into the home's systems (which activity).
    act: usize,
    ep: LiveEpisode,
    /// The episode's own counter-derived random stream.
    rng: SimRng,
}

/// One household: per-activity systems, a home-wide session tracker,
/// and the scheduling state the serving engines drive.
struct Home {
    systems: Vec<(Coreda, Routine)>,
    behavior: StochasticBehavior,
    tracker: SessionTracker,
    /// Root of the home's episode substreams.
    root: SimRng,
    /// Gap/start draws — drawn at the same points by both engines.
    sched_rng: SimRng,
    episode: Option<RunningEpisode>,
    ep_index: u64,
    next_start: SimTime,
    /// Coalesces duplicate same-instant wakes in the wheel engine.
    last_handled: Option<SimTime>,
    /// Per-home 100 ms grid offset, spreading homes across wheel slots.
    offset_ms: u64,
    gap_min_ms: u64,
    gap_max_ms: u64,
    stats: HomeStats,
    /// Serving tap: `Some` when the run records its event stream.
    tap: Option<Vec<TapEvent>>,
    /// Flight recorder: `Some` when the run collects telemetry.
    rec: Option<HomeRecorder>,
    /// Session events buffered during a tick (the report sink cannot
    /// borrow the recorder while `live_tick` holds it).
    scratch_sessions: Vec<SessionEvent>,
}

impl Home {
    fn build(
        id: usize,
        cfg: &MetroConfig,
        specs: &[AdlSpec],
        templates: &[PlanningSubsystem],
        record: bool,
        trace: bool,
    ) -> Self {
        let name = format!("home-{id}");
        let systems = specs
            .iter()
            .enumerate()
            .map(|(act, spec)| {
                let seed =
                    derive_seed(cfg.seed, "metro-system", (id as u64) * 16 + act as u64);
                let mut system = Coreda::new(spec.clone(), &name, cfg.system, seed);
                // Planners are trained once per activity and cloned in:
                // building 10k homes must not cost 10k trainings.
                *system.planner_mut() = templates[act].clone();
                let routine = Routine::canonical(spec);
                (system, routine)
            })
            .collect();
        let root = SimRng::seed_from(derive_seed(cfg.seed, "metro-home", id as u64));
        let sched_rng = root.substream("sched", 0);
        let mut home = Home {
            systems,
            behavior: StochasticBehavior::new(PatientProfile::moderate(&name)),
            tracker: SessionTracker::new(specs, cfg.idle_close),
            root,
            sched_rng,
            episode: None,
            ep_index: 0,
            next_start: SimTime::ZERO,
            last_handled: None,
            offset_ms: (id as u64 * 7 + 3) % 100,
            gap_min_ms: cfg.gap_min.as_millis(),
            gap_max_ms: cfg.gap_max.as_millis(),
            stats: HomeStats::default(),
            tap: record.then(Vec::new),
            rec: trace.then(HomeRecorder::new),
            scratch_sessions: Vec::new(),
        };
        let first = home.draw_gap();
        home.next_start = home.align_up(SimTime::ZERO + first);
        home
    }

    /// The smallest instant on this home's 100 ms grid at or after `t`.
    fn align_up(&self, t: SimTime) -> SimTime {
        let ms = t.as_millis();
        let rel = ms.saturating_sub(self.offset_ms);
        let steps = rel.div_ceil(Coreda::TICK.as_millis());
        SimTime::from_millis(self.offset_ms + steps * Coreda::TICK.as_millis())
    }

    fn draw_gap(&mut self) -> SimDuration {
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let ms = self
            .sched_rng
            .uniform_range(self.gap_min_ms as f64, self.gap_max_ms as f64) as u64;
        SimDuration::from_millis(ms)
    }

    fn count_session_event(stats: &mut HomeStats, ev: SessionEvent) {
        match ev {
            SessionEvent::Started { .. } => stats.sessions_started += 1,
            SessionEvent::Ended { completed: true, .. } => stats.sessions_completed += 1,
            SessionEvent::Ended { completed: false, .. } => stats.sessions_abandoned += 1,
            SessionEvent::CrossActivityUse { .. } => stats.cross_activity_flags += 1,
        }
    }

    /// Mirrors a session event into the flight recorder, stamped with the
    /// event's *own* instant (idle closes fire at the deadline, not at the
    /// tick that noticed them).
    fn record_session_event(rec: &mut HomeRecorder, ev: SessionEvent) {
        match ev {
            SessionEvent::Started { activity, at } => {
                rec.inc(Ctr::SessionsStarted);
                rec.event(at, TraceKind::SessionStarted { name: activity });
            }
            SessionEvent::Ended { activity, at, completed } => {
                rec.inc(if completed { Ctr::SessionsCompleted } else { Ctr::SessionsAbandoned });
                rec.event(at, TraceKind::SessionEnded { name: activity, completed });
            }
            SessionEvent::CrossActivityUse { active, at, .. } => {
                rec.inc(Ctr::CrossActivityFlags);
                rec.event(at, TraceKind::CrossActivity { name: active });
            }
        }
    }

    /// The canonical per-instant sequence — identical code for both
    /// engines, so cross-engine equality reduces to both engines calling
    /// it at every instant where anything can change.
    fn poll_instant(&mut self, now: SimTime) {
        // 1. Begin the next episode when its start arrives.
        if self.episode.is_none() && now >= self.next_start {
            let act = usize::try_from(self.ep_index).unwrap_or(usize::MAX) % self.systems.len();
            let mut rng = self.root.substream("episode", self.ep_index);
            let (system, routine) = &mut self.systems[act];
            let ep = system.begin_live(routine, &mut self.behavior, now, &mut rng, None);
            self.episode = Some(RunningEpisode { act, ep, rng });
            self.stats.episodes_started += 1;
            if let Some(tap) = self.tap.as_mut() {
                tap.push(TapEvent::EpisodeStarted { at: now, act });
            }
            if let Some(rec) = self.rec.as_mut() {
                rec.inc(Ctr::EpisodesStarted);
                #[allow(clippy::cast_possible_truncation)]
                rec.event(
                    now,
                    TraceKind::EpisodeStarted { episode: self.ep_index.min(u64::from(u32::MAX)) as u32 },
                );
            }
        }

        // 2. Run the running episode's 100 ms pipeline tick.
        let mut finished = false;
        if let Some(run) = self.episode.as_mut() {
            if now >= run.ep.next_tick_at() {
                let (system, routine) = &mut self.systems[run.act];
                let tracker = &mut self.tracker;
                let stats = &mut self.stats;
                let tap = &mut self.tap;
                let scratch = &mut self.scratch_sessions;
                let out = system.live_tick(
                    &mut run.ep,
                    routine,
                    &mut self.behavior,
                    now,
                    &mut run.rng,
                    None,
                    self.rec.as_mut(),
                    &mut |src, at| {
                        for ev in tracker.on_report(src, at) {
                            Self::count_session_event(stats, ev);
                            if let Some(tap) = tap.as_mut() {
                                tap.push(TapEvent::Session(ev));
                            }
                            scratch.push(ev);
                        }
                    },
                );
                self.stats.pipeline_ticks += 1;
                self.stats.reminders += u64::from(out.reminders);
                self.stats.praises += u64::from(out.praises);
                if out.completed_now {
                    self.stats.episodes_completed += 1;
                }
                if out != crate::system::TickOutcome::default() {
                    if let Some(tap) = self.tap.as_mut() {
                        tap.push(TapEvent::Tick { at: now, out });
                    }
                }
                if let Some(rec) = self.rec.as_mut() {
                    // The report sink above could not borrow the recorder
                    // while `live_tick` held it; drain the buffered
                    // session events now, in arrival order.
                    for ev in self.scratch_sessions.drain(..) {
                        Self::record_session_event(rec, ev);
                    }
                    if out.completed_now {
                        rec.inc(Ctr::EpisodesCompleted);
                    }
                    if out.finished {
                        rec.event(now, TraceKind::EpisodeEnded { completed: out.completed_now });
                    }
                } else {
                    self.scratch_sessions.clear();
                }
                finished = out.finished;
            }
        }

        // 3. Home-wide idle close (the tracker's clock tick).
        if let Some(ev) = self.tracker.on_tick(now) {
            Self::count_session_event(&mut self.stats, ev);
            if let Some(tap) = self.tap.as_mut() {
                tap.push(TapEvent::Session(ev));
            }
            if let Some(rec) = self.rec.as_mut() {
                Self::record_session_event(rec, ev);
            }
        }

        // 4. Episode cleanup: draw the quiet gap and schedule the next.
        if finished {
            self.episode = None;
            self.ep_index += 1;
            let gap = self.draw_gap();
            self.next_start = self.align_up(now + gap);
        }
    }

    /// Snapshots everything the home cannot rebuild from its config:
    /// system states, live session, RNG positions, the in-flight episode,
    /// scheduling state, statistics, and (when traced) the recorder.
    /// `pending` is the home's share of the shard queue at the snapshot.
    ///
    /// Energy is *not* carried in the stats (it stays zero until
    /// [`finish`] recomputes it from the restored node meters), and taps
    /// are not checkpointed — a resumed recorded run taps only the
    /// resumed segment.
    fn capture(&self, pending: Vec<SimTime>) -> HomeCheckpoint {
        HomeCheckpoint {
            systems: self.systems.iter().map(|(s, _)| s.export_state()).collect(),
            tracker: self.tracker.export_active(),
            root: self.root.state_parts(),
            sched: self.sched_rng.state_parts(),
            episode: self
                .episode
                .as_ref()
                .map(|run| (run.act, run.ep.export_state(), run.rng.state_parts())),
            ep_index: self.ep_index,
            next_start: self.next_start,
            last_handled: self.last_handled,
            stats: HomeStats { energy_uj: 0.0, ..self.stats },
            pending,
            rec: self.rec.as_ref().map(HomeRecorder::export_state),
        }
    }

    /// Overwrites a freshly built home with checkpointed state. The
    /// build-time gap draw is discarded wholesale: the restored
    /// `sched_rng` position already accounts for every draw the original
    /// run made. The caller re-schedules `ckpt.pending` itself.
    fn restore(&mut self, ckpt: &HomeCheckpoint) {
        assert_eq!(
            self.systems.len(),
            ckpt.systems.len(),
            "checkpoint was taken with a different activity set"
        );
        for ((system, _), state) in self.systems.iter_mut().zip(&ckpt.systems) {
            system
                .restore_state(state)
                .expect("config digest matched, so the rebuilt system accepts its state");
        }
        self.tracker.restore_active(ckpt.tracker);
        self.root = SimRng::from_state_parts(ckpt.root.0, ckpt.root.1);
        self.sched_rng = SimRng::from_state_parts(ckpt.sched.0, ckpt.sched.1);
        self.episode = ckpt.episode.as_ref().map(|&(act, ref ep, rng)| RunningEpisode {
            act,
            ep: LiveEpisode::from_state(ep),
            rng: SimRng::from_state_parts(rng.0, rng.1),
        });
        self.ep_index = ckpt.ep_index;
        self.next_start = ckpt.next_start;
        self.last_handled = ckpt.last_handled;
        self.stats = HomeStats { energy_uj: 0.0, ..ckpt.stats };
        // Counters merge across the snapshot boundary: a resumed traced
        // run's summary covers the whole run, not just the tail. An
        // untraced checkpoint resumed with tracing on simply starts a
        // fresh recorder covering the resumed segment.
        if let (Some(rec), Some(state)) = (self.rec.as_mut(), ckpt.rec.as_ref()) {
            rec.restore_state(state);
        }
    }
}

/// One wake of one home (index local to the shard).
#[derive(Debug, Clone, Copy)]
struct Wake(usize);

struct ChunkOut {
    stats: Vec<HomeStats>,
    taps: Option<Vec<Vec<TapEvent>>>,
    recs: Option<Vec<HomeRecorder>>,
    des_events: u64,
    /// Shard-local queue high-water mark — engine- and jobs-dependent.
    max_pending: usize,
    /// One entry per requested stop: `(processed events at the stop,
    /// per-home snapshots)`, shard-local.
    checkpoints: Vec<(u64, Vec<HomeCheckpoint>)>,
}

/// Serves every wake up to and including `until` with the wheel engine's
/// scheduling policy. Shared between the inter-checkpoint segments and
/// the final run to the horizon, so stopping mid-run reuses the exact
/// loop body an uninterrupted run executes.
///
/// Follow-up wakes are scheduled *unconditionally*, even past the
/// horizon: `step_until` never pops them, so they cost a queue slot and
/// nothing else — and it keeps a snapshot's pending set independent of
/// the horizon the capturing run happened to use. A checkpoint taken at
/// the very end of a short run must still carry each home's natural next
/// wake, or a resume with a longer `--hours` would find a dead fleet.
fn wheel_segment(sim: &mut Simulator<Wake>, homes: &mut [Home], until: SimTime) {
    while let Some(Wake(i)) = sim.step_until(until) {
        let now = sim.now();
        let home = &mut homes[i];
        if home.last_handled == Some(now) {
            // A duplicate wake for an instant already served (e.g.
            // a stale session check landing on an episode tick).
            continue;
        }
        home.last_handled = Some(now);
        home.poll_instant(now);
        if let Some(run) = &home.episode {
            sim.schedule_at(run.ep.next_tick_at(), Wake(i));
        } else {
            sim.schedule_at(home.next_start, Wake(i));
            if let Some(deadline) = home.tracker.idle_deadline() {
                sim.schedule_at(home.align_up(deadline), Wake(i));
            }
        }
    }
}

/// The heap engine's dense 10 Hz loop body, segment-shaped like
/// [`wheel_segment`] (and scheduling unconditionally for the same
/// reason).
fn heap_segment(sim: &mut Simulator<Wake>, homes: &mut [Home], until: SimTime) {
    while let Some(Wake(i)) = sim.step_until(until) {
        let now = sim.now();
        let home = &mut homes[i];
        home.last_handled = Some(now);
        home.poll_instant(now);
        sim.schedule_at(now + Coreda::TICK, Wake(i));
    }
}

/// Snapshots a shard at the current instant without perturbing it:
/// drains the queue to learn each home's pending wakes, re-schedules
/// every drained event in the same order (re-insertion assigns fresh
/// ascending sequence numbers, so same-instant FIFO order is preserved),
/// and captures each home with its share of the queue.
fn capture_shard(sim: &mut Simulator<Wake>, homes: &[Home]) -> (u64, Vec<HomeCheckpoint>) {
    let pending = sim.drain_pending();
    let mut per_home: Vec<Vec<SimTime>> = vec![Vec::new(); homes.len()];
    for &(due, Wake(i)) in &pending {
        per_home[i].push(due);
    }
    for (due, wake) in pending {
        sim.schedule_at(due, wake);
    }
    let snaps = homes
        .iter()
        .enumerate()
        .map(|(i, h)| h.capture(std::mem::take(&mut per_home[i])))
        .collect();
    (sim.processed(), snaps)
}

#[allow(clippy::needless_pass_by_value, clippy::too_many_arguments)]
fn run_chunk(
    cfg: &MetroConfig,
    specs: &[AdlSpec],
    templates: &[PlanningSubsystem],
    first_home: usize,
    count: usize,
    record: bool,
    trace: bool,
    stops: &[SimTime],
    resume: Option<&[HomeCheckpoint]>,
) -> ChunkOut {
    let mut homes: Vec<Home> = (first_home..first_home + count)
        .map(|id| Home::build(id, cfg, specs, templates, record, trace))
        .collect();
    let horizon_end = SimTime::ZERO + cfg.horizon;

    let mut sim: Simulator<Wake> = match cfg.engine {
        EngineKind::Wheel => Simulator::new(),
        EngineKind::Heap => Simulator::with_heap_queue(),
    };

    // Initial scheduling: a fresh run wakes each home at its first
    // instant of interest; a resumed run rehydrates the exact pending
    // wakes the checkpoint drained, in their drained (dispatch) order.
    match resume {
        None => match cfg.engine {
            EngineKind::Wheel => {
                for (i, h) in homes.iter().enumerate() {
                    sim.schedule_at(h.next_start, Wake(i));
                }
            }
            EngineKind::Heap => {
                for (i, h) in homes.iter().enumerate() {
                    sim.schedule_at(SimTime::from_millis(h.offset_ms), Wake(i));
                }
            }
        },
        Some(ckpts) => {
            assert_eq!(ckpts.len(), homes.len(), "resume shard size mismatch");
            for (i, (home, ckpt)) in homes.iter_mut().zip(ckpts).enumerate() {
                home.restore(ckpt);
                for &due in &ckpt.pending {
                    sim.schedule_at(due, Wake(i));
                }
            }
        }
    }

    let segment = match cfg.engine {
        EngineKind::Wheel => wheel_segment,
        EngineKind::Heap => heap_segment,
    };
    let mut checkpoints = Vec::with_capacity(stops.len());
    for &stop in stops {
        segment(&mut sim, &mut homes, stop);
        checkpoints.push(capture_shard(&mut sim, &homes));
    }
    segment(&mut sim, &mut homes, horizon_end);
    finish(homes, sim.processed(), sim.max_pending(), checkpoints)
}

fn finish(
    mut homes: Vec<Home>,
    des_events: u64,
    max_pending: usize,
    checkpoints: Vec<(u64, Vec<HomeCheckpoint>)>,
) -> ChunkOut {
    for h in &mut homes {
        h.stats.energy_uj = h.systems.iter().map(|(s, _)| s.total_energy_uj()).sum();
    }
    let recording = homes.first().is_some_and(|h| h.tap.is_some());
    let tracing = homes.first().is_some_and(|h| h.rec.is_some());
    let mut stats = Vec::with_capacity(homes.len());
    let mut taps = recording.then(|| Vec::with_capacity(homes.len()));
    let mut recs = tracing.then(|| Vec::with_capacity(homes.len()));
    for h in homes {
        stats.push(h.stats);
        if let (Some(taps), Some(tap)) = (taps.as_mut(), h.tap) {
            taps.push(tap);
        }
        if let (Some(recs), Some(rec)) = (recs.as_mut(), h.rec) {
            recs.push(rec);
        }
    }
    ChunkOut { stats, taps, recs, des_events, max_pending, checkpoints }
}

/// Serves `cfg.homes` households for `cfg.horizon`, sharded across
/// `cfg.jobs` workers. Results are bit-identical at any worker count and
/// across both [`EngineKind`]s (modulo [`ScaleReport::des_events`]).
#[must_use]
pub fn run_scale(cfg: &MetroConfig) -> ScaleReport {
    run_scale_with(cfg, false)
}

/// [`run_scale`] with per-home serving taps recorded into
/// [`ScaleReport::events`] — the input to differential oracles that
/// compare whole event streams, not just counters.
#[must_use]
pub fn run_scale_recorded(cfg: &MetroConfig) -> ScaleReport {
    run_scale_with(cfg, true)
}

/// The result of a [`run_scale_traced`] call: the report plus the
/// flight-recorder telemetry collected alongside it.
#[derive(Debug)]
pub struct TraceOutput {
    /// The serving report — identical to what [`run_scale`] returns for
    /// the same config (recording draws no randomness and mutates no
    /// simulation state).
    pub report: ScaleReport,
    /// Per-home flight recorders, merged deterministically in home order.
    pub telemetry: Telemetry,
    /// Deepest any shard's event queue ever got. Engine- and
    /// jobs-*dependent* (sharding changes how many homes share a queue),
    /// so it lives outside [`Telemetry`] and is never part of
    /// determinism comparisons.
    pub peak_pending: usize,
}

/// [`run_scale`] with the flight recorder on: every home collects
/// pipeline counters, stage-latency histograms, and a bounded ring of
/// trace events. The report itself is bit-identical to an untraced run,
/// and the telemetry is bit-identical at any worker count and across
/// engines (recorders are merged in home order).
#[must_use]
pub fn run_scale_traced(cfg: &MetroConfig) -> TraceOutput {
    run_scale_inner(cfg, false, true, &[], None)
        .expect("a run without a resume source cannot mismatch")
        .0
}

/// [`run_scale`] that additionally snapshots the whole fleet at each
/// instant in `stops` — the run itself is unperturbed (capture drains
/// and re-schedules the queue non-destructively), so the returned report
/// is bit-identical to a plain [`run_scale`] of the same config.
///
/// # Panics
///
/// Panics if `stops` is not sorted ascending or reaches past the
/// horizon. The CLI validates user input before calling; hitting this
/// from code is a bug.
#[must_use]
pub fn run_scale_checkpointed(
    cfg: &MetroConfig,
    stops: &[SimTime],
) -> (ScaleReport, Vec<MetroCheckpoint>) {
    let (out, ckpts) = run_scale_inner(cfg, false, false, stops, None)
        .expect("a run without a resume source cannot mismatch");
    (out.report, ckpts)
}

/// [`run_scale_traced`] with fleet snapshots at each instant in `stops`;
/// the snapshots carry the flight-recorder state, so a traced resume
/// continues the same counters and trace rings.
///
/// # Panics
///
/// Panics on invalid `stops`, as [`run_scale_checkpointed`].
#[must_use]
pub fn run_scale_checkpointed_traced(
    cfg: &MetroConfig,
    stops: &[SimTime],
) -> (TraceOutput, Vec<MetroCheckpoint>) {
    run_scale_inner(cfg, false, true, stops, None)
        .expect("a run without a resume source cannot mismatch")
}

/// Continues a serve from a fleet snapshot to `cfg.horizon`. The
/// resumed report — statistics, energy, DES event count — is
/// bit-identical to an uninterrupted [`run_scale`] of the same config,
/// for any checkpoint instant, any `cfg.jobs`, and either engine.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`] when the snapshot's
/// [`config_digest`] does not match `cfg` (a resume may change only
/// `jobs`, `horizon` and `engine`).
pub fn resume_scale(
    cfg: &MetroConfig,
    ckpt: &MetroCheckpoint,
) -> Result<ScaleReport, CheckpointError> {
    run_scale_inner(cfg, false, false, &[], Some(ckpt)).map(|(out, _)| out.report)
}

/// [`resume_scale`] with the flight recorder on. When the snapshot was
/// itself traced, counters and trace rings merge across the boundary:
/// the resumed telemetry describes the whole run, not just the tail.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`], as [`resume_scale`].
pub fn resume_scale_traced(
    cfg: &MetroConfig,
    ckpt: &MetroCheckpoint,
) -> Result<TraceOutput, CheckpointError> {
    run_scale_inner(cfg, false, true, &[], Some(ckpt)).map(|(out, _)| out)
}

/// Resume *and* keep checkpointing: continues from `ckpt` and snapshots
/// again at each instant in `stops` (which must lie past the snapshot).
/// This is what a periodically checkpointing server restarts into.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`], as [`resume_scale`].
///
/// # Panics
///
/// Panics on invalid `stops`, as [`run_scale_checkpointed`].
pub fn resume_scale_checkpointed(
    cfg: &MetroConfig,
    ckpt: &MetroCheckpoint,
    stops: &[SimTime],
) -> Result<(ScaleReport, Vec<MetroCheckpoint>), CheckpointError> {
    run_scale_inner(cfg, false, false, stops, Some(ckpt))
        .map(|(out, ckpts)| (out.report, ckpts))
}

fn run_scale_with(cfg: &MetroConfig, record: bool) -> ScaleReport {
    run_scale_inner(cfg, record, false, &[], None)
        .expect("a run without a resume source cannot mismatch")
        .0
        .report
}

fn run_scale_inner(
    cfg: &MetroConfig,
    record: bool,
    trace: bool,
    stops: &[SimTime],
    resume: Option<&MetroCheckpoint>,
) -> Result<(TraceOutput, Vec<MetroCheckpoint>), CheckpointError> {
    let horizon_end = SimTime::ZERO + cfg.horizon;
    assert!(
        stops.windows(2).all(|w| w[0] <= w[1]),
        "checkpoint stops must be sorted ascending"
    );
    assert!(
        stops.iter().all(|&s| s <= horizon_end),
        "checkpoint stops must lie within the horizon"
    );
    let digest = config_digest(cfg);
    let mut base_des = 0u64;
    if let Some(ckpt) = resume {
        if ckpt.digest != digest {
            return Err(CheckpointError::ConfigMismatch {
                expected: ckpt.digest,
                actual: digest,
            });
        }
        if ckpt.homes.len() != cfg.homes {
            return Err(CheckpointError::ConfigMismatch {
                expected: ckpt.digest,
                actual: digest,
            });
        }
        base_des = ckpt.des_events;
    }
    let specs = vec![catalog::tea_making(), catalog::tooth_brushing()];
    let templates: Vec<PlanningSubsystem> = specs
        .iter()
        .enumerate()
        .map(|(act, spec)| {
            let routine = Routine::canonical(spec);
            let mut planner = PlanningSubsystem::new(spec, cfg.system.planning);
            let mut rng = SimRng::seed_from(derive_seed(cfg.seed, "metro-train", act as u64));
            for _ in 0..cfg.train_episodes {
                planner.train_episode(routine.steps(), &mut rng);
            }
            planner
        })
        .collect();

    // Contiguous chunks, one per worker: flattening shard results in
    // chunk order reproduces home order whatever the worker count.
    let shards = cfg.jobs.max(1).min(cfg.homes.max(1));
    let base = cfg.homes / shards;
    let extra = cfg.homes % shards;
    let mut chunks = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let count = base + usize::from(s < extra);
        if count > 0 {
            chunks.push((start, count));
        }
        start += count;
    }

    let engine = FleetEngine::new(cfg.jobs);
    let results = engine.map(chunks, |(first, count)| {
        let shard_resume = resume.map(|ckpt| &ckpt.homes[first..first + count]);
        run_chunk(cfg, &specs, &templates, first, count, record, trace, stops, shard_resume)
    });

    let mut per_home = Vec::with_capacity(cfg.homes);
    let mut events = record.then(|| Vec::with_capacity(cfg.homes));
    let mut telemetry = Telemetry::default();
    let mut des_events = base_des;
    let mut peak_pending = 0usize;
    let mut checkpoints: Vec<MetroCheckpoint> = stops
        .iter()
        .map(|&at| MetroCheckpoint {
            at,
            digest,
            des_events: base_des,
            homes: Vec::with_capacity(cfg.homes),
        })
        .collect();
    for chunk in results {
        per_home.extend(chunk.stats);
        if let (Some(events), Some(taps)) = (events.as_mut(), chunk.taps) {
            events.extend(taps);
        }
        if let Some(recs) = chunk.recs {
            // Chunks are contiguous and flattened in chunk order, so this
            // reproduces home order at any worker count.
            telemetry.homes.extend(recs);
        }
        des_events += chunk.des_events;
        peak_pending = peak_pending.max(chunk.max_pending);
        for (ckpt, (processed, homes)) in checkpoints.iter_mut().zip(chunk.checkpoints) {
            // Shard queues count their own events; fleet-level totals sum
            // them (plus whatever the resume source had already served).
            ckpt.des_events += processed;
            ckpt.homes.extend(homes);
        }
    }
    let report = ScaleReport {
        homes: cfg.homes,
        horizon: cfg.horizon,
        engine: cfg.engine,
        per_home,
        des_events,
        events,
    };
    if trace {
        let (_, clamped) = report.totals_checked();
        telemetry.fleet.add(Ctr::TotalsSaturated, clamped);
    }
    Ok((TraceOutput { report, telemetry, peak_pending }, checkpoints))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MetroConfig {
        MetroConfig {
            homes: 4,
            horizon: SimDuration::from_secs(600),
            jobs: 1,
            gap_min: SimDuration::from_secs(60),
            gap_max: SimDuration::from_secs(180),
            train_episodes: 120,
            ..MetroConfig::default()
        }
    }

    #[test]
    fn homes_actually_serve() {
        let report = run_scale(&small_cfg());
        let t = report.totals();
        assert_eq!(report.per_home.len(), 4);
        assert!(t.episodes_started >= 4, "every home should start an episode: {t:?}");
        assert!(t.sessions_started > 0, "tool reports should open sessions: {t:?}");
        assert!(t.pipeline_ticks > 0);
        assert!(t.energy_uj > 0.0, "radio traffic costs energy");
    }

    #[test]
    fn wheel_and_heap_engines_agree_per_home() {
        let wheel = run_scale(&small_cfg());
        let heap = run_scale(&MetroConfig { engine: EngineKind::Heap, ..small_cfg() });
        assert_eq!(wheel.per_home, heap.per_home);
        // Dense polling pops far more raw DES events for the same work.
        assert!(
            heap.des_events > wheel.des_events,
            "heap {h} should exceed wheel {w}",
            h = heap.des_events,
            w = wheel.des_events
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let serial = run_scale(&small_cfg());
        let parallel = run_scale(&MetroConfig { jobs: 3, ..small_cfg() });
        assert_eq!(serial, parallel);
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn render_is_complete_and_deterministic() {
        let report = run_scale(&small_cfg());
        let text = report.render();
        assert!(text.contains("4 homes"));
        assert!(text.contains("wheel engine"));
        assert!(text.contains("episodes:"));
        assert!(text.contains("sessions:"));
        assert!(text.contains("pipeline ticks:"));
        assert_eq!(text, run_scale(&small_cfg()).render());
    }

    #[test]
    fn recorded_taps_are_engine_and_jobs_invariant() {
        let wheel = run_scale_recorded(&small_cfg());
        let heap = run_scale_recorded(&MetroConfig { engine: EngineKind::Heap, ..small_cfg() });
        let parallel = run_scale_recorded(&MetroConfig { jobs: 3, ..small_cfg() });
        assert_eq!(wheel.events, heap.events);
        assert_eq!(wheel.events, parallel.events);
        let taps = wheel.events.as_ref().unwrap();
        assert_eq!(taps.len(), 4);
        assert!(taps.iter().any(|t| !t.is_empty()), "taps should carry events");
        // The unrecorded path stays tap-free, so full-report equality
        // tests keep comparing `None == None`.
        assert_eq!(run_scale(&small_cfg()).events, None);
    }

    #[test]
    fn traced_run_matches_untraced_report() {
        let plain = run_scale(&small_cfg());
        let traced = run_scale_traced(&small_cfg());
        assert_eq!(plain, traced.report, "recording must not perturb the simulation");
        assert_eq!(traced.telemetry.homes.len(), 4);
        let agg = traced.telemetry.aggregate();
        let t = plain.totals();
        assert_eq!(agg.counter(Ctr::EpisodesStarted), t.episodes_started);
        assert_eq!(agg.counter(Ctr::EpisodesCompleted), t.episodes_completed);
        assert_eq!(agg.counter(Ctr::RemindersIssued), t.reminders);
        assert_eq!(agg.counter(Ctr::Praises), t.praises);
        assert_eq!(agg.counter(Ctr::SessionsStarted), t.sessions_started);
        assert_eq!(agg.counter(Ctr::SessionsCompleted), t.sessions_completed);
        assert_eq!(agg.counter(Ctr::SessionsAbandoned), t.sessions_abandoned);
        assert_eq!(agg.counter(Ctr::CrossActivityFlags), t.cross_activity_flags);
        assert_eq!(agg.counter(Ctr::TotalsSaturated), 0);
        assert!(agg.counter(Ctr::SampleWindows) > 0, "sensing stage should be hot");
        assert!(traced.telemetry.events_recorded() > 0, "trace rings should hold events");
        assert!(traced.peak_pending > 0, "the serving queue is never empty mid-run");
    }

    #[test]
    fn traced_run_is_jobs_and_engine_invariant() {
        let wheel = run_scale_traced(&small_cfg());
        let heap = run_scale_traced(&MetroConfig { engine: EngineKind::Heap, ..small_cfg() });
        let parallel = run_scale_traced(&MetroConfig { jobs: 3, ..small_cfg() });
        assert_eq!(wheel.telemetry, heap.telemetry);
        assert_eq!(wheel.telemetry, parallel.telemetry);
        assert_eq!(wheel.telemetry.to_jsonl(), parallel.telemetry.to_jsonl());
    }

    #[test]
    fn saturated_totals_warn_in_render() {
        let mut report = run_scale(&small_cfg());
        report.per_home[0].reminders = u64::MAX;
        report.per_home[1].reminders = u64::MAX;
        let (t, clamped) = report.totals_checked();
        assert_eq!(t.reminders, u64::MAX);
        assert!(clamped > 0);
        let text = report.render();
        assert!(text.contains("WARNING"), "saturation must be loud: {text}");
        assert!(text.contains("lower bounds"), "{text}");
    }

    #[test]
    fn checkpointing_does_not_perturb_the_run() {
        let plain = run_scale(&small_cfg());
        let stops = [SimTime::from_secs(200), SimTime::from_secs(400)];
        let (report, ckpts) = run_scale_checkpointed(&small_cfg(), &stops);
        assert_eq!(plain, report, "capture must be non-destructive");
        assert_eq!(ckpts.len(), 2);
        assert_eq!(ckpts[0].at, stops[0]);
        assert_eq!(ckpts[0].homes.len(), 4);
        assert!(ckpts[0].des_events < ckpts[1].des_events);
    }

    #[test]
    fn resume_matches_uninterrupted_run() {
        let cfg = small_cfg();
        let full = run_scale(&cfg);
        let (_, ckpts) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(300)]);
        let resumed = resume_scale(&cfg, &ckpts[0]).unwrap();
        assert_eq!(full, resumed, "snapshot-then-resume must be invisible");
    }

    #[test]
    fn snapshot_survives_the_codec_and_resumes() {
        let cfg = small_cfg();
        let (_, ckpts) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(300)]);
        let blob = crate::checkpoint::save_checkpoint(&ckpts[0], 2);
        let back = crate::checkpoint::load_checkpoint(&blob, 2).unwrap();
        assert_eq!(back, ckpts[0]);
        assert_eq!(resume_scale(&cfg, &back).unwrap(), run_scale(&cfg));
    }

    #[test]
    fn resume_rejects_a_different_config_but_not_resume_knobs() {
        let cfg = small_cfg();
        let (_, ckpts) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(300)]);
        let reseeded = MetroConfig { seed: 9, ..small_cfg() };
        assert!(matches!(
            resume_scale(&reseeded, &ckpts[0]),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        // Worker count is a resume-time free choice.
        let parallel = MetroConfig { jobs: 3, ..small_cfg() };
        assert_eq!(resume_scale(&parallel, &ckpts[0]).unwrap(), run_scale(&cfg));
    }

    #[test]
    fn traced_resume_merges_counters_across_the_boundary() {
        let cfg = small_cfg();
        let full = run_scale_traced(&cfg);
        let (_, ckpts) = run_scale_checkpointed_traced(&cfg, &[SimTime::from_secs(300)]);
        let resumed = resume_scale_traced(&cfg, &ckpts[0]).unwrap();
        assert_eq!(resumed.report, full.report);
        assert_eq!(
            resumed.telemetry, full.telemetry,
            "telemetry must cover the whole run, not just the resumed tail"
        );
    }

    #[test]
    fn resume_can_keep_checkpointing() {
        let cfg = small_cfg();
        let (_, first) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(200)]);
        let (report, second) =
            resume_scale_checkpointed(&cfg, &first[0], &[SimTime::from_secs(400)]).unwrap();
        assert_eq!(report, run_scale(&cfg));
        // A re-checkpointed snapshot is as good as one from the original
        // run: resuming it still lands on the uninterrupted result.
        assert_eq!(resume_scale(&cfg, &second[0]).unwrap(), run_scale(&cfg));
        let (_, direct) = run_scale_checkpointed(&cfg, &[SimTime::from_secs(400)]);
        assert_eq!(second[0], direct[0], "chained and direct snapshots agree");
    }

    #[test]
    fn snapshot_at_the_horizon_resumes_into_a_longer_run() {
        // The degenerate-but-natural CLI flow: serve to T, snapshot the
        // *end* state, later resume to 2T. The snapshot must carry each
        // home's natural next wake even though the capturing run's
        // horizon ended — a pending set truncated at the old horizon
        // would resume into a dead fleet.
        let short = MetroConfig { horizon: SimDuration::from_secs(300), ..small_cfg() };
        let long = MetroConfig { horizon: SimDuration::from_secs(600), ..small_cfg() };
        let (_, ckpts) = run_scale_checkpointed(&short, &[SimTime::from_secs(300)]);
        assert!(
            ckpts[0].homes.iter().all(|h| !h.pending.is_empty()),
            "an end-of-run snapshot must still hold every home's next wake"
        );
        let resumed = resume_scale(&long, &ckpts[0]).unwrap();
        assert_eq!(resumed, run_scale(&long));
        // Same through the heap engine.
        let short_heap = MetroConfig { engine: EngineKind::Heap, ..short };
        let long_heap = MetroConfig { engine: EngineKind::Heap, ..long };
        let (_, heap_ckpts) = run_scale_checkpointed(&short_heap, &[SimTime::from_secs(300)]);
        assert_eq!(
            resume_scale(&long_heap, &heap_ckpts[0]).unwrap(),
            run_scale(&long_heap)
        );
    }

    #[test]
    fn seeds_differentiate_homes() {
        let report = run_scale(&small_cfg());
        // Independent RNG streams: not every home behaves identically.
        let first = report.per_home[0];
        assert!(
            report.per_home.iter().any(|h| h != &first),
            "homes should diverge: {:?}",
            report.per_home
        );
    }
}
