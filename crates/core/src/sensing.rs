//! The sensing subsystem (paper §2.1).
//!
//! Server-side: consumes the `ToolUse` reports the base station accepted
//! and turns them into a *StepID sequence*. Two responsibilities beyond
//! the raw mapping:
//!
//! - **Step-boundary detection** — consecutive windows of the same tool
//!   belong to one step; a report from a different tool opens a new step.
//! - **Idle detection** — "a StepID 0 to indicate nothing is done for a
//!   long time". How long is derived per-tool from the step-duration
//!   statistics, as the paper's footnote prescribes ("This time should be
//!   determined from the statistical data of how long a user will use
//!   this tool").

use coreda_adl::activity::AdlSpec;
use coreda_adl::step::StepId;
use coreda_des::time::{SimDuration, SimTime};
use coreda_sensornet::node::NodeId;
use serde::{Deserialize, Serialize};

/// A step-level event produced by the sensing subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepEvent {
    /// When the event was recognised.
    pub at: SimTime,
    /// The step entered ([`StepId::IDLE`] for an idle timeout).
    pub step: StepId,
}

/// Converts tool-use reports into a step sequence with idle detection.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_core::sensing::SensingSubsystem;
/// use coreda_des::time::SimTime;
/// use coreda_sensornet::node::NodeId;
///
/// let tea = catalog::tea_making();
/// let mut sensing = SensingSubsystem::new(&tea);
/// let ev = sensing
///     .on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(1))
///     .expect("first report opens a step");
/// assert_eq!(ev.step.raw(), catalog::TEA_BOX);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingSubsystem {
    /// `(step, idle timeout)` per known tool.
    timeouts: Vec<(StepId, SimDuration)>,
    current: Option<StepId>,
    last_report_at: Option<SimTime>,
    history: Vec<StepEvent>,
}

impl SensingSubsystem {
    /// Multiplier over a step's mean duration used for its idle timeout
    /// (mean + 3σ would also do; the paper's example is a flat 30 s).
    const TIMEOUT_SD_FACTOR: f64 = 3.0;
    /// Idle timeout floor, so very short steps don't cause alarm storms.
    const MIN_TIMEOUT: SimDuration = SimDuration::from_secs(8);
    /// Idle timeout used before the first step (no tool statistics yet).
    pub const DEFAULT_TIMEOUT: SimDuration = SimDuration::from_secs(30);

    /// Creates the subsystem for one ADL, deriving per-tool idle timeouts
    /// from the spec's duration statistics.
    #[must_use]
    pub fn new(spec: &AdlSpec) -> Self {
        let timeouts = spec
            .steps()
            .iter()
            .map(|s| {
                let secs = s.mean_duration_s() + Self::TIMEOUT_SD_FACTOR * s.sd_duration_s();
                let t = SimDuration::from_secs_f64(secs).max(Self::MIN_TIMEOUT);
                (s.id(), t)
            })
            .collect();
        SensingSubsystem { timeouts, current: None, last_report_at: None, history: Vec::new() }
    }

    /// The idle timeout that applies while the user is in `step`.
    #[must_use]
    pub fn idle_timeout(&self, step: StepId) -> SimDuration {
        self.timeouts
            .iter()
            .find(|(s, _)| *s == step)
            .map_or(Self::DEFAULT_TIMEOUT, |&(_, t)| t)
    }

    /// The step the user is currently believed to be in.
    #[must_use]
    pub const fn current_step(&self) -> Option<StepId> {
        self.current
    }

    /// The recognised step history, oldest first.
    #[must_use]
    pub fn history(&self) -> &[StepEvent] {
        &self.history
    }

    /// The bare StepID sequence (what the planning subsystem consumes).
    #[must_use]
    pub fn step_sequence(&self) -> Vec<StepId> {
        self.history.iter().map(|e| e.step).collect()
    }

    /// Feeds one accepted tool-use report. Returns a [`StepEvent`] if the
    /// report opens a new step (i.e. it is not a repeat window of the
    /// current one).
    pub fn on_report(&mut self, node: NodeId, at: SimTime) -> Option<StepEvent> {
        let step = StepId::from_raw(node.raw());
        self.last_report_at = Some(at);
        if self.current == Some(step) {
            return None;
        }
        self.current = Some(step);
        let ev = StepEvent { at, step };
        self.history.push(ev);
        Some(ev)
    }

    /// Checks whether the user has been inactive past the current step's
    /// idle timeout. If so, emits an idle event (once — repeated checks
    /// while still idle return `None` until activity resumes).
    pub fn check_idle(&mut self, now: SimTime) -> Option<StepEvent> {
        let last = self.last_report_at?;
        let timeout = match self.current {
            Some(step) if !step.is_idle() => self.idle_timeout(step),
            _ => return None, // already idle, or nothing seen yet
        };
        if now.saturating_duration_since(last) >= timeout {
            self.current = Some(StepId::IDLE);
            let ev = StepEvent { at: now, step: StepId::IDLE };
            self.history.push(ev);
            Some(ev)
        } else {
            None
        }
    }

    /// Time since the last report, if any report has been seen.
    #[must_use]
    pub fn inactivity(&self, now: SimTime) -> Option<SimDuration> {
        self.last_report_at.map(|t| now.saturating_duration_since(t))
    }

    /// Forgets everything (start of a new trial).
    pub fn reset(&mut self) {
        self.current = None;
        self.last_report_at = None;
        self.history.clear();
    }

    /// Captures the subsystem's mutable state (checkpointing): the
    /// believed current step, the last-report instant, and the recognised
    /// history. Timeouts are derived from the spec and need no capture.
    #[must_use]
    pub fn export_state(&self) -> (Option<StepId>, Option<SimTime>, Vec<StepEvent>) {
        (self.current, self.last_report_at, self.history.clone())
    }

    /// Restores state captured by [`SensingSubsystem::export_state`] onto
    /// a subsystem freshly built from the same spec.
    pub fn restore_state(
        &mut self,
        current: Option<StepId>,
        last_report_at: Option<SimTime>,
        history: Vec<StepEvent>,
    ) {
        self.current = current;
        self.last_report_at = last_report_at;
        self.history = history;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_adl::activity::catalog;

    fn sensing() -> SensingSubsystem {
        SensingSubsystem::new(&catalog::tea_making())
    }

    #[test]
    fn first_report_opens_step() {
        let mut s = sensing();
        let ev = s.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(1)).unwrap();
        assert_eq!(ev.step, StepId::from_raw(catalog::TEA_BOX));
        assert_eq!(s.current_step(), Some(ev.step));
    }

    #[test]
    fn repeat_windows_do_not_duplicate_steps() {
        let mut s = sensing();
        s.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(1));
        for t in 2..6 {
            assert!(s.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(t)).is_none());
        }
        assert_eq!(s.step_sequence().len(), 1);
    }

    #[test]
    fn tool_change_opens_new_step() {
        let mut s = sensing();
        s.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(1));
        let ev = s.on_report(NodeId::new(catalog::POT), SimTime::from_secs(8)).unwrap();
        assert_eq!(ev.step, StepId::from_raw(catalog::POT));
        assert_eq!(
            s.step_sequence(),
            vec![StepId::from_raw(catalog::TEA_BOX), StepId::from_raw(catalog::POT)]
        );
    }

    #[test]
    fn returning_to_a_tool_reopens_it() {
        let mut s = sensing();
        s.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(1));
        s.on_report(NodeId::new(catalog::POT), SimTime::from_secs(5));
        assert!(s.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(9)).is_some());
        assert_eq!(s.step_sequence().len(), 3);
    }

    #[test]
    fn idle_fires_after_timeout() {
        let mut s = sensing();
        let kettle = NodeId::new(catalog::KETTLE);
        s.on_report(kettle, SimTime::from_secs(10));
        let timeout = s.idle_timeout(StepId::from_raw(catalog::KETTLE));
        // Just before the timeout: nothing.
        assert!(s.check_idle(SimTime::from_secs(10) + timeout - SimDuration::from_millis(1)).is_none());
        // At the timeout: idle event.
        let ev = s.check_idle(SimTime::from_secs(10) + timeout).unwrap();
        assert!(ev.step.is_idle());
        assert_eq!(s.current_step(), Some(StepId::IDLE));
    }

    #[test]
    fn idle_fires_only_once_per_gap() {
        let mut s = sensing();
        s.on_report(NodeId::new(catalog::KETTLE), SimTime::ZERO);
        let t = SimTime::from_secs(100);
        assert!(s.check_idle(t).is_some());
        assert!(s.check_idle(t + SimDuration::from_secs(10)).is_none());
        // Activity resumes, then another long gap re-arms idle detection.
        s.on_report(NodeId::new(catalog::TEA_CUP), SimTime::from_secs(120));
        assert!(s.check_idle(SimTime::from_secs(300)).is_some());
    }

    #[test]
    fn no_idle_before_any_activity() {
        let mut s = sensing();
        assert!(s.check_idle(SimTime::from_secs(1_000)).is_none());
    }

    #[test]
    fn timeouts_derive_from_duration_statistics() {
        let s = sensing();
        let tea = catalog::tea_making();
        for step in tea.steps() {
            let t = s.idle_timeout(step.id());
            let expected_secs =
                (step.mean_duration_s() + 3.0 * step.sd_duration_s()).max(8.0);
            assert!(
                (t.as_secs_f64() - expected_secs).abs() < 0.01,
                "timeout for {} should be {expected_secs}s, got {t}",
                step.name()
            );
        }
        // Unknown steps fall back to the paper's 30 s example.
        assert_eq!(s.idle_timeout(StepId::from_raw(99)), SensingSubsystem::DEFAULT_TIMEOUT);
    }

    #[test]
    fn inactivity_reports_gap() {
        let mut s = sensing();
        assert_eq!(s.inactivity(SimTime::from_secs(5)), None);
        s.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(5));
        assert_eq!(s.inactivity(SimTime::from_secs(9)), Some(SimDuration::from_secs(4)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = sensing();
        s.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(1));
        s.reset();
        assert_eq!(s.current_step(), None);
        assert!(s.history().is_empty());
        assert!(s.check_idle(SimTime::from_secs(500)).is_none());
    }
}
