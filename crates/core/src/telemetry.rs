//! Flight-recorder observability: counters, latency histograms, and a
//! bounded per-home trace ring covering the whole reminding pipeline.
//!
//! The paper's headline claims — prompt precision and reminder
//! *timeliness* (§3) — are latency/precision quantities, but until this
//! module the system was a black box at runtime: a fuzzer violation or
//! a stalled 10k-home `scale` run left no record of what the pipeline
//! was doing. The flight recorder closes that gap:
//!
//! * a **metrics registry** — fixed-size counter array ([`Ctr`]),
//!   per-stage latency [`Histogram`]s ([`Stage`]) with p50/p95/p99 —
//!   covering sample window → tool-in-use detection → radio delivery →
//!   StepID extraction → planner decision → prompt render → patient
//!   response;
//! * a **bounded trace ring** ([`TraceRing`]) of structured
//!   [`TraceRecord`]s (interned [`NameId`] labels, [`SimTime`] stamps,
//!   drop-oldest) whose last K events reconstruct the story behind any
//!   prompt;
//! * a deterministic **merge** ([`Telemetry`]): per-home recorders are
//!   combined in home-id order, so `--jobs 1` and `--jobs N` produce
//!   bit-identical telemetry, and a JSONL exporter / text summary for
//!   the CLI `trace` command and fuzzer post-mortems.
//!
//! # Hot-path discipline
//!
//! Recording allocates **nothing** after construction: counters are a
//! fixed array, histograms pre-allocate their bins, and the ring is a
//! pre-filled circular buffer. Recording draws no randomness and never
//! feeds back into simulation state, so a recorded run is bit-identical
//! to an unrecorded one — recorders can be bolted onto any run, or
//! left off, without re-deriving seeds.

use coreda_adl::intern::NameId;
use coreda_adl::{StepId, ToolId};
use coreda_des::stats::Histogram;
use coreda_des::time::SimTime;

/// Every pipeline counter the recorder tracks.
///
/// The discriminant doubles as the index into [`HomeRecorder`]'s
/// counter array; [`Ctr::ALL`] iterates in export order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Ctr {
    /// Sensor sample windows closed (one per node per tick).
    SampleWindows,
    /// Sample windows whose detector said "tool in use".
    ToolInUseWindows,
    /// Uplink report frames handed to the radio.
    RadioFramesTx,
    /// Individual transmission attempts (ARQ retries included).
    RadioAttempts,
    /// Uplink frames that reached the base station.
    RadioDelivered,
    /// Uplink frames dropped after exhausting retries.
    RadioLost,
    /// Duplicate deliveries the ARQ produced (lost ACK → resend).
    RadioDuplicates,
    /// Downlink LED command frames sent.
    LedFramesTx,
    /// Downlink LED command frames delivered.
    LedDelivered,
    /// Downlink LED command frames lost.
    LedLost,
    /// Reports the base station accepted (after dedup).
    ReportsAccepted,
    /// StepIDs the sensing subsystem extracted from reports.
    StepsExtracted,
    /// Idle-timeout events the sensing subsystem synthesised.
    IdleEvents,
    /// Next-step queries answered by the planner.
    PlannerDecisions,
    /// Prompts rendered into reminder methods.
    PromptsRendered,
    /// Reminders issued (first prompt of an intervention).
    RemindersIssued,
    /// Escalations of an unanswered reminder to a louder prompt.
    RepromptEscalations,
    /// Praise events (patient complied with the prompted step).
    Praises,
    /// Live episodes started.
    EpisodesStarted,
    /// Live episodes that reached the routine's end.
    EpisodesCompleted,
    /// Activity sessions opened by the session tracker.
    SessionsStarted,
    /// Activity sessions closed as completed.
    SessionsCompleted,
    /// Activity sessions closed as abandoned.
    SessionsAbandoned,
    /// Cross-activity tool-use flags raised.
    CrossActivityFlags,
    /// Report totals that hit saturating-add clamping (see
    /// [`crate::metro::ScaleReport::totals`]); non-zero means some
    /// aggregate number is a lower bound, not an exact count.
    TotalsSaturated,
    /// Caregiver escalations raised by the policy engine.
    EscalationsRaised,
    /// Escalations the simulated caregiver acknowledged.
    EscalationsAcked,
    /// Escalations the caregiver resolved.
    EscalationsResolved,
    /// Compliance-trend windows the care monitor completed.
    CareTrendWindows,
}

impl Ctr {
    /// Number of counters (size of the registry array).
    pub const COUNT: usize = 29;

    /// All counters in export order.
    pub const ALL: [Ctr; Ctr::COUNT] = [
        Ctr::SampleWindows,
        Ctr::ToolInUseWindows,
        Ctr::RadioFramesTx,
        Ctr::RadioAttempts,
        Ctr::RadioDelivered,
        Ctr::RadioLost,
        Ctr::RadioDuplicates,
        Ctr::LedFramesTx,
        Ctr::LedDelivered,
        Ctr::LedLost,
        Ctr::ReportsAccepted,
        Ctr::StepsExtracted,
        Ctr::IdleEvents,
        Ctr::PlannerDecisions,
        Ctr::PromptsRendered,
        Ctr::RemindersIssued,
        Ctr::RepromptEscalations,
        Ctr::Praises,
        Ctr::EpisodesStarted,
        Ctr::EpisodesCompleted,
        Ctr::SessionsStarted,
        Ctr::SessionsCompleted,
        Ctr::SessionsAbandoned,
        Ctr::CrossActivityFlags,
        Ctr::TotalsSaturated,
        Ctr::EscalationsRaised,
        Ctr::EscalationsAcked,
        Ctr::EscalationsResolved,
        Ctr::CareTrendWindows,
    ];

    /// Stable snake_case name used in JSONL export.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Ctr::SampleWindows => "sample_windows",
            Ctr::ToolInUseWindows => "tool_in_use_windows",
            Ctr::RadioFramesTx => "radio_frames_tx",
            Ctr::RadioAttempts => "radio_attempts",
            Ctr::RadioDelivered => "radio_delivered",
            Ctr::RadioLost => "radio_lost",
            Ctr::RadioDuplicates => "radio_duplicates",
            Ctr::LedFramesTx => "led_frames_tx",
            Ctr::LedDelivered => "led_delivered",
            Ctr::LedLost => "led_lost",
            Ctr::ReportsAccepted => "reports_accepted",
            Ctr::StepsExtracted => "steps_extracted",
            Ctr::IdleEvents => "idle_events",
            Ctr::PlannerDecisions => "planner_decisions",
            Ctr::PromptsRendered => "prompts_rendered",
            Ctr::RemindersIssued => "reminders_issued",
            Ctr::RepromptEscalations => "reprompt_escalations",
            Ctr::Praises => "praises",
            Ctr::EpisodesStarted => "episodes_started",
            Ctr::EpisodesCompleted => "episodes_completed",
            Ctr::SessionsStarted => "sessions_started",
            Ctr::SessionsCompleted => "sessions_completed",
            Ctr::SessionsAbandoned => "sessions_abandoned",
            Ctr::CrossActivityFlags => "cross_activity_flags",
            Ctr::TotalsSaturated => "totals_saturated",
            Ctr::EscalationsRaised => "escalations_raised",
            Ctr::EscalationsAcked => "escalations_acked",
            Ctr::EscalationsResolved => "escalations_resolved",
            Ctr::CareTrendWindows => "care_trend_windows",
        }
    }
}

/// Pipeline stages with a dedicated latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Patient froze → sensing raised the idle-timeout event.
    IdleDetect,
    /// Patient picked the wrong tool → red LED blink command sent.
    WrongToolRedBlink,
    /// Prompt delivered → patient performed the prompted step.
    PromptToCompliance,
}

impl Stage {
    /// Number of stages (size of the histogram array).
    pub const COUNT: usize = 3;

    /// All stages in export order.
    pub const ALL: [Stage; Stage::COUNT] =
        [Stage::IdleDetect, Stage::WrongToolRedBlink, Stage::PromptToCompliance];

    /// Stable snake_case name used in JSONL export.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Stage::IdleDetect => "idle_detect_ms",
            Stage::WrongToolRedBlink => "wrong_tool_red_blink_ms",
            Stage::PromptToCompliance => "prompt_to_compliance_ms",
        }
    }

    /// Human label for the text summary.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Stage::IdleDetect => "idle-detect delay",
            Stage::WrongToolRedBlink => "wrong-tool->red-blink",
            Stage::PromptToCompliance => "prompt->compliance",
        }
    }

    /// Histogram range and bin count, in milliseconds.
    ///
    /// Idle detection and compliance run on human time scales (the
    /// idle timeout alone is minutes), wrong-tool reaction on sampling
    /// time scales — so the red-blink stage gets 100 ms bins and the
    /// other two 1 s bins.
    #[must_use]
    pub const fn bins(self) -> (f64, f64, usize) {
        match self {
            Stage::IdleDetect | Stage::PromptToCompliance => (0.0, 300_000.0, 300),
            Stage::WrongToolRedBlink => (0.0, 30_000.0, 300),
        }
    }
}

/// One structured trace event. `Copy` and allocation-free by design:
/// labels are interned ids ([`NameId`], [`StepId`], [`ToolId`]), never
/// strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A live episode began (`episode` = per-home ordinal).
    EpisodeStarted {
        /// Per-home episode ordinal.
        episode: u32,
    },
    /// A live episode ended.
    EpisodeEnded {
        /// Whether the routine ran to completion.
        completed: bool,
    },
    /// A node's sample window detected its tool in use.
    ToolInUse {
        /// Reporting node id (== tool id raw).
        node: u16,
    },
    /// An uplink report survived the radio.
    RadioDelivered {
        /// Reporting node id.
        node: u16,
        /// Transmission attempts the ARQ spent.
        attempts: u8,
    },
    /// An uplink report died on the radio.
    RadioLost {
        /// Reporting node id.
        node: u16,
        /// Transmission attempts the ARQ spent.
        attempts: u8,
    },
    /// Sensing extracted a StepID from an accepted report.
    StepExtracted {
        /// The extracted step.
        step: StepId,
    },
    /// Sensing synthesised an idle-timeout event.
    IdleDetected {
        /// How long the patient had been idle, in ms.
        idle_ms: u32,
    },
    /// A reminder was issued.
    ReminderIssued {
        /// Tool the prompt points at.
        tool: ToolId,
        /// Whether the prompt was specific (vs minimal).
        specific: bool,
        /// Whether a wrong tool (vs idling) triggered it.
        wrong_tool: bool,
    },
    /// A red/green LED command went over the downlink.
    LedCommand {
        /// Target tool's node.
        tool: ToolId,
        /// Red (wrong tool) vs green (guidance) blink.
        red: bool,
        /// Whether the downlink delivered it.
        delivered: bool,
    },
    /// The patient complied with the prompted step.
    Praised {
        /// Prompt-to-compliance latency in ms.
        latency_ms: u32,
    },
    /// An unanswered reminder escalated to a louder prompt.
    Reprompt {
        /// Escalations so far within this intervention.
        escalations: u8,
    },
    /// The session tracker opened an activity session.
    SessionStarted {
        /// Interned activity name.
        name: NameId,
    },
    /// The session tracker closed an activity session.
    SessionEnded {
        /// Interned activity name.
        name: NameId,
        /// Completed (vs abandoned).
        completed: bool,
    },
    /// Cross-activity tool use flagged.
    CrossActivity {
        /// Interned name of the *other* activity.
        name: NameId,
    },
}

/// A timestamped trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Default trace-ring capacity: enough to hold several episodes'
/// worth of narrative around a violation.
pub const DEFAULT_RING_CAP: usize = 256;

/// Bounded drop-oldest ring of [`TraceRecord`]s.
///
/// Pushing into a full ring overwrites the oldest record and bumps
/// [`dropped`](Self::dropped); nothing allocates after construction.
///
/// Equality is *logical*: two rings compare equal when they hold the
/// same records in the same oldest→newest order with the same capacity
/// and drop count, regardless of where the write head physically sits.
/// A ring restored from a checkpoint stores its records linearly from
/// slot 0, so physical layout is not resume-invariant but the story the
/// ring tells is.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceRecord>,
    cap: usize,
    head: usize,
    dropped: u64,
}

impl PartialEq for TraceRing {
    fn eq(&self, other: &Self) -> bool {
        self.cap == other.cap
            && self.dropped == other.dropped
            && self.buf.len() == other.buf.len()
            && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for TraceRing {}

impl TraceRing {
    /// An empty ring holding at most `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace ring needs capacity");
        TraceRing { buf: Vec::with_capacity(cap), cap, head: 0, dropped: 0 }
    }

    /// Appends a record, overwriting the oldest when full.
    pub fn push(&mut self, at: SimTime, kind: TraceKind) {
        let rec = TraceRecord { at, kind };
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted to make room.
    #[must_use]
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (wrapped, linear) = self.buf.split_at(self.head);
        linear.iter().chain(wrapped.iter())
    }

    /// The ring's capacity.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.cap
    }

    /// Snapshots the held records, oldest → newest (checkpointing).
    #[must_use]
    pub fn export_records(&self) -> Vec<TraceRecord> {
        self.iter().copied().collect()
    }

    /// Restores records captured by [`TraceRing::export_records`] plus
    /// the drop count. The records are laid out linearly from slot 0
    /// with the head on the oldest record, which reproduces the exact
    /// drop-oldest behaviour of the original ring on subsequent pushes.
    ///
    /// # Panics
    ///
    /// Panics if more records are supplied than the ring can hold.
    pub fn restore_state(&mut self, records: &[TraceRecord], dropped: u64) {
        assert!(records.len() <= self.cap, "ring restore exceeds capacity");
        self.buf.clear();
        self.buf.extend_from_slice(records);
        self.head = 0;
        self.dropped = dropped;
    }
}

/// One home's flight recorder: the counter registry, the per-stage
/// latency histograms, and the trace ring.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeRecorder {
    counters: [u64; Ctr::COUNT],
    stages: Vec<Histogram>,
    ring: TraceRing,
}

impl Default for HomeRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl HomeRecorder {
    /// A fresh recorder with the default ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAP)
    }

    /// A fresh recorder holding at most `cap` trace records.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn with_ring_capacity(cap: usize) -> Self {
        let stages = Stage::ALL
            .iter()
            .map(|s| {
                let (lo, hi, bins) = s.bins();
                Histogram::new(lo, hi, bins)
            })
            .collect();
        HomeRecorder { counters: [0; Ctr::COUNT], stages, ring: TraceRing::new(cap) }
    }

    /// Bumps a counter by one.
    #[inline]
    pub fn inc(&mut self, c: Ctr) {
        self.counters[c as usize] = self.counters[c as usize].saturating_add(1);
    }

    /// Bumps a counter by `n`. Saturates at `u64::MAX` — a pinned
    /// counter is a visible lower bound, a wrapped one is a silent lie.
    #[inline]
    pub fn add(&mut self, c: Ctr, n: u64) {
        self.counters[c as usize] = self.counters[c as usize].saturating_add(n);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Records a stage latency in milliseconds.
    #[inline]
    pub fn latency_ms(&mut self, stage: Stage, ms: f64) {
        self.stages[stage as usize].record(ms);
    }

    /// The latency histogram of one stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Appends a trace event.
    #[inline]
    pub fn event(&mut self, at: SimTime, kind: TraceKind) {
        self.ring.push(at, kind);
    }

    /// The trace ring.
    #[must_use]
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Folds another recorder's counters and histograms into this one.
    ///
    /// Trace rings are *not* merged: a ring is a per-home narrative and
    /// interleaving two of them would produce a story nobody lived.
    /// The absorbed recorder's ring (and drops) are simply discarded;
    /// keep per-home recorders around when the rings matter.
    ///
    /// Counter sums saturate rather than wrap: absorbing a whole metro
    /// fleet (100k–1M homes) into one recorder multiplies every counter
    /// by the fleet size, and a wrapped total would lie silently. Each
    /// clamp bumps [`Ctr::TotalsSaturated`], the same flag the report
    /// totals use, so a saturated aggregate is visible in the summary.
    pub fn absorb(&mut self, other: &HomeRecorder) {
        let mut clamped = 0u64;
        for i in 0..Ctr::COUNT {
            let (sum, overflowed) = self.counters[i].overflowing_add(other.counters[i]);
            self.counters[i] = if overflowed {
                clamped += 1;
                u64::MAX
            } else {
                sum
            };
        }
        if clamped > 0 {
            self.add(Ctr::TotalsSaturated, clamped);
        }
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.merge(theirs);
        }
    }

    /// Captures the recorder's complete state (checkpointing): counters,
    /// per-stage histogram counts, and the trace ring's records and drop
    /// count. Histogram *shapes* are fixed by [`Stage::bins`] and are not
    /// captured.
    #[must_use]
    pub fn export_state(&self) -> RecorderState {
        RecorderState {
            counters: self.counters.to_vec(),
            stages: self
                .stages
                .iter()
                .map(|h| {
                    let bins = (0..h.bins()).map(|i| h.bin_count(i)).collect();
                    (bins, h.underflow(), h.overflow())
                })
                .collect(),
            ring_cap: self.ring.capacity(),
            ring: self.ring.export_records(),
            ring_dropped: self.ring.dropped(),
        }
    }

    /// Restores state captured by [`HomeRecorder::export_state`],
    /// replacing this recorder's counters, histograms and ring entirely
    /// (including the ring capacity).
    ///
    /// # Panics
    ///
    /// Panics if the state holds *more* counters than this build's
    /// registry, if the stage count does not match, or if a stage's bin
    /// count differs from [`Stage::bins`] — a checkpoint from an
    /// incompatible layout. A *shorter* counter vector is accepted and
    /// zero-filled: the registry only ever grows by appending, so a
    /// snapshot from an older build restores with its missing counters
    /// at zero (exactly what the older build would have recorded).
    pub fn restore_state(&mut self, state: &RecorderState) {
        assert!(state.counters.len() <= Ctr::COUNT, "counter registry size mismatch");
        assert_eq!(state.stages.len(), Stage::COUNT, "stage registry size mismatch");
        self.counters = [0; Ctr::COUNT];
        self.counters[..state.counters.len()].copy_from_slice(&state.counters);
        self.stages = Stage::ALL
            .iter()
            .zip(&state.stages)
            .map(|(s, (bins, under, over))| {
                let (lo, hi, n) = s.bins();
                assert_eq!(bins.len(), n, "stage histogram bin count mismatch");
                Histogram::from_parts(lo, hi, bins.clone(), *under, *over)
            })
            .collect();
        self.ring = TraceRing::new(state.ring_cap);
        self.ring.restore_state(&state.ring, state.ring_dropped);
    }
}

/// A [`HomeRecorder`]'s captured state — the checkpoint-codec view of
/// the flight recorder. Counters merge *across* a snapshot boundary on
/// resume (they are restored, not reset), which is what keeps a resumed
/// run's [`Telemetry::render_summary`] identical to an uninterrupted
/// one's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderState {
    /// Counter values in [`Ctr::ALL`] order.
    pub counters: Vec<u64>,
    /// Per-stage `(bin counts, underflow, overflow)` in [`Stage::ALL`]
    /// order.
    pub stages: Vec<(Vec<u64>, u64, u64)>,
    /// Trace-ring capacity.
    pub ring_cap: usize,
    /// Held trace records, oldest → newest.
    pub ring: Vec<TraceRecord>,
    /// Trace records evicted before the snapshot.
    pub ring_dropped: u64,
}

/// A recording hook that may be absent.
///
/// The `None` state makes every call a no-op, so the hot path carries
/// one branch per record instead of a generic parameter or a dyn call
/// — same pattern as `MaybeLog` in [`crate::system`].
#[derive(Debug)]
pub struct MaybeRec<'a>(pub Option<&'a mut HomeRecorder>);

impl MaybeRec<'_> {
    /// Reborrows, so helpers can take `MaybeRec` by value repeatedly.
    #[inline]
    pub fn as_mut(&mut self) -> MaybeRec<'_> {
        MaybeRec(self.0.as_deref_mut())
    }

    /// Bumps a counter by one.
    #[inline]
    pub fn inc(&mut self, c: Ctr) {
        if let Some(r) = self.0.as_mut() {
            r.inc(c);
        }
    }

    /// Bumps a counter by `n`.
    #[inline]
    pub fn add(&mut self, c: Ctr, n: u64) {
        if let Some(r) = self.0.as_mut() {
            r.add(c, n);
        }
    }

    /// Records a stage latency in milliseconds.
    #[inline]
    pub fn latency_ms(&mut self, stage: Stage, ms: f64) {
        if let Some(r) = self.0.as_mut() {
            r.latency_ms(stage, ms);
        }
    }

    /// Appends a trace event.
    #[inline]
    pub fn event(&mut self, at: SimTime, kind: TraceKind) {
        if let Some(r) = self.0.as_mut() {
            r.event(at, kind);
        }
    }
}

/// A whole run's telemetry: one recorder per home, in home-id order.
///
/// Built by `metro::run_scale_traced` by concatenating chunk outputs
/// in input order, which is what makes the merge deterministic: the
/// same homes always land at the same indices regardless of worker
/// count or queue engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Telemetry {
    /// Per-home recorders, indexed by home id.
    pub homes: Vec<HomeRecorder>,
    /// Fleet-level recorder for quantities that belong to the merged
    /// run rather than any one home (e.g. [`Ctr::TotalsSaturated`]).
    /// Derived deterministically from per-home data, so it is as
    /// jobs/engine-invariant as the homes themselves.
    pub fleet: HomeRecorder,
}

impl Telemetry {
    /// Aggregates the fleet recorder and every home into one recorder
    /// (rings discarded; see [`HomeRecorder::absorb`]).
    #[must_use]
    pub fn aggregate(&self) -> HomeRecorder {
        let mut total = HomeRecorder::new();
        total.absorb(&self.fleet);
        for h in &self.homes {
            total.absorb(h);
        }
        total
    }

    /// Total trace records currently held across homes.
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.homes.iter().map(|h| h.ring().len() as u64).sum()
    }

    /// Total trace records evicted across homes.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.homes.iter().map(|h| h.ring().dropped()).sum()
    }

    /// Deterministic human-readable summary (golden-pinned).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let t = self.aggregate();
        let c = |ctr: Ctr| t.counter(ctr);
        let mut out = String::new();
        out.push_str(&format!("telemetry: {} home(s)\n", self.homes.len()));
        out.push_str(&format!(
            "  sensing: {} sample windows, {} tool-in-use\n",
            c(Ctr::SampleWindows),
            c(Ctr::ToolInUseWindows),
        ));
        out.push_str(&format!(
            "  radio: {} frames, {} attempts, {} delivered, {} lost, {} duplicate(s)\n",
            c(Ctr::RadioFramesTx),
            c(Ctr::RadioAttempts),
            c(Ctr::RadioDelivered),
            c(Ctr::RadioLost),
            c(Ctr::RadioDuplicates),
        ));
        out.push_str(&format!(
            "  led downlink: {} sent, {} delivered, {} lost\n",
            c(Ctr::LedFramesTx),
            c(Ctr::LedDelivered),
            c(Ctr::LedLost),
        ));
        out.push_str(&format!(
            "  extraction: {} reports accepted, {} steps, {} idle events\n",
            c(Ctr::ReportsAccepted),
            c(Ctr::StepsExtracted),
            c(Ctr::IdleEvents),
        ));
        out.push_str(&format!(
            "  planning: {} decisions, {} reminders ({} escalations), {} praises\n",
            c(Ctr::PlannerDecisions),
            c(Ctr::RemindersIssued),
            c(Ctr::RepromptEscalations),
            c(Ctr::Praises),
        ));
        out.push_str(&format!(
            "  episodes: {} started, {} completed\n",
            c(Ctr::EpisodesStarted),
            c(Ctr::EpisodesCompleted),
        ));
        out.push_str(&format!(
            "  sessions: {} started, {} completed, {} abandoned, {} cross-activity\n",
            c(Ctr::SessionsStarted),
            c(Ctr::SessionsCompleted),
            c(Ctr::SessionsAbandoned),
            c(Ctr::CrossActivityFlags),
        ));
        // Care counters only render when a care policy ran, so the
        // golden-pinned summary of careless runs is byte-unchanged.
        let care_total = c(Ctr::EscalationsRaised)
            + c(Ctr::EscalationsAcked)
            + c(Ctr::EscalationsResolved)
            + c(Ctr::CareTrendWindows);
        if care_total > 0 {
            out.push_str(&format!(
                "  care: {} raised, {} acked, {} resolved, {} trend window(s)\n",
                c(Ctr::EscalationsRaised),
                c(Ctr::EscalationsAcked),
                c(Ctr::EscalationsResolved),
                c(Ctr::CareTrendWindows),
            ));
        }
        for s in Stage::ALL {
            let h = t.stage(s);
            out.push_str(&format!("  {}: {}\n", s.label(), render_quantiles(h)));
        }
        out.push_str(&format!(
            "  trace: {} event(s) held, {} dropped\n",
            self.events_recorded(),
            self.events_dropped(),
        ));
        if c(Ctr::TotalsSaturated) > 0 {
            out.push_str(&format!(
                "  WARNING: {} total(s) saturated; aggregate counts are lower bounds\n",
                c(Ctr::TotalsSaturated),
            ));
        }
        out
    }

    /// Serialises the whole run as JSON Lines: one `summary` line, then
    /// one `home` line per home (counters, stage quantiles, and the
    /// trace ring oldest → newest).
    ///
    /// Hand-rolled std-only writer in the spirit of the testkit's
    /// `FaultPlan` codec; every float goes through [`json_f64`], so a
    /// non-finite value can never leak into the output.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let t = self.aggregate();
        out.push_str("{\"kind\":\"summary\",\"homes\":");
        out.push_str(&self.homes.len().to_string());
        push_counters(&mut out, &t);
        push_stages(&mut out, &t);
        out.push_str(",\"events_held\":");
        out.push_str(&self.events_recorded().to_string());
        out.push_str(",\"events_dropped\":");
        out.push_str(&self.events_dropped().to_string());
        out.push_str("}\n");
        for (i, h) in self.homes.iter().enumerate() {
            out.push_str("{\"kind\":\"home\",\"home\":");
            out.push_str(&i.to_string());
            push_counters(&mut out, h);
            push_stages(&mut out, h);
            out.push_str(",\"events\":[");
            for (j, rec) in h.ring().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_trace_record(&mut out, rec);
            }
            out.push_str("],\"events_dropped\":");
            out.push_str(&h.ring().dropped().to_string());
            out.push_str("}\n");
        }
        out
    }
}

/// Formats an f64 for JSON, mapping non-finite values to `null` so the
/// output always parses. (Nothing in the recorder should produce one —
/// this is the last line of defence the `RunningStats` ∞-leak bug
/// showed we need.)
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

fn push_counters(out: &mut String, r: &HomeRecorder) {
    out.push_str(",\"counters\":{");
    for (i, c) in Ctr::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(c.name());
        out.push_str("\":");
        out.push_str(&r.counter(*c).to_string());
    }
    out.push('}');
}

fn push_stages(out: &mut String, r: &HomeRecorder) {
    out.push_str(",\"stages\":{");
    for (i, s) in Stage::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let h = r.stage(*s);
        out.push('"');
        out.push_str(s.name());
        out.push_str("\":{\"count\":");
        out.push_str(&h.total().to_string());
        for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            out.push_str(",\"");
            out.push_str(label);
            out.push_str("\":");
            match h.quantile(q) {
                Some(v) => out.push_str(&json_f64(v)),
                None => out.push_str("null"),
            }
        }
        out.push('}');
    }
    out.push('}');
}

fn push_trace_record(out: &mut String, rec: &TraceRecord) {
    out.push_str("{\"at_ms\":");
    out.push_str(&rec.at.as_millis().to_string());
    out.push_str(",\"event\":");
    match rec.kind {
        TraceKind::EpisodeStarted { episode } => {
            out.push_str(&format!("\"episode_started\",\"episode\":{episode}"));
        }
        TraceKind::EpisodeEnded { completed } => {
            out.push_str(&format!("\"episode_ended\",\"completed\":{completed}"));
        }
        TraceKind::ToolInUse { node } => {
            out.push_str(&format!("\"tool_in_use\",\"node\":{node}"));
        }
        TraceKind::RadioDelivered { node, attempts } => {
            out.push_str(&format!("\"radio_delivered\",\"node\":{node},\"attempts\":{attempts}"));
        }
        TraceKind::RadioLost { node, attempts } => {
            out.push_str(&format!("\"radio_lost\",\"node\":{node},\"attempts\":{attempts}"));
        }
        TraceKind::StepExtracted { step } => {
            out.push_str(&format!("\"step_extracted\",\"step\":{}", step.raw()));
        }
        TraceKind::IdleDetected { idle_ms } => {
            out.push_str(&format!("\"idle_detected\",\"idle_ms\":{idle_ms}"));
        }
        TraceKind::ReminderIssued { tool, specific, wrong_tool } => {
            out.push_str(&format!(
                "\"reminder_issued\",\"tool\":{},\"specific\":{specific},\"wrong_tool\":{wrong_tool}",
                tool.raw(),
            ));
        }
        TraceKind::LedCommand { tool, red, delivered } => {
            out.push_str(&format!(
                "\"led_command\",\"tool\":{},\"red\":{red},\"delivered\":{delivered}",
                tool.raw(),
            ));
        }
        TraceKind::Praised { latency_ms } => {
            out.push_str(&format!("\"praised\",\"latency_ms\":{latency_ms}"));
        }
        TraceKind::Reprompt { escalations } => {
            out.push_str(&format!("\"reprompt\",\"escalations\":{escalations}"));
        }
        TraceKind::SessionStarted { name } => {
            out.push_str(&format!("\"session_started\",\"name\":{}", name.index()));
        }
        TraceKind::SessionEnded { name, completed } => {
            out.push_str(&format!(
                "\"session_ended\",\"name\":{},\"completed\":{completed}",
                name.index(),
            ));
        }
        TraceKind::CrossActivity { name } => {
            out.push_str(&format!("\"cross_activity\",\"name\":{}", name.index()));
        }
    }
    out.push('}');
}

fn render_quantiles(h: &Histogram) -> String {
    match (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)) {
        (Some(p50), Some(p95), Some(p99)) => format!(
            "n={} p50={p50:.0}ms p95={p95:.0}ms p99={p99:.0}ms",
            h.total(),
        ),
        _ => format!("n={} (no samples)", h.total()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctr_all_matches_discriminants() {
        for (i, c) in Ctr::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?} out of place in Ctr::ALL");
        }
        for s in Stage::ALL {
            let (lo, hi, bins) = s.bins();
            assert!(lo < hi && bins > 0);
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut ring = TraceRing::new(3);
        for i in 0..5u32 {
            ring.push(SimTime::from_millis(u64::from(i)), TraceKind::EpisodeStarted { episode: i });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ats: Vec<u64> = ring.iter().map(|r| r.at.as_millis()).collect();
        assert_eq!(ats, vec![2, 3, 4], "oldest two evicted, order preserved");
    }

    #[test]
    fn absorb_sums_counters_and_histograms() {
        let mut a = HomeRecorder::new();
        let mut b = HomeRecorder::new();
        a.inc(Ctr::RemindersIssued);
        b.add(Ctr::RemindersIssued, 2);
        a.latency_ms(Stage::IdleDetect, 1_000.0);
        b.latency_ms(Stage::IdleDetect, 2_000.0);
        b.event(SimTime::ZERO, TraceKind::IdleDetected { idle_ms: 5 });
        a.absorb(&b);
        assert_eq!(a.counter(Ctr::RemindersIssued), 3);
        assert_eq!(a.stage(Stage::IdleDetect).total(), 2);
        assert!(a.ring().is_empty(), "rings are per-home, not merged");
    }

    #[test]
    fn absorb_saturates_and_flags_instead_of_wrapping() {
        let mut a = HomeRecorder::new();
        let mut b = HomeRecorder::new();
        a.add(Ctr::RemindersIssued, u64::MAX - 1);
        b.add(Ctr::RemindersIssued, 5);
        b.inc(Ctr::Praises);
        a.absorb(&b);
        assert_eq!(
            a.counter(Ctr::RemindersIssued),
            u64::MAX,
            "an overflowing counter sum must clamp, not wrap"
        );
        assert_eq!(a.counter(Ctr::Praises), 1, "non-overflowing sums stay exact");
        assert_eq!(
            a.counter(Ctr::TotalsSaturated),
            1,
            "each clamped counter surfaces in TotalsSaturated"
        );

        // `add` itself pins at the ceiling rather than wrapping past it.
        let mut c = HomeRecorder::new();
        c.add(Ctr::RepromptEscalations, u64::MAX);
        c.inc(Ctr::RepromptEscalations);
        assert_eq!(c.counter(Ctr::RepromptEscalations), u64::MAX);
    }

    #[test]
    fn jsonl_has_no_non_finite_and_one_line_per_home() {
        let mut t = Telemetry::default();
        t.homes.push(HomeRecorder::new());
        let mut h = HomeRecorder::new();
        h.inc(Ctr::Praises);
        h.latency_ms(Stage::PromptToCompliance, 1_500.0);
        h.event(SimTime::from_secs(1), TraceKind::Praised { latency_ms: 1_500 });
        t.homes.push(h);
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3, "summary + 2 homes");
        assert!(!jsonl.contains("inf") && !jsonl.contains("NaN"), "{jsonl}");
        assert!(jsonl.lines().next().unwrap().contains("\"kind\":\"summary\""));
        assert!(jsonl.contains("\"praised\""));
    }

    #[test]
    fn json_f64_guards_non_finite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn recorder_state_round_trips_through_a_wrapped_ring() {
        let mut r = HomeRecorder::with_ring_capacity(3);
        r.add(Ctr::RadioFramesTx, 7);
        r.latency_ms(Stage::IdleDetect, 12_000.0);
        r.latency_ms(Stage::IdleDetect, 999_999.0); // overflow bin
        for i in 0..5u32 {
            r.event(SimTime::from_millis(u64::from(i)), TraceKind::EpisodeStarted { episode: i });
        }
        let state = r.export_state();
        let mut restored = HomeRecorder::new();
        restored.restore_state(&state);
        assert_eq!(restored, r, "restore must be exact (logical ring equality)");
        // Continued pushes behave identically on both sides.
        r.event(SimTime::from_secs(9), TraceKind::Praised { latency_ms: 1 });
        restored.event(SimTime::from_secs(9), TraceKind::Praised { latency_ms: 1 });
        assert_eq!(restored, r);
        assert_eq!(restored.ring().dropped(), 3);
    }

    #[test]
    fn restore_zero_fills_counters_missing_from_older_snapshots() {
        let mut r = HomeRecorder::new();
        r.inc(Ctr::Praises);
        let mut state = r.export_state();
        state.counters.truncate(25); // the pre-care registry size
        let mut restored = HomeRecorder::new();
        restored.inc(Ctr::EscalationsRaised);
        restored.restore_state(&state);
        assert_eq!(restored.counter(Ctr::Praises), 1);
        assert_eq!(restored.counter(Ctr::EscalationsRaised), 0, "missing counters restore to zero");
    }

    #[test]
    fn summary_mentions_care_only_when_escalations_ran() {
        let mut t = Telemetry::default();
        t.homes.push(HomeRecorder::new());
        assert!(!t.render_summary().contains("care:"));
        t.homes[0].inc(Ctr::EscalationsRaised);
        assert!(t.render_summary().contains("care: 1 raised, 0 acked, 0 resolved, 0 trend window(s)"));
    }

    #[test]
    fn summary_mentions_saturation_only_when_it_happened() {
        let mut t = Telemetry::default();
        t.homes.push(HomeRecorder::new());
        assert!(!t.render_summary().contains("WARNING"));
        t.homes[0].inc(Ctr::TotalsSaturated);
        assert!(t.render_summary().contains("WARNING"));
    }
}
