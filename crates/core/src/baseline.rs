//! Baseline planners CoReDA is compared against.
//!
//! The related-work section criticises systems "based solely on
//! pre-planned routines of ADLs, without considering different users'
//! preferences". [`CanonicalReminder`] is that strawman: it always prompts
//! the spec's canonical next step. [`MdpPlanner`] is a Boger-et-al.-style
//! model-based planner: given a *known* routine it solves the same MDP by
//! value iteration — an upper bound that needs information CoReDA learns
//! on its own.

use coreda_adl::activity::AdlSpec;
use coreda_adl::routine::Routine;
use coreda_adl::step::StepId;
use coreda_adl::tool::ToolId;
use coreda_rl::model::EmpiricalMdp;
use coreda_rl::qtable::QTable;
use coreda_rl::solve::value_iteration;
use coreda_rl::space::StateId;

use crate::planning::{PlanningSubsystem, RewardConfig, StateEncoder};
use crate::reminding::{Prompt, ReminderLevel};

/// Anything that can predict the next tool from a `(prev, cur)` state.
pub trait NextStepPredictor: std::fmt::Debug {
    /// A short display name for tables.
    fn name(&self) -> &str;

    /// The prompt this predictor would issue in state `(prev, cur)`, or
    /// `None` if it has no opinion.
    fn prompt_for(&self, prev: StepId, cur: StepId) -> Option<Prompt>;

    /// Convenience: just the predicted tool.
    fn tool_for(&self, prev: StepId, cur: StepId) -> Option<ToolId> {
        self.prompt_for(prev, cur).map(|p| p.tool)
    }
}

impl NextStepPredictor for PlanningSubsystem {
    fn name(&self) -> &str {
        "CoReDA (TD(λ) Q-learning)"
    }

    fn prompt_for(&self, prev: StepId, cur: StepId) -> Option<Prompt> {
        self.predict(prev, cur)
    }
}

/// The pre-planned baseline: always prompts the canonical next step,
/// whoever the user is.
#[derive(Debug, Clone)]
pub struct CanonicalReminder {
    canonical: Routine,
}

impl CanonicalReminder {
    /// Creates the baseline for one ADL.
    #[must_use]
    pub fn new(spec: &AdlSpec) -> Self {
        CanonicalReminder { canonical: Routine::canonical(spec) }
    }
}

impl NextStepPredictor for CanonicalReminder {
    fn name(&self) -> &str {
        "Pre-planned canonical routine"
    }

    fn prompt_for(&self, _prev: StepId, cur: StepId) -> Option<Prompt> {
        let next = if cur.is_idle() {
            self.canonical.first()
        } else {
            self.canonical.next_after(cur)?
        };
        Some(Prompt { tool: next.tool()?, level: ReminderLevel::Specific })
    }
}

/// A value-iteration planner with oracle knowledge of the user's routine
/// (the Boger et al. approach — the paper's reference \[1\] — transplanted
/// onto CoReDA's MDP).
#[derive(Debug, Clone)]
pub struct MdpPlanner {
    encoder: StateEncoder,
    q: QTable,
}

impl MdpPlanner {
    /// Solves the routine-following MDP by value iteration.
    ///
    /// Transitions are deterministic — in state `(prev, cur)` every action
    /// leads to `(cur, next(cur))` — and rewards are the paper's
    /// (1000/100/50, 0 on mismatch), so the optimal policy prompts the
    /// routine's next tool at the minimal level.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not in `[0, 1)` or `sweeps` is zero.
    #[must_use]
    pub fn solve(
        spec: &AdlSpec,
        routine: &Routine,
        reward: RewardConfig,
        gamma: f64,
        sweeps: usize,
    ) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
        assert!(sweeps > 0, "at least one sweep required");
        let encoder = StateEncoder::new(spec);
        let mut q = QTable::new(encoder.shape());
        let transitions = routine.transitions();
        for _ in 0..sweeps {
            for &(prev, cur, next) in &transitions {
                let s = encoder.state_of(prev, cur).expect("routine steps are in the spec");
                let is_terminal = next == routine.last();
                let next_value: f64 = if is_terminal {
                    0.0
                } else {
                    let s2 = encoder.state_of(cur, next).expect("routine steps are in the spec");
                    q.max_value(s2)
                };
                for a in encoder.shape().action_ids() {
                    let prompt = encoder.decode_action(a);
                    let r = reward.reward(prompt, next, is_terminal);
                    q.set(s, a, r + gamma * next_value);
                }
            }
        }
        MdpPlanner { encoder, q }
    }

    /// The solved state-value for `(prev, cur)` (diagnostics).
    #[must_use]
    pub fn state_value(&self, prev: StepId, cur: StepId) -> Option<f64> {
        let s: StateId = self.encoder.state_of(prev, cur)?;
        Some(self.q.max_value(s))
    }
}

impl NextStepPredictor for MdpPlanner {
    fn name(&self) -> &str {
        "Value iteration (oracle routine)"
    }

    fn prompt_for(&self, prev: StepId, cur: StepId) -> Option<Prompt> {
        let s = self.encoder.state_of(prev, cur)?;
        Some(self.encoder.decode_action(self.q.greedy_action(s)))
    }
}

/// Certainty-equivalence planning: estimate the routine MDP empirically
/// from recorded episodes, then solve it exactly with value iteration.
///
/// Because CoReDA's prompts do not influence what the user does, every
/// observed transition informs *all* actions at once (the reward of each
/// hypothetical prompt is computable from the observed next step). That
/// makes this the most sample-efficient learner available for the
/// problem — typically converging in single-digit episodes — at the cost
/// of storing counts and re-solving after updates.
#[derive(Debug, Clone)]
pub struct CertaintyEquivalence {
    encoder: StateEncoder,
    model: EmpiricalMdp,
    reward: RewardConfig,
    gamma: f64,
    terminal: StepId,
    q: QTable,
    episodes: u64,
}

impl CertaintyEquivalence {
    /// Creates an empty planner.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not in `[0, 1)`.
    #[must_use]
    pub fn new(spec: &AdlSpec, reward: RewardConfig, gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
        let encoder = StateEncoder::new(spec);
        let q = QTable::new(encoder.shape());
        CertaintyEquivalence {
            model: EmpiricalMdp::new(encoder.shape()),
            encoder,
            reward,
            gamma,
            terminal: spec.terminal_step(),
            q,
            episodes: 0,
        }
    }

    /// Number of episodes observed.
    #[must_use]
    pub const fn episodes_observed(&self) -> u64 {
        self.episodes
    }

    /// Records one complete StepID sequence and re-solves the model.
    /// Idle and foreign steps are skipped, as in the TD planner.
    pub fn observe_episode(&mut self, steps: &[StepId]) {
        let seq: Vec<StepId> = steps
            .iter()
            .copied()
            .filter(|s| !s.is_idle() && self.encoder.state_of(*s, *s).is_some())
            .collect();
        if seq.len() < 2 {
            self.episodes += 1;
            return;
        }
        let mut prev = StepId::IDLE;
        for i in 0..seq.len() - 1 {
            let cur = seq[i];
            let next = seq[i + 1];
            let s = self.encoder.state_of(prev, cur).expect("filtered");
            // Completion = terminal step that ends the recording (see the
            // TD planner for the rationale).
            let is_terminal = next == self.terminal && i + 2 == seq.len();
            let next_state = if is_terminal {
                None
            } else {
                Some(self.encoder.state_of(cur, next).expect("filtered"))
            };
            // Prompts do not change the transition, so one observation
            // informs every action's statistics.
            for a in self.encoder.shape().action_ids() {
                let prompt = self.encoder.decode_action(a);
                let r = self.reward.reward(prompt, next, is_terminal);
                self.model.record(s, a, r, next_state);
            }
            prev = cur;
        }
        self.episodes += 1;
        let (q, _) = value_iteration(&self.model.to_mdp(), self.gamma, 1e-9, 10_000);
        self.q = q;
    }
}

impl NextStepPredictor for CertaintyEquivalence {
    fn name(&self) -> &str {
        "Certainty equivalence (counts + VI)"
    }

    fn prompt_for(&self, prev: StepId, cur: StepId) -> Option<Prompt> {
        let s = self.encoder.state_of(prev, cur)?;
        if self.model.visits(s, coreda_rl::space::ActionId::new(0)) == 0 {
            return None; // never seen this state: no opinion.
        }
        Some(self.encoder.decode_action(self.q.greedy_action(s)))
    }
}

/// Fraction of `routine`'s transitions a predictor gets right.
#[must_use]
pub fn routine_accuracy(predictor: &dyn NextStepPredictor, routine: &Routine) -> f64 {
    let transitions = routine.transitions();
    if transitions.is_empty() {
        return 1.0;
    }
    let hits = transitions
        .iter()
        .filter(|&&(prev, cur, next)| predictor.tool_for(prev, cur) == next.tool())
        .count();
    hits as f64 / transitions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_adl::activity::catalog;

    fn personal_routine(spec: &AdlSpec) -> Routine {
        let ids = spec.step_ids();
        Routine::new(spec, vec![ids[1], ids[0], ids[2], ids[3]])
    }

    #[test]
    fn canonical_baseline_is_perfect_on_canonical_users() {
        let tea = catalog::tea_making();
        let baseline = CanonicalReminder::new(&tea);
        assert_eq!(routine_accuracy(&baseline, &Routine::canonical(&tea)), 1.0);
    }

    #[test]
    fn canonical_baseline_fails_personalised_users() {
        // The paper's core criticism of prior work.
        let tea = catalog::tea_making();
        let baseline = CanonicalReminder::new(&tea);
        let acc = routine_accuracy(&baseline, &personal_routine(&tea));
        assert!(acc < 1.0, "pre-planned baseline should mispredict, got {acc}");
    }

    #[test]
    fn canonical_baseline_prompts_first_step_from_idle() {
        let tea = catalog::tea_making();
        let baseline = CanonicalReminder::new(&tea);
        let p = baseline.prompt_for(StepId::IDLE, StepId::IDLE).unwrap();
        assert_eq!(Some(p.tool), tea.steps()[0].id().tool());
    }

    #[test]
    fn mdp_planner_solves_any_routine() {
        let tea = catalog::tea_making();
        for routine in [Routine::canonical(&tea), personal_routine(&tea)] {
            let planner =
                MdpPlanner::solve(&tea, &routine, RewardConfig::default(), 0.9, 20);
            assert_eq!(
                routine_accuracy(&planner, &routine),
                1.0,
                "value iteration must be exact on {routine:?}"
            );
        }
    }

    #[test]
    fn mdp_planner_prefers_minimal_level() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let planner = MdpPlanner::solve(&tea, &routine, RewardConfig::default(), 0.9, 20);
        for &(prev, cur, _) in &routine.transitions() {
            assert_eq!(planner.prompt_for(prev, cur).unwrap().level, ReminderLevel::Minimal);
        }
    }

    #[test]
    fn mdp_values_decrease_away_from_goal() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let planner = MdpPlanner::solve(&tea, &routine, RewardConfig::default(), 0.9, 50);
        let trans = routine.transitions();
        // The state closest to completion has the highest value (≥ 1000).
        let last = trans.last().unwrap();
        let first = trans.first().unwrap();
        let v_last = planner.state_value(last.0, last.1).unwrap();
        let v_first = planner.state_value(first.0, first.1).unwrap();
        assert!(v_last >= 1000.0);
        assert!(v_first <= v_last, "value must not grow away from the goal");
    }

    #[test]
    fn certainty_equivalence_learns_in_single_digit_episodes() {
        let tea = catalog::tea_making();
        let routine = personal_routine(&tea);
        let mut ce = CertaintyEquivalence::new(&tea, RewardConfig::default(), 0.05);
        assert_eq!(routine_accuracy(&ce, &routine), 0.0, "no opinion before data");
        for _ in 0..3 {
            ce.observe_episode(routine.steps());
        }
        assert_eq!(
            routine_accuracy(&ce, &routine),
            1.0,
            "three clean episodes fully determine the routine"
        );
        assert_eq!(ce.episodes_observed(), 3);
    }

    #[test]
    fn certainty_equivalence_handles_noisy_sequences() {
        use coreda_adl::episode::EpisodeGenerator;
        use coreda_adl::patient::PatientProfile;
        use coreda_adl::routine::RoutineSet;
        use coreda_des::rng::SimRng;
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let gen = EpisodeGenerator::new(
            tea.clone(),
            RoutineSet::single(routine.clone()),
            PatientProfile::moderate("x"),
        );
        let mut rng = SimRng::seed_from(31);
        let mut ce = CertaintyEquivalence::new(&tea, RewardConfig::default(), 0.05);
        for ep in gen.generate_batch(30, &mut rng) {
            ce.observe_episode(&ep.step_ids());
        }
        assert_eq!(routine_accuracy(&ce, &routine), 1.0);
    }

    #[test]
    fn trained_coreda_matches_oracle_without_oracle_knowledge() {
        use crate::planning::{PlanningConfig, PlanningSubsystem};
        use coreda_des::rng::SimRng;
        let tea = catalog::tea_making();
        let personal = personal_routine(&tea);
        let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
        let mut rng = SimRng::seed_from(9);
        for _ in 0..300 {
            planner.train_episode(personal.steps(), &mut rng);
        }
        let oracle = MdpPlanner::solve(&tea, &personal, RewardConfig::default(), 0.9, 20);
        for &(prev, cur, _) in &personal.transitions() {
            assert_eq!(
                planner.tool_for(prev, cur),
                oracle.tool_for(prev, cur),
                "learned policy should agree with the oracle at ({prev}, {cur})"
            );
        }
    }
}
