//! Property-based tests for RL invariants.

use coreda_des::rng::SimRng;
use coreda_rl::algo::{Outcome, QLearning, TdConfig, TdControl, WatkinsQLambda};
use coreda_rl::policy::{EpsilonGreedy, Policy, Softmax};
use coreda_rl::qtable::QTable;
use coreda_rl::schedule::Schedule;
use coreda_rl::space::{ActionId, ProblemShape, StateId};
use coreda_rl::traces::{EligibilityTraces, TraceKind};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = ProblemShape> {
    (1usize..8, 1usize..6).prop_map(|(s, a)| ProblemShape::new(s, a))
}

proptest! {
    /// Greedy action always has the row's maximum value.
    #[test]
    fn greedy_action_is_argmax(
        values in proptest::collection::vec(-100.0f64..100.0, 1..6),
    ) {
        let shape = ProblemShape::new(1, values.len());
        let mut q = QTable::new(shape);
        for (i, &v) in values.iter().enumerate() {
            q.set(StateId::new(0), ActionId::new(i), v);
        }
        let g = q.greedy_action(StateId::new(0));
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(q.value(StateId::new(0), g), max);
    }

    /// Policy probability vectors are simplexes (non-negative, sum 1).
    #[test]
    fn policy_probabilities_are_simplex(
        shape in arb_shape(),
        eps in 0.0f64..=1.0,
        tau in 0.01f64..50.0,
        seed in any::<u64>(),
    ) {
        let mut q = QTable::new(shape);
        let mut rng = SimRng::seed_from(seed);
        for s in shape.state_ids() {
            for a in shape.action_ids() {
                q.set(s, a, rng.normal(0.0, 10.0));
            }
        }
        for s in shape.state_ids() {
            for p in [
                EpsilonGreedy::constant(eps).probabilities(&q, s, 0),
                Softmax::constant(tau).probabilities(&q, s, 0),
            ] {
                prop_assert!(p.iter().all(|&x| x >= -1e-12));
                prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    /// With rewards bounded by R and gamma < 1, Q-learning estimates stay
    /// within R / (1 - gamma).
    #[test]
    fn q_values_respect_reward_bound(
        seed in any::<u64>(),
        gamma in 0.0f64..0.99,
        transitions in proptest::collection::vec(
            (0usize..4, 0usize..3, -1.0f64..1.0, proptest::option::of((0usize..4, 0usize..3))),
            1..200,
        ),
    ) {
        let shape = ProblemShape::new(4, 3);
        let cfg = TdConfig::new(Schedule::constant(0.5), gamma);
        let mut l = QLearning::new(shape, cfg);
        let _ = seed;
        l.begin_episode();
        for (s, a, r, next) in transitions {
            let outcome = match next {
                None => Outcome::Terminal,
                Some((ns, na)) => Outcome::Continue {
                    next_state: StateId::new(ns),
                    next_action: ActionId::new(na),
                },
            };
            l.observe(StateId::new(s), ActionId::new(a), r, outcome);
        }
        let bound = 1.0 / (1.0 - gamma) + 1e-9;
        prop_assert!(l.q().max_abs_value() <= bound,
            "max |Q| = {} exceeds bound {}", l.q().max_abs_value(), bound);
    }

    /// Eligibility traces never grow under decay and never go negative.
    #[test]
    fn traces_bounded(
        visits in proptest::collection::vec((0usize..5, 0usize..3), 1..50),
        factor in 0.0f64..=1.0,
    ) {
        for kind in [TraceKind::Accumulating, TraceKind::Replacing] {
            let mut tr = EligibilityTraces::new(kind);
            for &(s, a) in &visits {
                tr.visit(StateId::new(s), ActionId::new(a));
            }
            let before: Vec<f64> = {
                let mut v = Vec::new();
                tr.for_each(|_, _, e| v.push(e));
                v
            };
            tr.decay(factor);
            let after: Vec<f64> = {
                let mut v = Vec::new();
                tr.for_each(|_, _, e| v.push(e));
                v
            };
            for &e in &after {
                prop_assert!(e >= 0.0);
                if kind == TraceKind::Replacing {
                    prop_assert!(e <= 1.0);
                }
            }
            let total_before: f64 = before.iter().sum();
            let total_after: f64 = after.iter().sum();
            prop_assert!(total_after <= total_before * factor + 1e-9);
        }
    }

    /// Watkins Q(λ) with λ = 0 equals one-step Q-learning on any script.
    #[test]
    fn q_lambda_zero_equals_q_learning(
        transitions in proptest::collection::vec(
            (0usize..4, 0usize..2, -5.0f64..5.0, proptest::option::of((0usize..4, 0usize..2))),
            1..100,
        ),
    ) {
        let shape = ProblemShape::new(4, 2);
        let cfg = TdConfig::new(Schedule::constant(0.3), 0.9);
        let mut ql = QLearning::new(shape, cfg);
        let mut qz = WatkinsQLambda::new(shape, cfg, 0.0, TraceKind::Accumulating);
        ql.begin_episode();
        qz.begin_episode();
        for (s, a, r, next) in transitions {
            let outcome = match next {
                None => Outcome::Terminal,
                Some((ns, na)) => Outcome::Continue {
                    next_state: StateId::new(ns),
                    next_action: ActionId::new(na),
                },
            };
            ql.observe(StateId::new(s), ActionId::new(a), r, outcome);
            qz.observe(StateId::new(s), ActionId::new(a), r, outcome);
        }
        for s in shape.state_ids() {
            for a in shape.action_ids() {
                prop_assert!((ql.q().value(s, a) - qz.q().value(s, a)).abs() < 1e-10);
            }
        }
    }

    /// Schedules never produce values above their initial value (for the
    /// decaying families) nor below their floor.
    #[test]
    fn schedules_stay_in_band(
        init in 0.01f64..1.0,
        rate in 0.1f64..=1.0,
        step in 0u64..10_000,
    ) {
        let min = init / 10.0;
        let sched = Schedule::exponential(init, rate, min);
        let v = sched.value(step);
        prop_assert!(v <= init + 1e-12);
        prop_assert!(v >= min - 1e-12);
    }
}
