//! The environment interface and episode runner.

use coreda_des::rng::SimRng;

use crate::algo::{Outcome, TdControl};
use crate::policy::Policy;
use crate::space::{ActionId, ProblemShape, StateId};

/// Result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvStep {
    /// Immediate reward.
    pub reward: f64,
    /// The next state, or `None` if the episode ended.
    pub next: Option<StateId>,
}

/// A discrete episodic environment.
pub trait Environment: std::fmt::Debug {
    /// Dimensions of the environment's state and action spaces.
    fn shape(&self) -> ProblemShape;

    /// Starts a new episode and returns the initial state.
    fn reset(&mut self, rng: &mut SimRng) -> StateId;

    /// Applies `action` in the current state.
    fn step(&mut self, action: ActionId, rng: &mut SimRng) -> EnvStep;
}

/// Statistics from one episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeStats {
    /// Sum of rewards collected.
    pub total_reward: f64,
    /// Number of transitions taken.
    pub steps: usize,
    /// Whether the episode reached a terminal state (vs. hitting the step
    /// cap).
    pub terminated: bool,
}

/// Runs episodes of an [`Environment`] with a [`Policy`] feeding a
/// [`TdControl`] learner.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_rl::algo::{QLearning, TdConfig};
/// use coreda_rl::env::{EpisodeRunner, Environment};
/// use coreda_rl::envs::ChainEnv;
/// use coreda_rl::policy::EpsilonGreedy;
/// use coreda_rl::schedule::Schedule;
///
/// let mut env = ChainEnv::new(5);
/// let mut learner = QLearning::new(env.shape(), TdConfig::new(Schedule::constant(0.2), 0.9));
/// let policy = EpsilonGreedy::constant(0.1);
/// let mut runner = EpisodeRunner::new(200);
/// let mut rng = SimRng::seed_from(1);
/// for _ in 0..100 {
///     runner.run_episode(&mut env, &mut learner, &policy, &mut rng);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EpisodeRunner {
    max_steps: usize,
    episodes_run: u64,
}

impl EpisodeRunner {
    /// Creates a runner that aborts episodes after `max_steps` transitions
    /// (a safety net against policies that loop forever).
    ///
    /// # Panics
    ///
    /// Panics if `max_steps` is zero.
    #[must_use]
    pub fn new(max_steps: usize) -> Self {
        assert!(max_steps > 0, "max_steps must be positive");
        EpisodeRunner { max_steps, episodes_run: 0 }
    }

    /// Number of episodes run so far (used as the policy's schedule step).
    #[must_use]
    pub const fn episodes_run(&self) -> u64 {
        self.episodes_run
    }

    /// Runs a single learning episode.
    pub fn run_episode(
        &mut self,
        env: &mut dyn Environment,
        learner: &mut dyn TdControl,
        policy: &dyn Policy,
        rng: &mut SimRng,
    ) -> EpisodeStats {
        let ep = self.episodes_run;
        learner.begin_episode();
        let mut s = env.reset(rng);
        let mut a = policy.select(learner.q(), s, ep, rng);
        let mut total_reward = 0.0;
        let mut steps = 0;
        let mut terminated = false;
        while steps < self.max_steps {
            let EnvStep { reward, next } = env.step(a, rng);
            total_reward += reward;
            steps += 1;
            match next {
                None => {
                    learner.observe(s, a, reward, Outcome::Terminal);
                    terminated = true;
                    break;
                }
                Some(s2) => {
                    let a2 = policy.select(learner.q(), s2, ep, rng);
                    learner.observe(
                        s,
                        a,
                        reward,
                        Outcome::Continue { next_state: s2, next_action: a2 },
                    );
                    s = s2;
                    a = a2;
                }
            }
        }
        self.episodes_run += 1;
        EpisodeStats { total_reward, steps, terminated }
    }

    /// Runs a greedy (no-learning) evaluation episode and returns its
    /// statistics.
    pub fn evaluate_episode(
        &self,
        env: &mut dyn Environment,
        learner: &dyn TdControl,
        rng: &mut SimRng,
    ) -> EpisodeStats {
        let mut s = env.reset(rng);
        let mut total_reward = 0.0;
        let mut steps = 0;
        let mut terminated = false;
        while steps < self.max_steps {
            let a = learner.q().greedy_action(s);
            let EnvStep { reward, next } = env.step(a, rng);
            total_reward += reward;
            steps += 1;
            match next {
                None => {
                    terminated = true;
                    break;
                }
                Some(s2) => s = s2,
            }
        }
        EpisodeStats { total_reward, steps, terminated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{QLearning, TdConfig};
    use crate::envs::ChainEnv;
    use crate::policy::{EpsilonGreedy, Greedy};
    use crate::schedule::Schedule;

    fn setup() -> (ChainEnv, QLearning, EpisodeRunner, SimRng) {
        let env = ChainEnv::new(4);
        let learner =
            QLearning::new(env.shape(), TdConfig::new(Schedule::constant(0.3), 0.9));
        (env, learner, EpisodeRunner::new(100), SimRng::seed_from(5))
    }

    #[test]
    fn episodes_terminate_and_accumulate_reward() {
        let (mut env, mut learner, mut runner, mut rng) = setup();
        let policy = EpsilonGreedy::constant(0.2);
        let stats = runner.run_episode(&mut env, &mut learner, &policy, &mut rng);
        assert!(stats.steps > 0);
        assert!(stats.terminated || stats.steps == 100);
        assert_eq!(runner.episodes_run(), 1);
    }

    #[test]
    fn learning_improves_greedy_return() {
        let (mut env, mut learner, mut runner, mut rng) = setup();
        let policy = EpsilonGreedy::constant(0.2);
        let before = runner.evaluate_episode(&mut env, &learner, &mut rng);
        for _ in 0..200 {
            runner.run_episode(&mut env, &mut learner, &policy, &mut rng);
        }
        let after = runner.evaluate_episode(&mut env, &learner, &mut rng);
        assert!(
            after.total_reward >= before.total_reward,
            "training should not hurt: before {before:?}, after {after:?}"
        );
        assert!(after.terminated, "greedy policy should reach the goal");
    }

    #[test]
    fn step_cap_prevents_infinite_episodes() {
        let (mut env, mut learner, _, mut rng) = setup();
        // A greedy policy on a zero table picks action 0 forever; make the
        // cap tiny and action 0 a self-loop by using Greedy with zero table
        // on a chain where action 1 moves forward.
        let mut runner = EpisodeRunner::new(5);
        let stats = runner.run_episode(&mut env, &mut learner, &Greedy, &mut rng);
        assert!(stats.steps <= 5);
    }

    #[test]
    #[should_panic(expected = "max_steps must be positive")]
    fn zero_step_cap_rejected() {
        let _ = EpisodeRunner::new(0);
    }
}
