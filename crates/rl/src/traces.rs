//! Eligibility traces for TD(λ) methods.
//!
//! A trace records how "eligible" each `(state, action)` pair is for the
//! current temporal-difference error. CoReDA's planner uses Watkins Q(λ),
//! which decays traces by `γλ` each step and clears them after exploratory
//! actions.

use serde::{Deserialize, Serialize};

use crate::space::{ActionId, StateId};

/// How a revisited pair's trace is refreshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// Add 1 to the existing trace (classic TD(λ)).
    Accumulating,
    /// Reset the trace to exactly 1 (often more stable; Singh & Sutton 1996).
    Replacing,
}

/// A sparse set of eligibility values.
///
/// Entries that decay below a cut-off are dropped, so the cost of a decay
/// pass is proportional to the number of recently visited pairs rather
/// than the full table.
///
/// Storage is a flat insertion-ordered vector rather than a hash map: the
/// live set is tiny (bounded by episode length and shrunk further by
/// pruning), so the decay/apply passes that dominate Q(λ)'s inner loop
/// become branch-predictable linear sweeps with no hashing, and
/// [`EligibilityTraces::for_each`] visits entries in a deterministic
/// order.
///
/// # Examples
///
/// ```
/// use coreda_rl::space::{ActionId, StateId};
/// use coreda_rl::traces::{EligibilityTraces, TraceKind};
///
/// let mut tr = EligibilityTraces::new(TraceKind::Replacing);
/// tr.visit(StateId::new(0), ActionId::new(1));
/// tr.decay(0.9 * 0.8);
/// assert!((tr.value(StateId::new(0), ActionId::new(1)) - 0.72).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EligibilityTraces {
    kind: TraceKind,
    entries: Vec<(StateId, ActionId, f64)>,
    cutoff: f64,
}

impl EligibilityTraces {
    /// Default cut-off below which traces are pruned.
    pub const DEFAULT_CUTOFF: f64 = 1e-4;

    /// Creates an empty trace store.
    #[must_use]
    pub fn new(kind: TraceKind) -> Self {
        Self::with_cutoff(kind, Self::DEFAULT_CUTOFF)
    }

    /// Creates an empty trace store with a custom pruning cut-off.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is negative or not finite.
    #[must_use]
    pub fn with_cutoff(kind: TraceKind, cutoff: f64) -> Self {
        assert!(cutoff.is_finite() && cutoff >= 0.0, "cutoff must be finite and non-negative");
        EligibilityTraces { kind, entries: Vec::new(), cutoff }
    }

    /// The refresh rule in use.
    #[must_use]
    pub const fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Marks `(s, a)` as just visited.
    pub fn visit(&mut self, s: StateId, a: ActionId) {
        if let Some(entry) = self.entries.iter_mut().find(|(es, ea, _)| *es == s && *ea == a) {
            match self.kind {
                TraceKind::Accumulating => entry.2 += 1.0,
                TraceKind::Replacing => entry.2 = 1.0,
            }
        } else {
            self.entries.push((s, a, 1.0));
        }
    }

    /// Current trace value of `(s, a)` (zero if never visited or pruned).
    #[must_use]
    pub fn value(&self, s: StateId, a: ActionId) -> f64 {
        self.entries
            .iter()
            .find(|(es, ea, _)| *es == s && *ea == a)
            .map_or(0.0, |&(_, _, e)| e)
    }

    /// Multiplies every trace by `factor` (typically `γλ`), pruning entries
    /// that fall below the cut-off.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `[0, 1]`.
    pub fn decay(&mut self, factor: f64) {
        assert!((0.0..=1.0).contains(&factor), "decay factor must be in [0, 1], got {factor}");
        if factor == 0.0 {
            self.entries.clear();
            return;
        }
        let cutoff = self.cutoff;
        self.entries.retain_mut(|entry| {
            entry.2 *= factor;
            entry.2 >= cutoff
        });
    }

    /// Applies `f(s, a, trace)` to every live trace, in insertion order.
    pub fn for_each(&self, mut f: impl FnMut(StateId, ActionId, f64)) {
        for &(s, a, e) in &self.entries {
            f(s, a, e);
        }
    }

    /// Number of live traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no traces are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears all traces (start of an episode, or after an exploratory
    /// action under Watkins Q(λ)). Keeps the allocation for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The live entries in insertion order (checkpointing).
    #[must_use]
    pub fn entries(&self) -> &[(StateId, ActionId, f64)] {
        &self.entries
    }

    /// Replaces the live set with `entries`, preserving their order —
    /// [`EligibilityTraces::for_each`] then visits them exactly as the
    /// captured store would have.
    ///
    /// # Panics
    ///
    /// Panics if any trace value is non-finite or negative.
    pub fn restore_entries(&mut self, entries: &[(StateId, ActionId, f64)]) {
        for &(_, _, e) in entries {
            assert!(e.is_finite() && e >= 0.0, "trace values must be finite and non-negative");
        }
        self.entries.clear();
        self.entries.extend_from_slice(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: StateId = StateId::new(1);
    const A: ActionId = ActionId::new(0);

    #[test]
    fn unvisited_is_zero() {
        let tr = EligibilityTraces::new(TraceKind::Accumulating);
        assert_eq!(tr.value(S, A), 0.0);
        assert!(tr.is_empty());
    }

    #[test]
    fn accumulating_adds() {
        let mut tr = EligibilityTraces::new(TraceKind::Accumulating);
        tr.visit(S, A);
        tr.visit(S, A);
        assert_eq!(tr.value(S, A), 2.0);
    }

    #[test]
    fn replacing_caps_at_one() {
        let mut tr = EligibilityTraces::new(TraceKind::Replacing);
        tr.visit(S, A);
        tr.decay(0.5);
        tr.visit(S, A);
        assert_eq!(tr.value(S, A), 1.0);
    }

    #[test]
    fn decay_scales_all() {
        let mut tr = EligibilityTraces::new(TraceKind::Accumulating);
        tr.visit(S, A);
        tr.visit(StateId::new(2), A);
        tr.decay(0.25);
        assert_eq!(tr.value(S, A), 0.25);
        assert_eq!(tr.value(StateId::new(2), A), 0.25);
    }

    #[test]
    fn decay_prunes_small_traces() {
        let mut tr = EligibilityTraces::with_cutoff(TraceKind::Accumulating, 0.1);
        tr.visit(S, A);
        tr.decay(0.05);
        assert!(tr.is_empty(), "trace below cut-off should be pruned");
    }

    #[test]
    fn decay_zero_clears() {
        let mut tr = EligibilityTraces::new(TraceKind::Accumulating);
        tr.visit(S, A);
        tr.decay(0.0);
        assert!(tr.is_empty());
    }

    #[test]
    fn for_each_sees_every_live_trace() {
        let mut tr = EligibilityTraces::new(TraceKind::Replacing);
        tr.visit(S, A);
        tr.visit(StateId::new(3), ActionId::new(2));
        let mut seen = 0;
        tr.for_each(|_, _, e| {
            assert_eq!(e, 1.0);
            seen += 1;
        });
        assert_eq!(seen, 2);
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut tr = EligibilityTraces::new(TraceKind::Replacing);
        tr.visit(S, A);
        tr.clear();
        assert!(tr.is_empty());
    }

    #[test]
    fn restore_entries_round_trips_in_order() {
        let mut tr = EligibilityTraces::new(TraceKind::Replacing);
        tr.visit(StateId::new(3), ActionId::new(2));
        tr.visit(S, A);
        tr.decay(0.5);
        tr.visit(StateId::new(4), ActionId::new(1));
        let saved: Vec<_> = tr.entries().to_vec();

        let mut restored = EligibilityTraces::new(TraceKind::Replacing);
        restored.restore_entries(&saved);
        assert_eq!(restored, tr);
        let mut order = Vec::new();
        restored.for_each(|s, a, e| order.push((s, a, e)));
        assert_eq!(order, saved);
    }

    #[test]
    #[should_panic(expected = "decay factor must be in [0, 1]")]
    fn decay_rejects_bad_factor() {
        let mut tr = EligibilityTraces::new(TraceKind::Replacing);
        tr.decay(1.5);
    }
}
