//! Parameter schedules for learning rates and exploration.
//!
//! The paper notes that CoReDA's parameters ("converging condition,
//! learning rate, etc.") can be set either to converge or to track a
//! drifting routine forever; schedules are how that knob is expressed.

use serde::{Deserialize, Serialize};

/// A deterministic scalar schedule over discrete steps (episodes or
/// updates).
///
/// # Examples
///
/// ```
/// use coreda_rl::schedule::Schedule;
///
/// let eps = Schedule::exponential(1.0, 0.9, 0.05);
/// assert_eq!(eps.value(0), 1.0);
/// assert!(eps.value(50) >= 0.05);
/// let flat = Schedule::constant(0.1);
/// assert_eq!(flat.value(1_000), 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Always the same value.
    Constant(f64),
    /// `max(min, init * rate^step)`.
    Exponential {
        /// Value at step 0.
        init: f64,
        /// Per-step multiplier in `(0, 1]`.
        rate: f64,
        /// Floor.
        min: f64,
    },
    /// `max(min, init / (1 + step))` — the classic Robbins–Monro decay.
    Harmonic {
        /// Value at step 0.
        init: f64,
        /// Floor.
        min: f64,
    },
    /// Linear interpolation from `init` to `end` over `steps`, then flat.
    Linear {
        /// Value at step 0.
        init: f64,
        /// Value from step `steps` on.
        end: f64,
        /// Number of steps over which to interpolate.
        steps: u64,
    },
}

impl Schedule {
    /// A constant schedule.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    #[must_use]
    pub fn constant(value: f64) -> Self {
        assert!(value.is_finite(), "schedule value must be finite");
        Schedule::Constant(value)
    }

    /// An exponentially decaying schedule.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]` or `min > init`.
    #[must_use]
    pub fn exponential(init: f64, rate: f64, min: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "decay rate must be in (0, 1], got {rate}");
        assert!(min <= init, "floor {min} must not exceed initial value {init}");
        Schedule::Exponential { init, rate, min }
    }

    /// A harmonically decaying schedule.
    ///
    /// # Panics
    ///
    /// Panics if `min > init`.
    #[must_use]
    pub fn harmonic(init: f64, min: f64) -> Self {
        assert!(min <= init, "floor {min} must not exceed initial value {init}");
        Schedule::Harmonic { init, min }
    }

    /// A linearly interpolated schedule.
    #[must_use]
    pub fn linear(init: f64, end: f64, steps: u64) -> Self {
        Schedule::Linear { init, end, steps }
    }

    /// The schedule's value at `step`.
    #[must_use]
    pub fn value(&self, step: u64) -> f64 {
        match *self {
            Schedule::Constant(v) => v,
            Schedule::Exponential { init, rate, min } => {
                (init * rate.powf(step as f64)).max(min)
            }
            Schedule::Harmonic { init, min } => (init / (1.0 + step as f64)).max(min),
            Schedule::Linear { init, end, steps } => {
                if steps == 0 || step >= steps {
                    end
                } else {
                    let t = step as f64 / steps as f64;
                    init + (end - init) * t
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_moves() {
        let s = Schedule::constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(u64::MAX), 0.3);
    }

    #[test]
    fn exponential_decays_to_floor() {
        let s = Schedule::exponential(1.0, 0.5, 0.1);
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.value(1), 0.5);
        assert_eq!(s.value(2), 0.25);
        assert_eq!(s.value(100), 0.1);
    }

    #[test]
    fn harmonic_decay() {
        let s = Schedule::harmonic(1.0, 0.0);
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.value(1), 0.5);
        assert_eq!(s.value(9), 0.1);
    }

    #[test]
    fn linear_interpolates_then_flat() {
        let s = Schedule::linear(1.0, 0.0, 10);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(5) - 0.5).abs() < 1e-12);
        assert_eq!(s.value(10), 0.0);
        assert_eq!(s.value(999), 0.0);
    }

    #[test]
    fn linear_zero_steps_is_end() {
        let s = Schedule::linear(1.0, 0.25, 0);
        assert_eq!(s.value(0), 0.25);
    }

    #[test]
    fn schedules_are_monotone_non_increasing_when_decaying() {
        for s in [
            Schedule::exponential(1.0, 0.9, 0.01),
            Schedule::harmonic(1.0, 0.01),
            Schedule::linear(1.0, 0.01, 100),
        ] {
            let mut last = f64::INFINITY;
            for step in 0..200 {
                let v = s.value(step);
                assert!(v <= last + 1e-12, "{s:?} increased at step {step}");
                last = v;
            }
        }
    }

    #[test]
    #[should_panic(expected = "decay rate must be in (0, 1]")]
    fn bad_rate_rejected() {
        let _ = Schedule::exponential(1.0, 1.5, 0.0);
    }
}
