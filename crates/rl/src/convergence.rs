//! Convergence measurement.
//!
//! The paper's Figure 4 plots a "learning curve" and reads off the episode
//! at which the policy passes a *converging condition* of 95 % or 98 %.
//! We interpret the condition as prediction accuracy: the fraction of
//! reference transitions for which the greedy policy proposes the correct
//! action. [`LearningCurve`] records that accuracy per training episode
//! and answers "when did it first (sustainably) cross a threshold?".

use serde::{Deserialize, Serialize};

use crate::qtable::QTable;
use crate::space::{ActionId, StateId};

/// A labelled evaluation set: for each state, the action the learned
/// policy is expected to take.
pub type ReferencePairs = Vec<(StateId, ActionId)>;

/// Fraction of `pairs` on which `q`'s greedy policy agrees with the label.
///
/// Returns 1.0 for an empty reference set (nothing to get wrong).
///
/// # Examples
///
/// ```
/// use coreda_rl::convergence::prediction_accuracy;
/// use coreda_rl::qtable::QTable;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let mut q = QTable::new(ProblemShape::new(2, 2));
/// q.set(StateId::new(0), ActionId::new(1), 1.0);
/// let refs = vec![(StateId::new(0), ActionId::new(1)), (StateId::new(1), ActionId::new(1))];
/// assert_eq!(prediction_accuracy(&q, &refs), 0.5);
/// ```
#[must_use]
pub fn prediction_accuracy(q: &QTable, pairs: &[(StateId, ActionId)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let hits = pairs.iter().filter(|&&(s, a)| q.greedy_action(s) == a).count();
    hits as f64 / pairs.len() as f64
}

/// Fraction of states whose greedy action differs between two tables
/// (policy instability; 0.0 means the greedy policies are identical).
///
/// # Panics
///
/// Panics if the tables have different shapes.
#[must_use]
pub fn policy_disagreement(a: &QTable, b: &QTable) -> f64 {
    assert_eq!(a.shape(), b.shape(), "tables must share a shape");
    let n = a.shape().states();
    let diff = a
        .shape()
        .state_ids()
        .filter(|&s| a.greedy_action(s) != b.greedy_action(s))
        .count();
    diff as f64 / n as f64
}

/// Accuracy-per-episode record with threshold queries.
///
/// # Examples
///
/// ```
/// use coreda_rl::convergence::LearningCurve;
///
/// let mut curve = LearningCurve::new();
/// for acc in [0.2, 0.5, 0.96, 0.94, 0.97, 0.99, 1.0] {
///     curve.record(acc);
/// }
/// assert_eq!(curve.first_reaching(0.95), Some(2));
/// assert_eq!(curve.converged_at(0.95, 3), Some(4));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    accuracies: Vec<f64>,
}

impl LearningCurve {
    /// An empty curve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one episode's accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is not in `[0, 1]`.
    pub fn record(&mut self, accuracy: f64) {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy must be in [0, 1], got {accuracy}");
        self.accuracies.push(accuracy);
    }

    /// The recorded accuracies, in episode order.
    #[must_use]
    pub fn accuracies(&self) -> &[f64] {
        &self.accuracies
    }

    /// Number of recorded episodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accuracies.len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accuracies.is_empty()
    }

    /// The first episode index whose accuracy is at least `threshold`.
    #[must_use]
    pub fn first_reaching(&self, threshold: f64) -> Option<usize> {
        self.accuracies.iter().position(|&a| a >= threshold)
    }

    /// The first episode index from which accuracy stays at or above
    /// `threshold` for at least `window` consecutive episodes (including
    /// a terminal run shorter than `window` only if it ends the curve at
    /// or above the threshold for `window` episodes).
    ///
    /// This is the "converging condition" read-out used for Figure 4: a
    /// single lucky episode does not count as convergence.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn converged_at(&self, threshold: f64, window: usize) -> Option<usize> {
        assert!(window > 0, "window must be positive");
        if self.accuracies.len() < window {
            return None;
        }
        (0..=self.accuracies.len() - window)
            .find(|&i| self.accuracies[i..i + window].iter().all(|&a| a >= threshold))
    }

    /// The final accuracy, if any episodes were recorded.
    #[must_use]
    pub fn final_accuracy(&self) -> Option<f64> {
        self.accuracies.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ProblemShape;

    #[test]
    fn accuracy_counts_matches() {
        let mut q = QTable::new(ProblemShape::new(3, 2));
        q.set(StateId::new(0), ActionId::new(1), 1.0);
        q.set(StateId::new(1), ActionId::new(1), 1.0);
        let refs = vec![
            (StateId::new(0), ActionId::new(1)),
            (StateId::new(1), ActionId::new(1)),
            (StateId::new(2), ActionId::new(1)), // greedy is 0 here → miss
        ];
        let acc = prediction_accuracy(&q, &refs);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_reference_set_is_perfect() {
        let q = QTable::new(ProblemShape::new(1, 1));
        assert_eq!(prediction_accuracy(&q, &[]), 1.0);
    }

    #[test]
    fn disagreement_is_zero_for_identical_tables() {
        let q = QTable::new(ProblemShape::new(4, 3));
        assert_eq!(policy_disagreement(&q, &q.clone()), 0.0);
    }

    #[test]
    fn disagreement_counts_changed_states() {
        let a = QTable::new(ProblemShape::new(4, 2));
        let mut b = a.clone();
        b.set(StateId::new(0), ActionId::new(1), 1.0);
        b.set(StateId::new(3), ActionId::new(1), 1.0);
        assert_eq!(policy_disagreement(&a, &b), 0.5);
    }

    #[test]
    fn first_reaching_finds_spikes() {
        let mut c = LearningCurve::new();
        for a in [0.1, 0.96, 0.2] {
            c.record(a);
        }
        assert_eq!(c.first_reaching(0.95), Some(1));
        assert_eq!(c.first_reaching(0.99), None);
    }

    #[test]
    fn converged_at_requires_sustained_run() {
        let mut c = LearningCurve::new();
        for a in [0.96, 0.2, 0.97, 0.98, 0.99, 0.95] {
            c.record(a);
        }
        // The spike at 0 does not count with window 2; episodes 2.. do.
        assert_eq!(c.converged_at(0.95, 2), Some(2));
        assert_eq!(c.converged_at(0.95, 4), Some(2));
        assert_eq!(c.converged_at(0.95, 5), None);
    }

    #[test]
    fn converged_at_window_one_equals_first_reaching() {
        let mut c = LearningCurve::new();
        for a in [0.5, 0.96, 0.3] {
            c.record(a);
        }
        assert_eq!(c.converged_at(0.95, 1), c.first_reaching(0.95));
    }

    #[test]
    fn short_curve_cannot_converge() {
        let mut c = LearningCurve::new();
        c.record(1.0);
        assert_eq!(c.converged_at(0.9, 2), None);
    }

    #[test]
    #[should_panic(expected = "accuracy must be in [0, 1]")]
    fn bad_accuracy_rejected() {
        LearningCurve::new().record(1.5);
    }
}
