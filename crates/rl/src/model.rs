//! Empirical MDP estimation (certainty equivalence).
//!
//! Count what you saw, normalise, and pretend the estimate is the truth:
//! the *certainty-equivalence* approach. For small tabular problems like
//! CoReDA's it is the most sample-efficient learner there is — every
//! observation improves the model everywhere — at the price of storing
//! counts and re-solving. Pair with [`solve::value_iteration`].
//!
//! [`solve::value_iteration`]: crate::solve::value_iteration

use std::collections::HashMap;

use crate::solve::TabularMdp;
use crate::space::{ActionId, ProblemShape, StateId};

/// Transition counts and reward sums for one `(state, action)` pair.
#[derive(Debug, Clone, Default)]
struct PairStats {
    /// Next-state counts (`None` = terminal).
    counts: HashMap<Option<StateId>, u64>,
    /// Reward sums per next state.
    reward_sums: HashMap<Option<StateId>, f64>,
    total: u64,
}

/// An empirical MDP built from observed transitions.
///
/// # Examples
///
/// ```
/// use coreda_rl::model::EmpiricalMdp;
/// use coreda_rl::solve::value_iteration;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let mut model = EmpiricalMdp::new(ProblemShape::new(2, 2));
/// model.record(StateId::new(0), ActionId::new(1), 0.0, Some(StateId::new(1)));
/// model.record(StateId::new(1), ActionId::new(0), 10.0, None);
/// let (q, _) = value_iteration(&model.to_mdp(), 0.9, 1e-9, 100);
/// assert_eq!(q.greedy_action(StateId::new(0)), ActionId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct EmpiricalMdp {
    shape: ProblemShape,
    stats: HashMap<(StateId, ActionId), PairStats>,
    observations: u64,
}

impl EmpiricalMdp {
    /// An empty model over `shape`.
    #[must_use]
    pub fn new(shape: ProblemShape) -> Self {
        EmpiricalMdp { shape, stats: HashMap::new(), observations: 0 }
    }

    /// The model's dimensions.
    #[must_use]
    pub const fn shape(&self) -> ProblemShape {
        self.shape
    }

    /// Total transitions recorded.
    #[must_use]
    pub const fn observations(&self) -> u64 {
        self.observations
    }

    /// Records one observed transition (`next = None` for termination).
    ///
    /// # Panics
    ///
    /// Panics if `s`, `a` or `next` is out of range.
    pub fn record(&mut self, s: StateId, a: ActionId, reward: f64, next: Option<StateId>) {
        assert!(self.shape.contains_state(s), "state {s} out of range");
        assert!(self.shape.contains_action(a), "action {a} out of range");
        if let Some(n) = next {
            assert!(self.shape.contains_state(n), "next state {n} out of range");
        }
        let pair = self.stats.entry((s, a)).or_default();
        *pair.counts.entry(next).or_insert(0) += 1;
        *pair.reward_sums.entry(next).or_insert(0.0) += reward;
        pair.total += 1;
        self.observations += 1;
    }

    /// Times `(s, a)` has been observed.
    #[must_use]
    pub fn visits(&self, s: StateId, a: ActionId) -> u64 {
        self.stats.get(&(s, a)).map_or(0, |p| p.total)
    }

    /// The maximum-likelihood [`TabularMdp`]: transition probabilities are
    /// relative frequencies, rewards are per-outcome means. Unvisited
    /// pairs stay unspecified (terminate with zero reward), which is the
    /// pessimistic-but-safe completion for CoReDA's reward structure.
    #[must_use]
    pub fn to_mdp(&self) -> TabularMdp {
        let mut mdp = TabularMdp::new(self.shape);
        for (&(s, a), pair) in &self.stats {
            for (&next, &count) in &pair.counts {
                let probability = count as f64 / pair.total as f64;
                let mean_reward = pair.reward_sums[&next] / count as f64;
                mdp.add(s, a, probability, next, mean_reward);
            }
        }
        mdp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::value_iteration;
    use coreda_des::rng::SimRng;

    #[test]
    fn frequencies_become_probabilities() {
        let mut m = EmpiricalMdp::new(ProblemShape::new(2, 1));
        let (s, a) = (StateId::new(0), ActionId::new(0));
        for _ in 0..3 {
            m.record(s, a, 1.0, Some(StateId::new(1)));
        }
        m.record(s, a, 5.0, None);
        assert_eq!(m.visits(s, a), 4);
        let mdp = m.to_mdp();
        assert!(mdp.validate().is_ok());
        let outs = mdp.outcomes(s, a);
        assert_eq!(outs.len(), 2);
        let to_one = outs.iter().find(|o| o.next == Some(StateId::new(1))).unwrap();
        assert!((to_one.probability - 0.75).abs() < 1e-12);
        assert!((to_one.reward - 1.0).abs() < 1e-12);
        let terminal = outs.iter().find(|o| o.next.is_none()).unwrap();
        assert!((terminal.probability - 0.25).abs() < 1e-12);
        assert!((terminal.reward - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rewards_are_averaged_per_outcome() {
        let mut m = EmpiricalMdp::new(ProblemShape::new(1, 1));
        m.record(StateId::new(0), ActionId::new(0), 2.0, None);
        m.record(StateId::new(0), ActionId::new(0), 4.0, None);
        let mdp = m.to_mdp();
        let out = &mdp.outcomes(StateId::new(0), ActionId::new(0))[0];
        assert!((out.reward - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_model_solves_to_zero() {
        let m = EmpiricalMdp::new(ProblemShape::new(3, 2));
        let (q, _) = value_iteration(&m.to_mdp(), 0.9, 1e-9, 10);
        assert_eq!(q.max_abs_value(), 0.0);
    }

    #[test]
    fn recovers_a_stochastic_chain_from_samples() {
        // True model: action 1 advances w.p. 0.8, stays w.p. 0.2.
        let mut rng = SimRng::seed_from(5);
        let mut m = EmpiricalMdp::new(ProblemShape::new(3, 2));
        for _ in 0..4000 {
            let s = StateId::new(rng.uniform_usize(0, 3));
            let a = ActionId::new(rng.uniform_usize(0, 2));
            if a.index() == 1 {
                if rng.chance(0.8) {
                    if s.index() == 2 {
                        m.record(s, a, 10.0, None);
                    } else {
                        m.record(s, a, 0.0, Some(StateId::new(s.index() + 1)));
                    }
                } else {
                    m.record(s, a, 0.0, Some(s));
                }
            } else {
                m.record(s, a, -1.0, Some(s));
            }
        }
        let (q, _) = value_iteration(&m.to_mdp(), 0.9, 1e-9, 10_000);
        for s in 0..3 {
            assert_eq!(
                q.greedy_action(StateId::new(s)),
                ActionId::new(1),
                "state {s} should advance"
            );
        }
    }
}
