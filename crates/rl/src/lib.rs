//! # coreda-rl — a tabular reinforcement-learning toolbox
//!
//! The CoReDA paper implements its planning subsystem with "the TD(λ)
//! Q-Learning algorithm in Reinforcement Learning Toolbox 2.0", a C++
//! library that is no longer practical to build. This crate is a
//! from-scratch replacement covering the slice of that toolbox CoReDA
//! needs — and the neighbours required for the ablation studies:
//!
//! - [`algo::WatkinsQLambda`] — TD(λ) Q-learning, the paper's algorithm;
//! - [`algo::QLearning`], [`algo::Sarsa`], [`algo::ExpectedSarsa`] —
//!   one-step baselines (λ-sweep and algorithm ablations);
//! - [`algo::DynaQ`] — model-based acceleration for the paper's
//!   "fast learning" future-work item;
//! - [`policy`] — ε-greedy / softmax / greedy action selection with decay
//!   [`schedule`]s;
//! - [`convergence`] — the "converging condition" read-outs behind the
//!   paper's Figure 4 learning curves;
//! - [`env`](mod@env) / [`envs`] — an episodic environment interface, an episode
//!   runner, and reference MDPs (chain, grid world, cliff walk) used by
//!   tests and benchmarks;
//! - [`solve`] — exact value/policy iteration over explicit models;
//! - [`replay`] — an experience replay buffer.
//!
//! # Examples
//!
//! Solve a small grid world with the paper's algorithm:
//!
//! ```
//! use coreda_des::rng::SimRng;
//! use coreda_rl::algo::{TdConfig, TdControl, WatkinsQLambda};
//! use coreda_rl::env::{Environment, EpisodeRunner};
//! use coreda_rl::envs::GridWorld;
//! use coreda_rl::policy::EpsilonGreedy;
//! use coreda_rl::schedule::Schedule;
//! use coreda_rl::traces::TraceKind;
//!
//! let mut env = GridWorld::new(4, 4);
//! let cfg = TdConfig::new(Schedule::constant(0.2), 0.95);
//! let mut learner = WatkinsQLambda::new(env.shape(), cfg, 0.8, TraceKind::Replacing);
//! let policy = EpsilonGreedy::new(Schedule::exponential(0.4, 0.99, 0.05));
//! let mut runner = EpisodeRunner::new(500);
//! let mut rng = SimRng::seed_from(7);
//! for _ in 0..300 {
//!     runner.run_episode(&mut env, &mut learner, &policy, &mut rng);
//! }
//! let eval = runner.evaluate_episode(&mut env, &learner, &mut rng);
//! assert!(eval.terminated);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algo;
pub mod convergence;
pub mod env;
pub mod envs;
pub mod model;
pub mod policy;
pub mod qtable;
pub mod replay;
pub mod schedule;
pub mod solve;
pub mod space;
pub mod traces;

pub use algo::{DoubleQLearning, DynaQ, ExpectedSarsa, Outcome, QLearning, Sarsa, TdConfig, TdControl, WatkinsQLambda};
pub use env::{EnvStep, Environment, EpisodeRunner, EpisodeStats};
pub use model::EmpiricalMdp;
pub use policy::{EpsilonGreedy, Greedy, Policy, Softmax};
pub use qtable::QTable;
pub use replay::{ReplayBuffer, Transition};
pub use schedule::Schedule;
pub use solve::{policy_iteration, value_iteration, TabularMdp, TransitionOutcome};
pub use space::{ActionId, ProblemShape, StateId};
pub use traces::{EligibilityTraces, TraceKind};
