//! Action-selection policies.

use coreda_des::rng::SimRng;

use crate::qtable::QTable;
use crate::schedule::Schedule;
use crate::space::{ActionId, StateId};

/// Selects actions given the current value estimates.
///
/// `step` is a monotone counter (CoReDA uses the episode index) consumed by
/// schedules inside the policy; the policy itself is stateless so it can be
/// shared across learners.
pub trait Policy: std::fmt::Debug {
    /// Chooses an action for state `s`.
    fn select(&self, q: &QTable, s: StateId, step: u64, rng: &mut SimRng) -> ActionId;

    /// The probability of taking each action in `s` (a simplex over the
    /// action space). Used by Expected SARSA and by tests.
    fn probabilities(&self, q: &QTable, s: StateId, step: u64) -> Vec<f64>;
}

/// Always the greedy action (pure exploitation).
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_rl::policy::{Greedy, Policy};
/// use coreda_rl::qtable::QTable;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let mut q = QTable::new(ProblemShape::new(1, 2));
/// q.set(StateId::new(0), ActionId::new(1), 1.0);
/// let mut rng = SimRng::seed_from(0);
/// assert_eq!(Greedy.select(&q, StateId::new(0), 0, &mut rng), ActionId::new(1));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl Policy for Greedy {
    fn select(&self, q: &QTable, s: StateId, _step: u64, _rng: &mut SimRng) -> ActionId {
        q.greedy_action(s)
    }

    fn probabilities(&self, q: &QTable, s: StateId, _step: u64) -> Vec<f64> {
        let mut p = vec![0.0; q.shape().actions()];
        p[q.greedy_action(s).index()] = 1.0;
        p
    }
}

/// ε-greedy: the greedy action with probability `1 − ε`, otherwise a
/// uniformly random one. `ε` follows a [`Schedule`].
#[derive(Debug, Clone, Copy)]
pub struct EpsilonGreedy {
    epsilon: Schedule,
}

impl EpsilonGreedy {
    /// Creates a policy whose exploration rate follows `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule can produce values outside `[0, 1]` at step 0.
    #[must_use]
    pub fn new(epsilon: Schedule) -> Self {
        let e0 = epsilon.value(0);
        assert!((0.0..=1.0).contains(&e0), "epsilon must start within [0, 1], got {e0}");
        EpsilonGreedy { epsilon }
    }

    /// A fixed exploration rate.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]`.
    #[must_use]
    pub fn constant(epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1], got {epsilon}");
        EpsilonGreedy { epsilon: Schedule::constant(epsilon) }
    }

    /// The exploration rate at `step`.
    #[must_use]
    pub fn epsilon_at(&self, step: u64) -> f64 {
        self.epsilon.value(step).clamp(0.0, 1.0)
    }
}

impl Policy for EpsilonGreedy {
    fn select(&self, q: &QTable, s: StateId, step: u64, rng: &mut SimRng) -> ActionId {
        let eps = self.epsilon_at(step);
        if eps > 0.0 && rng.chance(eps) {
            ActionId::new(rng.uniform_usize(0, q.shape().actions()))
        } else {
            q.greedy_action(s)
        }
    }

    fn probabilities(&self, q: &QTable, s: StateId, step: u64) -> Vec<f64> {
        let n = q.shape().actions();
        let eps = self.epsilon_at(step);
        let mut p = vec![eps / n as f64; n];
        p[q.greedy_action(s).index()] += 1.0 - eps;
        p
    }
}

/// Softmax (Boltzmann) exploration: actions are drawn proportionally to
/// `exp(Q / τ)`, with temperature `τ` on a [`Schedule`].
#[derive(Debug, Clone, Copy)]
pub struct Softmax {
    temperature: Schedule,
}

impl Softmax {
    /// Creates a policy whose temperature follows `temperature`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's value at step 0 is not strictly positive.
    #[must_use]
    pub fn new(temperature: Schedule) -> Self {
        assert!(temperature.value(0) > 0.0, "softmax temperature must be positive");
        Softmax { temperature }
    }

    /// A fixed temperature.
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not strictly positive.
    #[must_use]
    pub fn constant(temperature: f64) -> Self {
        assert!(temperature > 0.0, "softmax temperature must be positive");
        Softmax { temperature: Schedule::constant(temperature) }
    }
}

impl Policy for Softmax {
    fn select(&self, q: &QTable, s: StateId, step: u64, rng: &mut SimRng) -> ActionId {
        let p = self.probabilities(q, s, step);
        let draw = rng.uniform();
        let mut acc = 0.0;
        for (i, pi) in p.iter().enumerate() {
            acc += pi;
            if draw < acc {
                return ActionId::new(i);
            }
        }
        // Floating-point slack: fall back to the last action.
        ActionId::new(p.len() - 1)
    }

    fn probabilities(&self, q: &QTable, s: StateId, step: u64) -> Vec<f64> {
        let tau = self.temperature.value(step).max(1e-6);
        let row = q.row(s);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = row.iter().map(|v| ((v - max) / tau).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ProblemShape;

    fn table() -> QTable {
        let mut q = QTable::new(ProblemShape::new(2, 3));
        q.set(StateId::new(0), ActionId::new(2), 10.0);
        q.set(StateId::new(1), ActionId::new(0), 1.0);
        q
    }

    #[test]
    fn greedy_picks_best() {
        let q = table();
        let mut rng = SimRng::seed_from(1);
        assert_eq!(Greedy.select(&q, StateId::new(0), 0, &mut rng), ActionId::new(2));
        let p = Greedy.probabilities(&q, StateId::new(0), 0);
        assert_eq!(p, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let q = table();
        let pol = EpsilonGreedy::constant(0.0);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            assert_eq!(pol.select(&q, StateId::new(0), 0, &mut rng), ActionId::new(2));
        }
    }

    #[test]
    fn epsilon_one_is_uniformish() {
        let q = table();
        let pol = EpsilonGreedy::constant(1.0);
        let mut rng = SimRng::seed_from(3);
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[pol.select(&q, StateId::new(0), 0, &mut rng).index()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts {counts:?} not uniform");
        }
    }

    #[test]
    fn epsilon_probabilities_sum_to_one() {
        let q = table();
        let pol = EpsilonGreedy::constant(0.3);
        let p = pol.probabilities(&q, StateId::new(0), 0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[2] - (0.7 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn epsilon_schedule_decays() {
        let pol = EpsilonGreedy::new(Schedule::exponential(1.0, 0.5, 0.0));
        assert_eq!(pol.epsilon_at(0), 1.0);
        assert_eq!(pol.epsilon_at(1), 0.5);
    }

    #[test]
    fn softmax_prefers_high_values() {
        let q = table();
        let pol = Softmax::constant(1.0);
        let p = pol.probabilities(&q, StateId::new(0), 0);
        assert!(p[2] > p[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_high_temperature_flattens() {
        let q = table();
        let pol = Softmax::constant(1e6);
        let p = pol.probabilities(&q, StateId::new(0), 0);
        for pi in &p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_sampling_matches_probabilities() {
        let q = table();
        let pol = Softmax::constant(5.0);
        let p = pol.probabilities(&q, StateId::new(0), 0);
        let mut rng = SimRng::seed_from(7);
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[pol.select(&q, StateId::new(0), 0, &mut rng).index()] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let freq = *c as f64 / n as f64;
            assert!((freq - p[i]).abs() < 0.02, "action {i}: freq {freq} vs p {}", p[i]);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn bad_epsilon_rejected() {
        let _ = EpsilonGreedy::constant(1.2);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn bad_temperature_rejected() {
        let _ = Softmax::constant(0.0);
    }
}
