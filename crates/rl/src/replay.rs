//! Experience replay.
//!
//! CoReDA's recordings are precious — a user performs an ADL a handful of
//! times per day. A [`ReplayBuffer`] keeps the most recent transitions and
//! replays uniform mini-batches into any [`TdControl`] learner, squeezing
//! more updates out of the same lived experience (the same motivation as
//! [`DynaQ`](crate::algo::DynaQ), but model-free and exact).

use coreda_des::rng::SimRng;

use crate::algo::{Outcome, TdControl};
use crate::space::{ActionId, StateId};

/// One stored transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// State acted in.
    pub s: StateId,
    /// Action taken.
    pub a: ActionId,
    /// Reward received.
    pub reward: f64,
    /// What followed.
    pub outcome: Outcome,
}

/// A fixed-capacity ring buffer of transitions with uniform sampling.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_rl::algo::Outcome;
/// use coreda_rl::replay::{ReplayBuffer, Transition};
/// use coreda_rl::space::{ActionId, StateId};
///
/// let mut buf = ReplayBuffer::new(100);
/// buf.push(Transition {
///     s: StateId::new(0),
///     a: ActionId::new(1),
///     reward: 10.0,
///     outcome: Outcome::Terminal,
/// });
/// let mut rng = SimRng::seed_from(1);
/// assert_eq!(buf.sample(&mut rng).unwrap().reward, 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    write_at: usize,
    pushed: u64,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs capacity");
        ReplayBuffer { capacity, items: Vec::with_capacity(capacity), write_at: 0, pushed: 0 }
    }

    /// The buffer's capacity.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of transitions currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total transitions ever pushed (≥ [`ReplayBuffer::len`]).
    #[must_use]
    pub const fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Stores a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.write_at] = t;
        }
        self.write_at = (self.write_at + 1) % self.capacity;
        self.pushed += 1;
    }

    /// A uniformly random stored transition.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> Option<Transition> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items[rng.uniform_usize(0, self.items.len())])
        }
    }

    /// Replays `batch` uniformly sampled transitions into `learner`.
    /// Returns the number of updates applied (0 when empty).
    pub fn replay_into(
        &self,
        learner: &mut dyn TdControl,
        batch: usize,
        rng: &mut SimRng,
    ) -> usize {
        if self.items.is_empty() {
            return 0;
        }
        for _ in 0..batch {
            let t = self.items[rng.uniform_usize(0, self.items.len())];
            learner.observe(t.s, t.a, t.reward, t.outcome);
        }
        batch
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.items.clear();
        self.write_at = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{QLearning, TdConfig};
    use crate::schedule::Schedule;
    use crate::space::ProblemShape;

    fn t(s: usize, reward: f64) -> Transition {
        Transition {
            s: StateId::new(s),
            a: ActionId::new(0),
            reward,
            outcome: Outcome::Terminal,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(0, f64::from(i)));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.pushed(), 5);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..50 {
            let r = buf.sample(&mut rng).unwrap().reward;
            assert!(r >= 2.0, "rewards 0 and 1 must have been evicted, saw {r}");
        }
    }

    #[test]
    fn empty_buffer_is_harmless() {
        let buf = ReplayBuffer::new(4);
        let mut rng = SimRng::seed_from(1);
        assert!(buf.sample(&mut rng).is_none());
        let mut learner =
            QLearning::new(ProblemShape::new(1, 1), TdConfig::new(Schedule::constant(0.5), 0.9));
        let mut buf2 = ReplayBuffer::new(4);
        assert_eq!(buf2.replay_into(&mut learner, 10, &mut rng), 0);
        buf2.clear();
        assert!(buf2.is_empty());
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..4 {
            buf.push(t(i, f64::from(i as u8)));
        }
        let mut rng = SimRng::seed_from(2);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[buf.sample(&mut rng).unwrap().s.index()] += 1;
        }
        for c in counts {
            assert!((1700..2300).contains(&c), "non-uniform sampling: {counts:?}");
        }
    }

    #[test]
    fn replay_accelerates_value_propagation() {
        // One real observation, many replays: the estimate approaches the
        // target far faster than a single update would.
        let cfg = TdConfig::new(Schedule::constant(0.2), 0.9);
        let mut learner = QLearning::new(ProblemShape::new(1, 1), cfg);
        let mut buf = ReplayBuffer::new(16);
        buf.push(t(0, 10.0));
        let mut rng = SimRng::seed_from(3);
        buf.replay_into(&mut learner, 40, &mut rng);
        let v = learner.q().value(StateId::new(0), ActionId::new(0));
        assert!(v > 9.9, "40 replayed updates should converge: {v}");
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
