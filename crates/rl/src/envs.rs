//! Reference environments for tests, benchmarks and examples.
//!
//! These are not part of CoReDA's domain; they are small, well-understood
//! MDPs used to validate the learners and to benchmark update throughput.

use coreda_des::rng::SimRng;

use crate::env::{EnvStep, Environment};
use crate::space::{ActionId, ProblemShape, StateId};

/// A deterministic corridor of `n` states.
///
/// - Action 0: stay put, reward −0.1 (a do-nothing trap for greedy
///   zero-initialised policies).
/// - Action 1: move right, reward 0; entering the last state ends the
///   episode with reward +10.
///
/// Optimal policy: always action 1; optimal return is exactly 10.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_rl::env::Environment;
/// use coreda_rl::envs::ChainEnv;
/// use coreda_rl::space::ActionId;
///
/// let mut env = ChainEnv::new(3);
/// let mut rng = SimRng::seed_from(0);
/// let s0 = env.reset(&mut rng);
/// assert_eq!(s0.index(), 0);
/// let step = env.step(ActionId::new(1), &mut rng);
/// assert_eq!(step.reward, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ChainEnv {
    len: usize,
    pos: usize,
}

impl ChainEnv {
    /// Action index for "stay put".
    pub const STAY: ActionId = ActionId::new(0);
    /// Action index for "move right".
    pub const FORWARD: ActionId = ActionId::new(1);

    /// Creates a chain of `len` states.
    ///
    /// # Panics
    ///
    /// Panics if `len < 2`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(len >= 2, "chain needs at least two states");
        ChainEnv { len, pos: 0 }
    }
}

impl Environment for ChainEnv {
    fn shape(&self) -> ProblemShape {
        ProblemShape::new(self.len, 2)
    }

    fn reset(&mut self, _rng: &mut SimRng) -> StateId {
        self.pos = 0;
        StateId::new(0)
    }

    fn step(&mut self, action: ActionId, _rng: &mut SimRng) -> EnvStep {
        if action == Self::FORWARD {
            self.pos += 1;
            if self.pos == self.len - 1 {
                EnvStep { reward: 10.0, next: None }
            } else {
                EnvStep { reward: 0.0, next: Some(StateId::new(self.pos)) }
            }
        } else {
            EnvStep { reward: -0.1, next: Some(StateId::new(self.pos)) }
        }
    }
}

/// A `width × height` grid world with a goal in the bottom-right corner
/// and optional slip noise.
///
/// Actions: 0 = up, 1 = right, 2 = down, 3 = left. Moving into a wall
/// stays put. Each step costs −1; reaching the goal ends the episode with
/// +20. With probability `slip`, the executed action is replaced by a
/// uniformly random one (stochasticity for the robustness tests).
#[derive(Debug, Clone)]
pub struct GridWorld {
    width: usize,
    height: usize,
    slip: f64,
    pos: (usize, usize),
}

impl GridWorld {
    /// Creates a deterministic grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the grid is 1×1.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        Self::with_slip(width, height, 0.0)
    }

    /// Creates a grid where each action is replaced by a random one with
    /// probability `slip`.
    ///
    /// # Panics
    ///
    /// Panics if `slip` is not in `[0, 1]`, either dimension is zero, or
    /// the grid is 1×1.
    #[must_use]
    pub fn with_slip(width: usize, height: usize, slip: f64) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert!(width * height > 1, "grid must have more than one cell");
        assert!((0.0..=1.0).contains(&slip), "slip must be in [0, 1]");
        GridWorld { width, height, slip, pos: (0, 0) }
    }

    fn state_of(&self, (x, y): (usize, usize)) -> StateId {
        StateId::new(y * self.width + x)
    }

    fn goal(&self) -> (usize, usize) {
        (self.width - 1, self.height - 1)
    }

    /// The number of steps an optimal policy needs from the start.
    #[must_use]
    pub fn optimal_steps(&self) -> usize {
        (self.width - 1) + (self.height - 1)
    }
}

impl Environment for GridWorld {
    fn shape(&self) -> ProblemShape {
        ProblemShape::new(self.width * self.height, 4)
    }

    fn reset(&mut self, _rng: &mut SimRng) -> StateId {
        self.pos = (0, 0);
        self.state_of(self.pos)
    }

    fn step(&mut self, action: ActionId, rng: &mut SimRng) -> EnvStep {
        let a = if self.slip > 0.0 && rng.chance(self.slip) {
            rng.uniform_usize(0, 4)
        } else {
            action.index()
        };
        let (x, y) = self.pos;
        self.pos = match a {
            0 => (x, y.saturating_sub(1)),
            1 => ((x + 1).min(self.width - 1), y),
            2 => (x, (y + 1).min(self.height - 1)),
            3 => (x.saturating_sub(1), y),
            _ => unreachable!("actions are 0..4"),
        };
        if self.pos == self.goal() {
            EnvStep { reward: 20.0, next: None }
        } else {
            EnvStep { reward: -1.0, next: Some(self.state_of(self.pos)) }
        }
    }
}

/// Sutton & Barto's cliff walk (Example 6.6): a 12×4 grid whose bottom
/// edge between start and goal is a cliff. Stepping off costs −100 and
/// teleports back to the start; every other step costs −1.
///
/// The classic result: Q-learning learns the *optimal* path hugging the
/// cliff, while SARSA (which accounts for its own exploration) learns the
/// safer path one row up — and collects more reward per episode while
/// still exploring.
#[derive(Debug, Clone)]
pub struct CliffWalk {
    pos: (usize, usize),
}

impl CliffWalk {
    /// Grid width.
    pub const WIDTH: usize = 12;
    /// Grid height (row 0 is the top, row 3 holds start/cliff/goal).
    pub const HEIGHT: usize = 4;

    /// Creates the environment at the start cell.
    #[must_use]
    pub fn new() -> Self {
        CliffWalk { pos: (0, Self::HEIGHT - 1) }
    }

    fn state_of(&self, (x, y): (usize, usize)) -> StateId {
        StateId::new(y * Self::WIDTH + x)
    }
}

impl Default for CliffWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for CliffWalk {
    fn shape(&self) -> ProblemShape {
        ProblemShape::new(Self::WIDTH * Self::HEIGHT, 4)
    }

    fn reset(&mut self, _rng: &mut SimRng) -> StateId {
        self.pos = (0, Self::HEIGHT - 1);
        self.state_of(self.pos)
    }

    fn step(&mut self, action: ActionId, _rng: &mut SimRng) -> EnvStep {
        let (x, y) = self.pos;
        let next = match action.index() {
            0 => (x, y.saturating_sub(1)),
            1 => ((x + 1).min(Self::WIDTH - 1), y),
            2 => (x, (y + 1).min(Self::HEIGHT - 1)),
            3 => (x.saturating_sub(1), y),
            _ => unreachable!("actions are 0..4"),
        };
        let bottom = Self::HEIGHT - 1;
        if next.1 == bottom && next.0 > 0 && next.0 < Self::WIDTH - 1 {
            // Off the cliff: big penalty, back to start.
            self.pos = (0, bottom);
            return EnvStep { reward: -100.0, next: Some(self.state_of(self.pos)) };
        }
        self.pos = next;
        if next == (Self::WIDTH - 1, bottom) {
            EnvStep { reward: -1.0, next: None }
        } else {
            EnvStep { reward: -1.0, next: Some(self.state_of(next)) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{TdConfig, WatkinsQLambda};
    use crate::env::EpisodeRunner;
    use crate::policy::EpsilonGreedy;
    use crate::schedule::Schedule;
    use crate::traces::TraceKind;

    #[test]
    fn chain_forward_reaches_goal() {
        let mut env = ChainEnv::new(4);
        let mut rng = SimRng::seed_from(0);
        env.reset(&mut rng);
        assert_eq!(env.step(ChainEnv::FORWARD, &mut rng).next, Some(StateId::new(1)));
        assert_eq!(env.step(ChainEnv::FORWARD, &mut rng).next, Some(StateId::new(2)));
        let last = env.step(ChainEnv::FORWARD, &mut rng);
        assert_eq!(last.next, None);
        assert_eq!(last.reward, 10.0);
    }

    #[test]
    fn chain_stay_loops_with_penalty() {
        let mut env = ChainEnv::new(3);
        let mut rng = SimRng::seed_from(0);
        let s0 = env.reset(&mut rng);
        let step = env.step(ChainEnv::STAY, &mut rng);
        assert_eq!(step.next, Some(s0));
        assert!(step.reward < 0.0);
    }

    #[test]
    fn gridworld_walls_block() {
        let mut env = GridWorld::new(3, 3);
        let mut rng = SimRng::seed_from(0);
        let s0 = env.reset(&mut rng);
        // Up and left from the origin are walls.
        assert_eq!(env.step(ActionId::new(0), &mut rng).next, Some(s0));
        assert_eq!(env.step(ActionId::new(3), &mut rng).next, Some(s0));
    }

    #[test]
    fn gridworld_goal_terminates() {
        let mut env = GridWorld::new(2, 2);
        let mut rng = SimRng::seed_from(0);
        env.reset(&mut rng);
        env.step(ActionId::new(1), &mut rng);
        let last = env.step(ActionId::new(2), &mut rng);
        assert_eq!(last.next, None);
        assert_eq!(last.reward, 20.0);
    }

    #[test]
    fn q_lambda_solves_gridworld() {
        let mut env = GridWorld::new(4, 4);
        let cfg = TdConfig::new(Schedule::constant(0.2), 0.95);
        let mut learner = WatkinsQLambda::new(env.shape(), cfg, 0.8, TraceKind::Replacing);
        let policy = EpsilonGreedy::new(Schedule::exponential(0.4, 0.99, 0.05));
        let mut runner = EpisodeRunner::new(500);
        let mut rng = SimRng::seed_from(17);
        for _ in 0..400 {
            runner.run_episode(&mut env, &mut learner, &policy, &mut rng);
        }
        let eval = runner.evaluate_episode(&mut env, &learner, &mut rng);
        assert!(eval.terminated, "greedy policy should reach the goal");
        assert_eq!(eval.steps, env.optimal_steps(), "greedy path should be optimal");
    }

    #[test]
    fn slippery_gridworld_still_learnable() {
        let mut env = GridWorld::with_slip(3, 3, 0.1);
        let cfg = TdConfig::new(Schedule::constant(0.2), 0.95);
        let mut learner = WatkinsQLambda::new(env.shape(), cfg, 0.5, TraceKind::Replacing);
        let policy = EpsilonGreedy::constant(0.15);
        let mut runner = EpisodeRunner::new(500);
        let mut rng = SimRng::seed_from(23);
        for _ in 0..600 {
            runner.run_episode(&mut env, &mut learner, &policy, &mut rng);
        }
        // Average greedy return over a few evaluation episodes should be
        // close to optimal (4 steps → 20 − 3 = 17 deterministic).
        let mean: f64 = (0..20)
            .map(|_| runner.evaluate_episode(&mut env, &learner, &mut rng).total_reward)
            .sum::<f64>()
            / 20.0;
        assert!(mean > 10.0, "mean greedy return {mean} too low");
    }

    #[test]
    #[should_panic(expected = "chain needs at least two states")]
    fn tiny_chain_rejected() {
        let _ = ChainEnv::new(1);
    }

    #[test]
    fn cliff_fall_resets_to_start() {
        let mut env = CliffWalk::new();
        let mut rng = SimRng::seed_from(0);
        let start = env.reset(&mut rng);
        // Step right from the start walks straight off the cliff.
        let step = env.step(ActionId::new(1), &mut rng);
        assert_eq!(step.reward, -100.0);
        assert_eq!(step.next, Some(start));
    }

    #[test]
    fn optimal_cliff_path_is_13_steps() {
        // Up, 11 × right, down.
        let mut env = CliffWalk::new();
        let mut rng = SimRng::seed_from(0);
        env.reset(&mut rng);
        let mut steps = 0;
        let _ = env.step(ActionId::new(0), &mut rng);
        steps += 1;
        for _ in 0..11 {
            let _ = env.step(ActionId::new(1), &mut rng);
            steps += 1;
        }
        let last = env.step(ActionId::new(2), &mut rng);
        steps += 1;
        assert_eq!(last.next, None, "should have reached the goal");
        assert_eq!(steps, 13);
    }

    /// The textbook result: under continued ε-greedy exploration, SARSA's
    /// *online* return beats Q-learning's (Q-learning keeps walking the
    /// cliff edge and keeps falling off while exploring), even though
    /// Q-learning's greedy policy is the shorter path.
    #[test]
    fn sarsa_outperforms_q_learning_online() {
        use crate::algo::{QLearning, Sarsa};
        let cfg = TdConfig::new(Schedule::constant(0.5), 1.0);
        let policy = EpsilonGreedy::constant(0.1);
        let mut rng = SimRng::seed_from(33);

        let run = |learner: &mut dyn crate::algo::TdControl,
                   rng: &mut SimRng| {
            let mut env = CliffWalk::new();
            let mut runner = EpisodeRunner::new(500);
            let mut last_100 = 0.0;
            for ep in 0..500 {
                let stats = runner.run_episode(&mut env, learner, &policy, rng);
                if ep >= 400 {
                    last_100 += stats.total_reward;
                }
            }
            last_100 / 100.0
        };

        let mut sarsa = Sarsa::new(CliffWalk::new().shape(), cfg);
        let sarsa_return = run(&mut sarsa, &mut rng);
        let mut ql = QLearning::new(CliffWalk::new().shape(), cfg);
        let ql_return = run(&mut ql, &mut rng);
        assert!(
            sarsa_return > ql_return,
            "SARSA should earn more online: {sarsa_return:.1} vs {ql_return:.1}"
        );
        // And both are far better than random flailing.
        assert!(sarsa_return > -60.0, "SARSA online return {sarsa_return:.1}");
    }
}
