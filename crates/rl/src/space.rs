//! Discrete state and action spaces.
//!
//! All CoReDA learning problems are small and tabular (the planning
//! subsystem's state is a pair of step IDs, its action a prompt), so states
//! and actions are dense indices. The newtypes keep them from being mixed
//! up with each other or with raw `usize` arithmetic.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a state in a discrete state space.
///
/// # Examples
///
/// ```
/// use coreda_rl::space::StateId;
///
/// let s = StateId::new(3);
/// assert_eq!(s.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(usize);

impl StateId {
    /// Wraps a raw state index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        StateId(index)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Index of an action in a discrete action space.
///
/// # Examples
///
/// ```
/// use coreda_rl::space::ActionId;
///
/// let a = ActionId::new(1);
/// assert_eq!(a.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionId(usize);

impl ActionId {
    /// Wraps a raw action index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ActionId(index)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The dimensions of a tabular learning problem.
///
/// # Examples
///
/// ```
/// use coreda_rl::space::ProblemShape;
///
/// let shape = ProblemShape::new(25, 10);
/// assert_eq!(shape.states(), 25);
/// assert_eq!(shape.actions(), 10);
/// assert_eq!(shape.table_len(), 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemShape {
    states: usize,
    actions: usize,
}

impl ProblemShape {
    /// Creates a shape with `states` × `actions` entries.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(states: usize, actions: usize) -> Self {
        assert!(states > 0, "state space must be non-empty");
        assert!(actions > 0, "action space must be non-empty");
        ProblemShape { states, actions }
    }

    /// Number of states.
    #[must_use]
    pub const fn states(self) -> usize {
        self.states
    }

    /// Number of actions.
    #[must_use]
    pub const fn actions(self) -> usize {
        self.actions
    }

    /// Number of `(state, action)` pairs.
    #[must_use]
    pub const fn table_len(self) -> usize {
        self.states * self.actions
    }

    /// Whether `s` is a valid state for this shape.
    #[must_use]
    pub const fn contains_state(self, s: StateId) -> bool {
        s.index() < self.states
    }

    /// Whether `a` is a valid action for this shape.
    #[must_use]
    pub const fn contains_action(self, a: ActionId) -> bool {
        a.index() < self.actions
    }

    /// Iterator over every state.
    pub fn state_ids(self) -> impl Iterator<Item = StateId> {
        (0..self.states).map(StateId::new)
    }

    /// Iterator over every action.
    pub fn action_ids(self) -> impl Iterator<Item = ActionId> {
        (0..self.actions).map(ActionId::new)
    }
}

impl fmt::Display for ProblemShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.states, self.actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        assert_eq!(StateId::new(7).index(), 7);
        assert_eq!(ActionId::new(0).index(), 0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(StateId::new(4).to_string(), "s4");
        assert_eq!(ActionId::new(2).to_string(), "a2");
        assert_eq!(ProblemShape::new(3, 2).to_string(), "3x2");
    }

    #[test]
    fn shape_bounds() {
        let shape = ProblemShape::new(5, 3);
        assert!(shape.contains_state(StateId::new(4)));
        assert!(!shape.contains_state(StateId::new(5)));
        assert!(shape.contains_action(ActionId::new(2)));
        assert!(!shape.contains_action(ActionId::new(3)));
    }

    #[test]
    fn shape_iterators_cover_space() {
        let shape = ProblemShape::new(4, 2);
        assert_eq!(shape.state_ids().count(), 4);
        assert_eq!(shape.action_ids().count(), 2);
        assert_eq!(shape.state_ids().last(), Some(StateId::new(3)));
    }

    #[test]
    #[should_panic(expected = "state space must be non-empty")]
    fn empty_state_space_rejected() {
        let _ = ProblemShape::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "action space must be non-empty")]
    fn empty_action_space_rejected() {
        let _ = ProblemShape::new(1, 0);
    }
}
