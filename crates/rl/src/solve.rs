//! Exact solvers for explicitly specified MDPs.
//!
//! When the model is known (as in the Boger et al. planning baseline the
//! paper cites), there is no reason to learn: value iteration converges
//! to the optimal action values directly. [`TabularMdp`] is an explicit
//! sparse model; [`value_iteration`] and [`policy_iteration`] solve it.

use std::collections::HashMap;

use crate::qtable::QTable;
use crate::space::{ActionId, ProblemShape, StateId};

/// One probabilistic outcome of taking an action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionOutcome {
    /// Probability of this outcome.
    pub probability: f64,
    /// Next state, or `None` for termination.
    pub next: Option<StateId>,
    /// Immediate reward.
    pub reward: f64,
}

/// An explicit sparse tabular MDP.
///
/// Unspecified `(state, action)` pairs default to "terminate with zero
/// reward", which keeps small models concise.
///
/// # Examples
///
/// ```
/// use coreda_rl::solve::{value_iteration, TabularMdp};
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// // Two states; action 1 moves 0 → 1; in state 1 action 0 wins +10.
/// let mut mdp = TabularMdp::new(ProblemShape::new(2, 2));
/// mdp.add(StateId::new(0), ActionId::new(1), 1.0, Some(StateId::new(1)), 0.0);
/// mdp.add(StateId::new(1), ActionId::new(0), 1.0, None, 10.0);
/// let (q, _iters) = value_iteration(&mdp, 0.9, 1e-9, 1_000);
/// assert_eq!(q.greedy_action(StateId::new(0)), ActionId::new(1));
/// assert!((q.value(StateId::new(0), ActionId::new(1)) - 9.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TabularMdp {
    shape: ProblemShape,
    transitions: HashMap<(StateId, ActionId), Vec<TransitionOutcome>>,
}

impl TabularMdp {
    /// An empty model over `shape`.
    #[must_use]
    pub fn new(shape: ProblemShape) -> Self {
        TabularMdp { shape, transitions: HashMap::new() }
    }

    /// The model's dimensions.
    #[must_use]
    pub const fn shape(&self) -> ProblemShape {
        self.shape
    }

    /// Adds one outcome to `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if `s`, `a` or `next` is out of range, or `probability` is
    /// not in `(0, 1]`.
    pub fn add(
        &mut self,
        s: StateId,
        a: ActionId,
        probability: f64,
        next: Option<StateId>,
        reward: f64,
    ) {
        assert!(self.shape.contains_state(s), "state {s} out of range");
        assert!(self.shape.contains_action(a), "action {a} out of range");
        if let Some(n) = next {
            assert!(self.shape.contains_state(n), "next state {n} out of range");
        }
        assert!(
            probability > 0.0 && probability <= 1.0,
            "probability must be in (0, 1], got {probability}"
        );
        self.transitions
            .entry((s, a))
            .or_default()
            .push(TransitionOutcome { probability, next, reward });
    }

    /// The outcomes of `(s, a)` (empty = terminate with zero reward).
    #[must_use]
    pub fn outcomes(&self, s: StateId, a: ActionId) -> &[TransitionOutcome] {
        self.transitions.get(&(s, a)).map_or(&[], Vec::as_slice)
    }

    /// Checks that every specified pair's probabilities sum to 1.
    ///
    /// # Errors
    ///
    /// Returns the offending pair and its probability sum.
    pub fn validate(&self) -> Result<(), ((StateId, ActionId), f64)> {
        for (&key, outs) in &self.transitions {
            let sum: f64 = outs.iter().map(|o| o.probability).sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err((key, sum));
            }
        }
        Ok(())
    }
}

/// Solves `mdp` by value iteration; returns the optimal action values and
/// the number of sweeps performed.
///
/// Stops when the largest Bellman update falls below `tolerance` or after
/// `max_sweeps`.
///
/// # Panics
///
/// Panics if `gamma` is not in `[0, 1)`, `tolerance` is not positive, or
/// the model fails [`TabularMdp::validate`].
#[must_use]
pub fn value_iteration(
    mdp: &TabularMdp,
    gamma: f64,
    tolerance: f64,
    max_sweeps: usize,
) -> (QTable, usize) {
    assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
    assert!(tolerance > 0.0, "tolerance must be positive");
    assert!(mdp.validate().is_ok(), "transition probabilities must sum to 1");
    let shape = mdp.shape();
    let mut q = QTable::new(shape);
    let mut sweeps = 0;
    while sweeps < max_sweeps {
        sweeps += 1;
        let mut delta = 0.0_f64;
        for s in shape.state_ids() {
            for a in shape.action_ids() {
                let target: f64 = mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| {
                        o.probability
                            * (o.reward + gamma * o.next.map_or(0.0, |n| q.max_value(n)))
                    })
                    .sum();
                delta = delta.max((target - q.value(s, a)).abs());
                q.set(s, a, target);
            }
        }
        if delta < tolerance {
            break;
        }
    }
    (q, sweeps)
}

/// Solves `mdp` by policy iteration; returns the optimal action values,
/// the greedy policy, and the number of policy-improvement rounds.
///
/// Policy evaluation is iterative (to `tolerance`), improvement is exact.
///
/// # Panics
///
/// Same conditions as [`value_iteration`].
#[must_use]
pub fn policy_iteration(
    mdp: &TabularMdp,
    gamma: f64,
    tolerance: f64,
) -> (QTable, Vec<ActionId>, usize) {
    assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
    assert!(tolerance > 0.0, "tolerance must be positive");
    assert!(mdp.validate().is_ok(), "transition probabilities must sum to 1");
    let shape = mdp.shape();
    let mut policy: Vec<ActionId> = vec![ActionId::new(0); shape.states()];
    let mut q = QTable::new(shape);
    let mut rounds = 0;
    loop {
        rounds += 1;
        // Evaluate the current policy.
        let mut v = vec![0.0_f64; shape.states()];
        loop {
            let mut delta = 0.0_f64;
            #[allow(clippy::needless_range_loop)]
            for s in shape.state_ids() {
                let a = policy[s.index()];
                let target: f64 = mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| {
                        o.probability * (o.reward + gamma * o.next.map_or(0.0, |n| v[n.index()]))
                    })
                    .sum();
                delta = delta.max((target - v[s.index()]).abs());
                v[s.index()] = target;
            }
            if delta < tolerance {
                break;
            }
        }
        // Improve.
        let mut stable = true;
        for s in shape.state_ids() {
            for a in shape.action_ids() {
                let target: f64 = mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| {
                        o.probability * (o.reward + gamma * o.next.map_or(0.0, |n| v[n.index()]))
                    })
                    .sum();
                q.set(s, a, target);
            }
            let best = q.greedy_action(s);
            if best != policy[s.index()] {
                policy[s.index()] = best;
                stable = false;
            }
        }
        if stable || rounds > shape.table_len() {
            break;
        }
    }
    (q, policy, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-state chain: action 1 advances (terminal reward 10), action 0
    /// self-loops with −1.
    fn chain() -> TabularMdp {
        let mut m = TabularMdp::new(ProblemShape::new(3, 2));
        for s in 0..3 {
            m.add(StateId::new(s), ActionId::new(0), 1.0, Some(StateId::new(s)), -1.0);
            let (next, r) =
                if s == 2 { (None, 10.0) } else { (Some(StateId::new(s + 1)), 0.0) };
            m.add(StateId::new(s), ActionId::new(1), 1.0, next, r);
        }
        m
    }

    #[test]
    fn value_iteration_solves_the_chain() {
        let (q, sweeps) = value_iteration(&chain(), 0.9, 1e-12, 10_000);
        for s in 0..3 {
            assert_eq!(q.greedy_action(StateId::new(s)), ActionId::new(1));
        }
        // Q*(s0, forward) = 0.9² · 10.
        assert!((q.value(StateId::new(0), ActionId::new(1)) - 8.1).abs() < 1e-9);
        assert!(sweeps >= 3);
    }

    #[test]
    fn policy_iteration_agrees_with_value_iteration() {
        let (qv, _) = value_iteration(&chain(), 0.9, 1e-12, 10_000);
        let (qp, policy, rounds) = policy_iteration(&chain(), 0.9, 1e-12);
        for (s, &chosen) in policy.iter().enumerate() {
            let sid = StateId::new(s);
            assert_eq!(chosen, qv.greedy_action(sid));
            for a in 0..2 {
                let aid = ActionId::new(a);
                assert!(
                    (qv.value(sid, aid) - qp.value(sid, aid)).abs() < 1e-6,
                    "Q mismatch at ({s}, {a})"
                );
            }
        }
        assert!(rounds <= 4, "tiny MDPs converge in a few rounds, took {rounds}");
    }

    #[test]
    fn stochastic_transitions_are_averaged() {
        // One state, one action: 50/50 terminal reward 0 or 10.
        let mut m = TabularMdp::new(ProblemShape::new(1, 1));
        m.add(StateId::new(0), ActionId::new(0), 0.5, None, 0.0);
        m.add(StateId::new(0), ActionId::new(0), 0.5, None, 10.0);
        let (q, _) = value_iteration(&m, 0.5, 1e-12, 100);
        assert!((q.value(StateId::new(0), ActionId::new(0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unspecified_pairs_terminate_with_zero() {
        let m = TabularMdp::new(ProblemShape::new(2, 2));
        let (q, sweeps) = value_iteration(&m, 0.9, 1e-12, 100);
        assert_eq!(q.max_abs_value(), 0.0);
        assert_eq!(sweeps, 1, "already converged");
    }

    #[test]
    fn validation_catches_bad_probabilities() {
        let mut m = TabularMdp::new(ProblemShape::new(1, 1));
        m.add(StateId::new(0), ActionId::new(0), 0.5, None, 0.0);
        let err = m.validate().unwrap_err();
        assert_eq!(err.0, (StateId::new(0), ActionId::new(0)));
        assert!((err.1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matches_q_learning_on_the_chain() {
        use crate::algo::{QLearning, TdConfig, TdControl};
        use crate::algo::Outcome;
        use crate::schedule::Schedule;
        use coreda_des::rng::SimRng;
        let (q_star, _) = value_iteration(&chain(), 0.9, 1e-12, 10_000);
        let mut learner =
            QLearning::new(ProblemShape::new(3, 2), TdConfig::new(Schedule::harmonic(1.0, 0.001), 0.9));
        let mut rng = SimRng::seed_from(1);
        let m = chain();
        for _ in 0..60_000 {
            let s = StateId::new(rng.uniform_usize(0, 3));
            let a = ActionId::new(rng.uniform_usize(0, 2));
            // Sample the model.
            let outs = m.outcomes(s, a);
            let draw = rng.uniform();
            let mut acc = 0.0;
            let mut chosen = outs[0];
            for &o in outs {
                acc += o.probability;
                if draw < acc {
                    chosen = o;
                    break;
                }
            }
            let outcome = match chosen.next {
                None => Outcome::Terminal,
                Some(n) => Outcome::Continue { next_state: n, next_action: ActionId::new(0) },
            };
            learner.observe(s, a, chosen.reward, outcome);
        }
        for s in 0..3 {
            for a in 0..2 {
                let (sid, aid) = (StateId::new(s), ActionId::new(a));
                assert!(
                    (learner.q().value(sid, aid) - q_star.value(sid, aid)).abs() < 0.5,
                    "Q-learning should approach Q* at ({s}, {a}): {} vs {}",
                    learner.q().value(sid, aid),
                    q_star.value(sid, aid)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "probabilities must sum to 1")]
    fn solver_rejects_invalid_models() {
        let mut m = TabularMdp::new(ProblemShape::new(1, 1));
        m.add(StateId::new(0), ActionId::new(0), 0.3, None, 0.0);
        let _ = value_iteration(&m, 0.9, 1e-9, 10);
    }
}
