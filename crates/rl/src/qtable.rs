//! Dense tabular action-value storage.

use serde::{Deserialize, Serialize};

use crate::space::{ActionId, ProblemShape, StateId};

/// A dense `states × actions` table of action values with per-pair visit
/// counts.
///
/// Greedy look-ups break ties toward the lowest action index, which keeps
/// learned policies deterministic under a fixed seed.
///
/// # Examples
///
/// ```
/// use coreda_rl::qtable::QTable;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let mut q = QTable::new(ProblemShape::new(2, 3));
/// q.set(StateId::new(0), ActionId::new(2), 5.0);
/// assert_eq!(q.greedy_action(StateId::new(0)), ActionId::new(2));
/// assert_eq!(q.max_value(StateId::new(0)), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    shape: ProblemShape,
    values: Vec<f64>,
    visits: Vec<u64>,
}

impl QTable {
    /// Creates a zero-initialised table for `shape`.
    #[must_use]
    pub fn new(shape: ProblemShape) -> Self {
        QTable {
            shape,
            values: vec![0.0; shape.table_len()],
            visits: vec![0; shape.table_len()],
        }
    }

    /// Creates a table with every entry set to `value` (optimistic
    /// initialisation encourages exploration).
    #[must_use]
    pub fn with_initial_value(shape: ProblemShape, value: f64) -> Self {
        QTable {
            shape,
            values: vec![value; shape.table_len()],
            visits: vec![0; shape.table_len()],
        }
    }

    /// The table's problem shape.
    #[must_use]
    pub const fn shape(&self) -> ProblemShape {
        self.shape
    }

    fn idx(&self, s: StateId, a: ActionId) -> usize {
        assert!(
            self.shape.contains_state(s),
            "state {s} out of range for shape {shape}",
            shape = self.shape
        );
        assert!(
            self.shape.contains_action(a),
            "action {a} out of range for shape {shape}",
            shape = self.shape
        );
        s.index() * self.shape.actions() + a.index()
    }

    /// The value of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range.
    #[must_use]
    pub fn value(&self, s: StateId, a: ActionId) -> f64 {
        self.values[self.idx(s, a)]
    }

    /// Overwrites the value of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range, or `value` is not finite.
    pub fn set(&mut self, s: StateId, a: ActionId, value: f64) {
        assert!(value.is_finite(), "Q-values must be finite, got {value}");
        let i = self.idx(s, a);
        self.values[i] = value;
    }

    /// Adds `delta` to the value of `(s, a)` and bumps its visit count.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range, or `delta` is not finite.
    pub fn nudge(&mut self, s: StateId, a: ActionId, delta: f64) {
        assert!(delta.is_finite(), "Q-value updates must be finite, got {delta}");
        let i = self.idx(s, a);
        self.values[i] += delta;
        self.visits[i] += 1;
    }

    /// How many times `(s, a)` has been updated via [`QTable::nudge`].
    #[must_use]
    pub fn visits(&self, s: StateId, a: ActionId) -> u64 {
        self.visits[self.idx(s, a)]
    }

    /// The greedy action in `s` (ties broken toward the lowest index).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn greedy_action(&self, s: StateId) -> ActionId {
        let row = self.row(s);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = i;
            }
        }
        ActionId::new(best)
    }

    /// The maximum action value in `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn max_value(&self, s: StateId) -> f64 {
        self.row(s).iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The full action-value row for `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn row(&self, s: StateId) -> &[f64] {
        let start = self.idx(s, ActionId::new(0));
        &self.values[start..start + self.shape.actions()]
    }

    /// The greedy policy over every state.
    #[must_use]
    pub fn greedy_policy(&self) -> Vec<ActionId> {
        self.shape.state_ids().map(|s| self.greedy_action(s)).collect()
    }

    /// Largest absolute value anywhere in the table.
    #[must_use]
    pub fn max_abs_value(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Resets every value and visit count to zero.
    pub fn clear(&mut self) {
        self.values.fill(0.0);
        self.visits.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ProblemShape {
        ProblemShape::new(3, 4)
    }

    #[test]
    fn starts_at_zero() {
        let q = QTable::new(shape());
        for s in shape().state_ids() {
            for a in shape().action_ids() {
                assert_eq!(q.value(s, a), 0.0);
                assert_eq!(q.visits(s, a), 0);
            }
        }
    }

    #[test]
    fn optimistic_init() {
        let q = QTable::with_initial_value(shape(), 10.0);
        assert_eq!(q.value(StateId::new(2), ActionId::new(3)), 10.0);
    }

    #[test]
    fn set_and_get() {
        let mut q = QTable::new(shape());
        q.set(StateId::new(1), ActionId::new(2), -3.5);
        assert_eq!(q.value(StateId::new(1), ActionId::new(2)), -3.5);
    }

    #[test]
    fn nudge_accumulates_and_counts() {
        let mut q = QTable::new(shape());
        let (s, a) = (StateId::new(0), ActionId::new(1));
        q.nudge(s, a, 2.0);
        q.nudge(s, a, 0.5);
        assert_eq!(q.value(s, a), 2.5);
        assert_eq!(q.visits(s, a), 2);
    }

    #[test]
    fn greedy_prefers_highest_then_lowest_index() {
        let mut q = QTable::new(shape());
        let s = StateId::new(0);
        q.set(s, ActionId::new(1), 4.0);
        q.set(s, ActionId::new(3), 4.0);
        assert_eq!(q.greedy_action(s), ActionId::new(1));
        q.set(s, ActionId::new(3), 4.1);
        assert_eq!(q.greedy_action(s), ActionId::new(3));
    }

    #[test]
    fn all_zero_row_is_action_zero() {
        let q = QTable::new(shape());
        assert_eq!(q.greedy_action(StateId::new(2)), ActionId::new(0));
    }

    #[test]
    fn max_value_matches_row() {
        let mut q = QTable::new(shape());
        let s = StateId::new(1);
        q.set(s, ActionId::new(0), -5.0);
        q.set(s, ActionId::new(2), 7.0);
        assert_eq!(q.max_value(s), 7.0);
        assert_eq!(q.row(s), &[-5.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn greedy_policy_covers_all_states() {
        let q = QTable::new(shape());
        assert_eq!(q.greedy_policy().len(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = QTable::new(shape());
        q.nudge(StateId::new(0), ActionId::new(0), 9.0);
        q.clear();
        assert_eq!(q.value(StateId::new(0), ActionId::new(0)), 0.0);
        assert_eq!(q.visits(StateId::new(0), ActionId::new(0)), 0);
        assert_eq!(q.max_abs_value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_panics() {
        let q = QTable::new(shape());
        let _ = q.value(StateId::new(99), ActionId::new(0));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_value_rejected() {
        let mut q = QTable::new(shape());
        q.set(StateId::new(0), ActionId::new(0), f64::NAN);
    }
}
