//! Dense tabular action-value storage.

use serde::{Deserialize, Serialize};

use crate::space::{ActionId, ProblemShape, StateId};

/// A dense `states × actions` table of action values with per-pair visit
/// counts.
///
/// Greedy look-ups break ties toward the lowest action index, which keeps
/// learned policies deterministic under a fixed seed.
///
/// The greedy action of every state is cached and maintained on write, so
/// [`QTable::greedy_action`] and [`QTable::max_value`] are O(1) in the
/// TD inner loop instead of rescanning the action row. A write only
/// triggers a row rescan when it lowers the incumbent best value — the
/// rare case; reward-driven updates overwhelmingly raise it.
///
/// # Examples
///
/// ```
/// use coreda_rl::qtable::QTable;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let mut q = QTable::new(ProblemShape::new(2, 3));
/// q.set(StateId::new(0), ActionId::new(2), 5.0);
/// assert_eq!(q.greedy_action(StateId::new(0)), ActionId::new(2));
/// assert_eq!(q.max_value(StateId::new(0)), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    shape: ProblemShape,
    values: Vec<f64>,
    visits: Vec<u64>,
    /// Cached greedy action per state; invariant: always equals the
    /// lowest-index argmax of the state's row.
    greedy: Vec<ActionId>,
}

impl QTable {
    /// Creates a zero-initialised table for `shape`.
    #[must_use]
    pub fn new(shape: ProblemShape) -> Self {
        QTable {
            shape,
            values: vec![0.0; shape.table_len()],
            visits: vec![0; shape.table_len()],
            greedy: vec![ActionId::new(0); shape.states()],
        }
    }

    /// Creates a table with every entry set to `value` (optimistic
    /// initialisation encourages exploration).
    #[must_use]
    pub fn with_initial_value(shape: ProblemShape, value: f64) -> Self {
        QTable {
            shape,
            values: vec![value; shape.table_len()],
            visits: vec![0; shape.table_len()],
            greedy: vec![ActionId::new(0); shape.states()],
        }
    }

    /// The table's problem shape.
    #[must_use]
    pub const fn shape(&self) -> ProblemShape {
        self.shape
    }

    fn idx(&self, s: StateId, a: ActionId) -> usize {
        assert!(
            self.shape.contains_state(s),
            "state {s} out of range for shape {shape}",
            shape = self.shape
        );
        assert!(
            self.shape.contains_action(a),
            "action {a} out of range for shape {shape}",
            shape = self.shape
        );
        s.index() * self.shape.actions() + a.index()
    }

    /// The value of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range.
    #[must_use]
    pub fn value(&self, s: StateId, a: ActionId) -> f64 {
        self.values[self.idx(s, a)]
    }

    /// Overwrites the value of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range, or `value` is not finite.
    pub fn set(&mut self, s: StateId, a: ActionId, value: f64) {
        assert!(value.is_finite(), "Q-values must be finite, got {value}");
        let i = self.idx(s, a);
        let old = self.values[i];
        self.values[i] = value;
        self.refresh_greedy(s, a, old);
    }

    /// Adds `delta` to the value of `(s, a)` and bumps its visit count.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range, or `delta` is not finite.
    pub fn nudge(&mut self, s: StateId, a: ActionId, delta: f64) {
        assert!(delta.is_finite(), "Q-value updates must be finite, got {delta}");
        let i = self.idx(s, a);
        let old = self.values[i];
        self.values[i] += delta;
        self.visits[i] += 1;
        self.refresh_greedy(s, a, old);
    }

    /// Restores the greedy-cache invariant for `s` after `(s, a)` changed
    /// from `old` to its current value.
    fn refresh_greedy(&mut self, s: StateId, a: ActionId, old: f64) {
        let best = self.greedy[s.index()];
        let new = self.values[self.idx(s, a)];
        if a == best {
            // The incumbent moved. Raising it cannot dethrone it (every
            // lower-index action was strictly below the old best value);
            // lowering it needs a rescan.
            if new < old {
                self.greedy[s.index()] = self.scan_greedy(s);
            }
        } else {
            // A challenger moved; it takes over only if it now beats the
            // incumbent under the lowest-index tie-break.
            let best_value = self.values[self.idx(s, best)];
            if new > best_value || (new == best_value && a.index() < best.index()) {
                self.greedy[s.index()] = a;
            }
        }
    }

    /// The lowest-index argmax of the row, by full scan.
    fn scan_greedy(&self, s: StateId) -> ActionId {
        let row = self.row(s);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = i;
            }
        }
        ActionId::new(best)
    }

    /// How many times `(s, a)` has been updated via [`QTable::nudge`].
    #[must_use]
    pub fn visits(&self, s: StateId, a: ActionId) -> u64 {
        self.visits[self.idx(s, a)]
    }

    /// The greedy action in `s` (ties broken toward the lowest index).
    /// O(1): served from the write-maintained cache.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn greedy_action(&self, s: StateId) -> ActionId {
        assert!(
            self.shape.contains_state(s),
            "state {s} out of range for shape {shape}",
            shape = self.shape
        );
        self.greedy[s.index()]
    }

    /// The maximum action value in `s`. O(1) via the greedy cache.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn max_value(&self, s: StateId) -> f64 {
        let i = self.idx(s, self.greedy_action(s));
        self.values[i]
    }

    /// The full action-value row for `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn row(&self, s: StateId) -> &[f64] {
        let start = self.idx(s, ActionId::new(0));
        &self.values[start..start + self.shape.actions()]
    }

    /// Iterates every action value in state-major order (invariant
    /// checking, fingerprinting).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// The greedy policy over every state.
    #[must_use]
    pub fn greedy_policy(&self) -> Vec<ActionId> {
        self.shape.state_ids().map(|s| self.greedy_action(s)).collect()
    }

    /// Largest absolute value anywhere in the table.
    #[must_use]
    pub fn max_abs_value(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Heap bytes behind this table (values, visits, greedy cache) —
    /// the metro memory budget's accounting hook. A fleet sharing one
    /// trained table via `Arc` pays this once, not per home.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>()
            + self.visits.capacity() * std::mem::size_of::<u64>()
            + self.greedy.capacity() * std::mem::size_of::<ActionId>()
    }

    /// Resets every value and visit count to zero.
    pub fn clear(&mut self) {
        self.values.fill(0.0);
        self.visits.fill(0);
        self.greedy.fill(ActionId::new(0));
    }

    /// Iterates every visit count in state-major order (checkpointing).
    pub fn visit_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.visits.iter().copied()
    }

    /// Overwrites the table with serialized `values` and `visits` (both in
    /// state-major order, as produced by [`QTable::values`] and
    /// [`QTable::visit_counts`]).
    ///
    /// The cached greedy action of every state is rebuilt by a full row
    /// scan — a deserialized cache would otherwise go stale silently,
    /// because the incremental maintenance in `set`/`nudge` assumes the
    /// cache already satisfies its invariant.
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from the table size, or any
    /// value is non-finite.
    pub fn restore_from_parts(&mut self, values: &[f64], visits: &[u64]) {
        assert_eq!(
            values.len(),
            self.shape.table_len(),
            "value count does not match shape {shape}",
            shape = self.shape
        );
        assert_eq!(
            visits.len(),
            self.shape.table_len(),
            "visit count does not match shape {shape}",
            shape = self.shape
        );
        for &v in values {
            assert!(v.is_finite(), "Q-values must be finite, got {v}");
        }
        self.values.copy_from_slice(values);
        self.visits.copy_from_slice(visits);
        for s in self.shape.state_ids() {
            self.greedy[s.index()] = self.scan_greedy(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ProblemShape {
        ProblemShape::new(3, 4)
    }

    #[test]
    fn heap_bytes_counts_all_three_arrays() {
        let t = QTable::new(shape());
        // 12 cells of f64 values + u64 visits, 3 greedy cache entries.
        let floor = 12 * (8 + 8) + 3 * std::mem::size_of::<crate::space::ActionId>();
        assert!(t.heap_bytes() >= floor, "{} < {floor}", t.heap_bytes());
    }

    #[test]
    fn starts_at_zero() {
        let q = QTable::new(shape());
        for s in shape().state_ids() {
            for a in shape().action_ids() {
                assert_eq!(q.value(s, a), 0.0);
                assert_eq!(q.visits(s, a), 0);
            }
        }
    }

    #[test]
    fn optimistic_init() {
        let q = QTable::with_initial_value(shape(), 10.0);
        assert_eq!(q.value(StateId::new(2), ActionId::new(3)), 10.0);
    }

    #[test]
    fn set_and_get() {
        let mut q = QTable::new(shape());
        q.set(StateId::new(1), ActionId::new(2), -3.5);
        assert_eq!(q.value(StateId::new(1), ActionId::new(2)), -3.5);
    }

    #[test]
    fn nudge_accumulates_and_counts() {
        let mut q = QTable::new(shape());
        let (s, a) = (StateId::new(0), ActionId::new(1));
        q.nudge(s, a, 2.0);
        q.nudge(s, a, 0.5);
        assert_eq!(q.value(s, a), 2.5);
        assert_eq!(q.visits(s, a), 2);
    }

    #[test]
    fn greedy_prefers_highest_then_lowest_index() {
        let mut q = QTable::new(shape());
        let s = StateId::new(0);
        q.set(s, ActionId::new(1), 4.0);
        q.set(s, ActionId::new(3), 4.0);
        assert_eq!(q.greedy_action(s), ActionId::new(1));
        q.set(s, ActionId::new(3), 4.1);
        assert_eq!(q.greedy_action(s), ActionId::new(3));
    }

    #[test]
    fn all_zero_row_is_action_zero() {
        let q = QTable::new(shape());
        assert_eq!(q.greedy_action(StateId::new(2)), ActionId::new(0));
    }

    #[test]
    fn max_value_matches_row() {
        let mut q = QTable::new(shape());
        let s = StateId::new(1);
        q.set(s, ActionId::new(0), -5.0);
        q.set(s, ActionId::new(2), 7.0);
        assert_eq!(q.max_value(s), 7.0);
        assert_eq!(q.row(s), &[-5.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn greedy_policy_covers_all_states() {
        let q = QTable::new(shape());
        assert_eq!(q.greedy_policy().len(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = QTable::new(shape());
        q.nudge(StateId::new(0), ActionId::new(0), 9.0);
        q.clear();
        assert_eq!(q.value(StateId::new(0), ActionId::new(0)), 0.0);
        assert_eq!(q.visits(StateId::new(0), ActionId::new(0)), 0);
        assert_eq!(q.max_abs_value(), 0.0);
    }

    #[test]
    fn cached_greedy_matches_full_scan_under_random_writes() {
        let mut q = QTable::new(ProblemShape::new(5, 7));
        let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
        for step in 0..5_000 {
            lcg = lcg.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let s = StateId::new((lcg >> 33) as usize % 5);
            let a = ActionId::new((lcg >> 17) as usize % 7);
            // Mix raises, drops, ties and exact repeats.
            let v = f64::from((lcg >> 40) as u8) - 128.0;
            if step % 3 == 0 {
                q.set(s, a, v);
            } else {
                q.nudge(s, a, v / 16.0);
            }
            assert_eq!(
                q.greedy_action(s),
                q.scan_greedy(s),
                "cache diverged from scan at step {step}"
            );
        }
        for s in q.shape().state_ids() {
            assert_eq!(q.greedy_action(s), q.scan_greedy(s));
        }
    }

    #[test]
    fn restore_rebuilds_stale_greedy_cache() {
        // Regression: restoring raw values into a fresh table must not
        // leave the default greedy cache (all action 0) in place when the
        // row's argmax is elsewhere.
        let mut src = QTable::new(shape());
        let s = StateId::new(1);
        src.set(s, ActionId::new(0), -2.0);
        src.set(s, ActionId::new(3), 6.0);
        src.nudge(StateId::new(2), ActionId::new(1), 1.5);
        let values: Vec<f64> = src.values().collect();
        let visits: Vec<u64> = src.visit_counts().collect();

        let mut restored = QTable::new(shape());
        restored.restore_from_parts(&values, &visits);
        assert_eq!(restored, src);
        for st in shape().state_ids() {
            assert_eq!(
                restored.greedy_action(st),
                restored.scan_greedy(st),
                "restored cache stale for state {st}"
            );
        }
        assert_eq!(restored.greedy_action(s), ActionId::new(3));
        assert_eq!(restored.visits(StateId::new(2), ActionId::new(1)), 1);
    }

    #[test]
    #[should_panic(expected = "value count does not match shape")]
    fn restore_rejects_wrong_length() {
        let mut q = QTable::new(shape());
        q.restore_from_parts(&[0.0; 3], &[0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_panics() {
        let q = QTable::new(shape());
        let _ = q.value(StateId::new(99), ActionId::new(0));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_value_rejected() {
        let mut q = QTable::new(shape());
        q.set(StateId::new(0), ActionId::new(0), f64::NAN);
    }
}
