//! One-step SARSA (on-policy TD control).

use crate::algo::{Outcome, TdConfig, TdControl};
use crate::qtable::QTable;
use crate::space::{ActionId, ProblemShape, StateId};

/// On-policy one-step SARSA:
/// `Q(s,a) ← Q(s,a) + α [r + γ Q(s',a') − Q(s,a)]`
/// where `a'` is the action the policy actually takes in `s'`.
///
/// # Examples
///
/// ```
/// use coreda_rl::algo::{Outcome, Sarsa, TdConfig, TdControl};
/// use coreda_rl::schedule::Schedule;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let cfg = TdConfig::new(Schedule::constant(1.0), 1.0);
/// let mut learner = Sarsa::new(ProblemShape::new(2, 2), cfg);
/// learner.begin_episode();
/// learner.observe(StateId::new(0), ActionId::new(0), 2.0, Outcome::Terminal);
/// assert_eq!(learner.q().value(StateId::new(0), ActionId::new(0)), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sarsa {
    q: QTable,
    cfg: TdConfig,
    updates: u64,
}

impl Sarsa {
    /// Creates a learner with a zero-initialised table.
    #[must_use]
    pub fn new(shape: ProblemShape, cfg: TdConfig) -> Self {
        Sarsa { q: QTable::new(shape), cfg, updates: 0 }
    }

    /// The learner's configuration.
    #[must_use]
    pub const fn config(&self) -> TdConfig {
        self.cfg
    }
}

impl TdControl for Sarsa {
    fn q(&self) -> &QTable {
        &self.q
    }

    fn q_mut(&mut self) -> &mut QTable {
        &mut self.q
    }

    fn begin_episode(&mut self) {}

    fn observe(&mut self, s: StateId, a: ActionId, reward: f64, outcome: Outcome) {
        let bootstrap = match outcome {
            Outcome::Terminal => 0.0,
            Outcome::Continue { next_state, next_action } => self.q.value(next_state, next_action),
        };
        let delta = reward + self.cfg.gamma() * bootstrap - self.q.value(s, a);
        let alpha = self.cfg.alpha_at(self.updates);
        self.q.nudge(s, a, alpha * delta);
        self.updates += 1;
    }

    fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::testutil;
    use crate::schedule::Schedule;

    fn cfg() -> TdConfig {
        TdConfig::new(Schedule::constant(0.3), 0.9)
    }

    #[test]
    fn bootstrap_uses_committed_next_action() {
        let mut l = Sarsa::new(ProblemShape::new(2, 2), cfg());
        l.q_mut().set(StateId::new(1), ActionId::new(1), 10.0);
        l.observe(
            StateId::new(0),
            ActionId::new(0),
            0.0,
            // next_action=0 has value 0, so SARSA's target is 0 even though
            // the max over s' is 10.
            Outcome::Continue { next_state: StateId::new(1), next_action: ActionId::new(0) },
        );
        assert_eq!(l.q().value(StateId::new(0), ActionId::new(0)), 0.0);
    }

    #[test]
    fn differs_from_q_learning_on_exploratory_next_action() {
        use crate::algo::QLearning;
        let transition = |l: &mut dyn TdControl| {
            l.q_mut().set(StateId::new(1), ActionId::new(1), 10.0);
            l.observe(
                StateId::new(0),
                ActionId::new(0),
                1.0,
                Outcome::Continue { next_state: StateId::new(1), next_action: ActionId::new(0) },
            );
        };
        let mut sarsa = Sarsa::new(ProblemShape::new(2, 2), cfg());
        let mut ql = QLearning::new(ProblemShape::new(2, 2), cfg());
        transition(&mut sarsa);
        transition(&mut ql);
        let s0a0 = (StateId::new(0), ActionId::new(0));
        assert!(ql.q().value(s0a0.0, s0a0.1) > sarsa.q().value(s0a0.0, s0a0.1));
    }

    #[test]
    fn solves_the_chain() {
        let mut l = Sarsa::new(testutil::chain_shape(), cfg());
        testutil::train_on_chain(&mut l, 300, 7);
        testutil::assert_chain_solved(&l);
    }

    #[test]
    fn terminal_is_pure_reward_target() {
        let cfg = TdConfig::new(Schedule::constant(1.0), 0.5);
        let mut l = Sarsa::new(ProblemShape::new(1, 1), cfg);
        l.observe(StateId::new(0), ActionId::new(0), 8.0, Outcome::Terminal);
        assert_eq!(l.q().value(StateId::new(0), ActionId::new(0)), 8.0);
    }
}
