//! Double Q-learning (van Hasselt 2010).
//!
//! Classic Q-learning's `max` bootstrap is biased upward in noisy
//! environments — exactly the failure mode CoReDA's prompt-degenerate MDP
//! flirts with (see the γ discussion in `coreda-core::planning`). Double
//! Q-learning keeps two tables and decorrelates action selection from
//! evaluation, removing the maximisation bias.

use coreda_des::rng::SimRng;

use crate::algo::{Outcome, TdConfig, TdControl};
use crate::qtable::QTable;
use crate::space::{ActionId, ProblemShape, StateId};

/// Double Q-learning: on each update, flip a coin; update table A with
/// target `r + γ · Q_B(s', argmax_a Q_A(s', a))` (or symmetrically B
/// with A). Acting greedily uses the sum of both tables.
///
/// The learner owns a private RNG for the coin, so runs remain
/// deterministic under a fixed seed.
///
/// # Examples
///
/// ```
/// use coreda_rl::algo::{DoubleQLearning, Outcome, TdConfig, TdControl};
/// use coreda_rl::schedule::Schedule;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let cfg = TdConfig::new(Schedule::constant(0.5), 0.9);
/// let mut learner = DoubleQLearning::new(ProblemShape::new(2, 2), cfg, 7);
/// learner.begin_episode();
/// learner.observe(StateId::new(0), ActionId::new(1), 10.0, Outcome::Terminal);
/// assert!(learner.q().value(StateId::new(0), ActionId::new(1)) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DoubleQLearning {
    /// Combined table (A + B), kept in sync for greedy queries through
    /// the [`TdControl`] interface.
    combined: QTable,
    a: QTable,
    b: QTable,
    cfg: TdConfig,
    rng: SimRng,
    updates: u64,
}

impl DoubleQLearning {
    /// Creates a learner with zero-initialised tables and a private coin
    /// RNG seeded by `seed`.
    #[must_use]
    pub fn new(shape: ProblemShape, cfg: TdConfig, seed: u64) -> Self {
        DoubleQLearning {
            combined: QTable::new(shape),
            a: QTable::new(shape),
            b: QTable::new(shape),
            cfg,
            rng: SimRng::seed_from(seed),
            updates: 0,
        }
    }

    /// Read access to the first internal table (tests, diagnostics).
    #[must_use]
    pub fn table_a(&self) -> &QTable {
        &self.a
    }

    /// Read access to the second internal table.
    #[must_use]
    pub fn table_b(&self) -> &QTable {
        &self.b
    }

    fn refresh_combined(&mut self, s: StateId, a: ActionId) {
        self.combined.set(s, a, self.a.value(s, a) + self.b.value(s, a));
    }
}

impl TdControl for DoubleQLearning {
    fn q(&self) -> &QTable {
        &self.combined
    }

    fn q_mut(&mut self) -> &mut QTable {
        &mut self.combined
    }

    fn begin_episode(&mut self) {}

    fn observe(&mut self, s: StateId, a: ActionId, reward: f64, outcome: Outcome) {
        let update_a = self.rng.chance(0.5);
        let bootstrap = match outcome {
            Outcome::Terminal => 0.0,
            Outcome::Continue { next_state, .. } => {
                if update_a {
                    // Select with A, evaluate with B.
                    let pick = self.a.greedy_action(next_state);
                    self.b.value(next_state, pick)
                } else {
                    let pick = self.b.greedy_action(next_state);
                    self.a.value(next_state, pick)
                }
            }
        };
        let alpha = self.cfg.alpha_at(self.updates);
        let target = reward + self.cfg.gamma() * bootstrap;
        if update_a {
            let delta = target - self.a.value(s, a);
            self.a.nudge(s, a, alpha * delta);
        } else {
            let delta = target - self.b.value(s, a);
            self.b.nudge(s, a, alpha * delta);
        }
        self.refresh_combined(s, a);
        self.updates += 1;
    }

    fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::testutil;
    use crate::schedule::Schedule;

    fn cfg() -> TdConfig {
        TdConfig::new(Schedule::constant(0.3), 0.9)
    }

    #[test]
    fn both_tables_receive_updates() {
        let mut l = DoubleQLearning::new(ProblemShape::new(2, 2), cfg(), 1);
        for _ in 0..40 {
            l.observe(StateId::new(0), ActionId::new(0), 1.0, Outcome::Terminal);
        }
        assert!(l.table_a().value(StateId::new(0), ActionId::new(0)) > 0.0);
        assert!(l.table_b().value(StateId::new(0), ActionId::new(0)) > 0.0);
    }

    #[test]
    fn combined_is_sum_of_tables() {
        let mut l = DoubleQLearning::new(ProblemShape::new(2, 2), cfg(), 2);
        let (s, a) = (StateId::new(1), ActionId::new(1));
        for _ in 0..10 {
            l.observe(s, a, 2.0, Outcome::Terminal);
        }
        let expected = l.table_a().value(s, a) + l.table_b().value(s, a);
        assert!((l.q().value(s, a) - expected).abs() < 1e-12);
    }

    #[test]
    fn solves_the_chain() {
        let mut l = DoubleQLearning::new(testutil::chain_shape(), cfg(), 3);
        testutil::train_on_chain(&mut l, 400, 17);
        testutil::assert_chain_solved(&l);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut l = DoubleQLearning::new(testutil::chain_shape(), cfg(), seed);
            testutil::train_on_chain(&mut l, 50, 5);
            l.q().clone()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "coin seed matters");
    }

    /// The motivating property: in a state where every action's true value
    /// is zero but rewards are noisy, vanilla Q-learning's max-bootstrap
    /// drives the *predecessor's* value up; Double Q stays closer to zero.
    #[test]
    fn less_maximisation_bias_than_q_learning() {
        use crate::algo::QLearning;
        let shape = ProblemShape::new(2, 8);
        let cfg = TdConfig::new(Schedule::constant(0.2), 1.0);
        let mut dq = DoubleQLearning::new(shape, cfg, 4);
        let mut ql = QLearning::new(shape, cfg);
        let mut rng = SimRng::seed_from(6);
        // State 1: 8 actions, all zero-mean noisy terminal rewards.
        // State 0 → state 1 with zero reward.
        for _ in 0..3000 {
            let a = ActionId::new(rng.uniform_usize(0, 8));
            let r = rng.normal(0.0, 1.0);
            dq.observe(StateId::new(1), a, r, Outcome::Terminal);
            ql.observe(StateId::new(1), a, r, Outcome::Terminal);
            let into = Outcome::Continue { next_state: StateId::new(1), next_action: a };
            dq.observe(StateId::new(0), ActionId::new(0), 0.0, into);
            ql.observe(StateId::new(0), ActionId::new(0), 0.0, into);
        }
        let ql_bias = ql.q().value(StateId::new(0), ActionId::new(0));
        // Double Q's combined table is A+B (double scale); halve it.
        let dq_bias = dq.q().value(StateId::new(0), ActionId::new(0)) / 2.0;
        assert!(
            dq_bias.abs() < ql_bias.abs(),
            "double Q should be less biased: |{dq_bias:.3}| vs |{ql_bias:.3}|"
        );
        assert!(ql_bias > 0.05, "vanilla Q-learning should overestimate here: {ql_bias:.3}");
    }
}
