//! Watkins Q(λ): TD(λ) Q-learning with eligibility traces.
//!
//! This is the algorithm the paper's planning subsystem uses ("we use the
//! TD(λ) Q-Learning algorithm in Reinforcement Learning Toolbox 2.0").
//! Traces propagate each temporal-difference error back along the visited
//! trajectory, which is what lets CoReDA learn a whole ADL routine from a
//! single terminal reward in tens rather than thousands of episodes.

use crate::algo::{Outcome, TdConfig, TdControl};
use crate::qtable::QTable;
use crate::space::{ActionId, ProblemShape, StateId};
use crate::traces::{EligibilityTraces, TraceKind};

/// Watkins Q(λ) (Watkins 1989; Sutton & Barto 1998, §7.6).
///
/// Per transition:
///
/// 1. `δ = r + γ max_a' Q(s',a') − Q(s,a)`
/// 2. bump the trace of `(s,a)`, then `Q ← Q + α δ e` for every live trace
/// 3. if the episode ended, clear traces; if the committed next action is
///    exploratory (non-greedy), clear traces (the return no longer follows
///    the greedy policy); otherwise decay all traces by `γλ`.
///
/// With `λ = 0` this reduces exactly to one-step Q-learning.
///
/// # Examples
///
/// ```
/// use coreda_rl::algo::{Outcome, TdConfig, TdControl, WatkinsQLambda};
/// use coreda_rl::schedule::Schedule;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
/// use coreda_rl::traces::TraceKind;
///
/// let cfg = TdConfig::new(Schedule::constant(0.5), 0.9);
/// let mut learner = WatkinsQLambda::new(ProblemShape::new(3, 2), cfg, 0.8, TraceKind::Replacing);
/// learner.begin_episode();
/// learner.observe(StateId::new(0), ActionId::new(0), 0.0,
///     Outcome::Continue { next_state: StateId::new(1), next_action: ActionId::new(0) });
/// learner.observe(StateId::new(1), ActionId::new(0), 10.0, Outcome::Terminal);
/// // The terminal reward reached state 0's entry through the trace.
/// assert!(learner.q().value(StateId::new(0), ActionId::new(0)) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct WatkinsQLambda {
    q: QTable,
    cfg: TdConfig,
    lambda: f64,
    traces: EligibilityTraces,
    updates: u64,
}

impl WatkinsQLambda {
    /// Creates a learner.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not in `[0, 1]`.
    #[must_use]
    pub fn new(shape: ProblemShape, cfg: TdConfig, lambda: f64, kind: TraceKind) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1], got {lambda}");
        WatkinsQLambda {
            q: QTable::new(shape),
            cfg,
            lambda,
            traces: EligibilityTraces::new(kind),
            updates: 0,
        }
    }

    /// The trace-decay parameter λ.
    #[must_use]
    pub const fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The learner's configuration.
    #[must_use]
    pub const fn config(&self) -> TdConfig {
        self.cfg
    }

    /// Number of currently live eligibility traces (diagnostics).
    #[must_use]
    pub fn live_traces(&self) -> usize {
        self.traces.len()
    }

    /// The live eligibility-trace entries in insertion order
    /// (checkpointing).
    #[must_use]
    pub fn trace_entries(&self) -> &[(StateId, ActionId, f64)] {
        self.traces.entries()
    }

    /// Restores the learner's mutable state from a checkpoint: Q-table
    /// values/visits, eligibility traces and the update counter (which
    /// drives the learning-rate schedule, so it must round-trip for the
    /// resumed stream of updates to match an uninterrupted one).
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`QTable::restore_from_parts`] and
    /// [`EligibilityTraces::restore_entries`] on malformed input.
    pub fn restore_state(
        &mut self,
        values: &[f64],
        visits: &[u64],
        traces: &[(StateId, ActionId, f64)],
        updates: u64,
    ) {
        self.q.restore_from_parts(values, visits);
        self.traces.restore_entries(traces);
        self.updates = updates;
    }
}

impl TdControl for WatkinsQLambda {
    fn q(&self) -> &QTable {
        &self.q
    }

    fn q_mut(&mut self) -> &mut QTable {
        &mut self.q
    }

    fn begin_episode(&mut self) {
        self.traces.clear();
    }

    fn observe(&mut self, s: StateId, a: ActionId, reward: f64, outcome: Outcome) {
        let bootstrap = match outcome {
            Outcome::Terminal => 0.0,
            Outcome::Continue { next_state, .. } => self.q.max_value(next_state),
        };
        let delta = reward + self.cfg.gamma() * bootstrap - self.q.value(s, a);
        let alpha = self.cfg.alpha_at(self.updates);

        self.traces.visit(s, a);
        let q = &mut self.q;
        self.traces.for_each(|ts, ta, e| {
            q.nudge(ts, ta, alpha * delta * e);
        });

        match outcome {
            Outcome::Terminal => self.traces.clear(),
            Outcome::Continue { next_state, next_action } => {
                if next_action == self.q.greedy_action(next_state) {
                    self.traces.decay(self.cfg.gamma() * self.lambda);
                } else {
                    // Exploratory action: the sampled return stops following
                    // the greedy policy, so earlier pairs are no longer
                    // eligible (Watkins' cut).
                    self.traces.clear();
                }
            }
        }
        self.updates += 1;
    }

    fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{testutil, QLearning};
    use crate::schedule::Schedule;

    fn cfg() -> TdConfig {
        TdConfig::new(Schedule::constant(0.3), 0.9)
    }

    fn continue_to(s: usize, a: usize) -> Outcome {
        Outcome::Continue { next_state: StateId::new(s), next_action: ActionId::new(a) }
    }

    #[test]
    fn lambda_zero_matches_one_step_q_learning() {
        let shape = ProblemShape::new(4, 2);
        let mut ql = QLearning::new(shape, cfg());
        let mut qlam = WatkinsQLambda::new(shape, cfg(), 0.0, TraceKind::Accumulating);
        let script = [
            (0, 0, 0.0, continue_to(1, 0)),
            (1, 0, -1.0, continue_to(2, 1)),
            (2, 1, 0.5, continue_to(3, 0)),
            (3, 0, 10.0, Outcome::Terminal),
        ];
        ql.begin_episode();
        qlam.begin_episode();
        for &(s, a, r, out) in &script {
            ql.observe(StateId::new(s), ActionId::new(a), r, out);
            qlam.observe(StateId::new(s), ActionId::new(a), r, out);
        }
        for s in shape.state_ids() {
            for a in shape.action_ids() {
                assert!(
                    (ql.q().value(s, a) - qlam.q().value(s, a)).abs() < 1e-12,
                    "λ=0 must equal one-step Q-learning at ({s}, {a})"
                );
            }
        }
    }

    #[test]
    fn traces_propagate_terminal_reward_backwards() {
        let mut l = WatkinsQLambda::new(ProblemShape::new(3, 1), cfg(), 0.9, TraceKind::Replacing);
        l.begin_episode();
        l.observe(StateId::new(0), ActionId::new(0), 0.0, continue_to(1, 0));
        l.observe(StateId::new(1), ActionId::new(0), 0.0, continue_to(2, 0));
        l.observe(StateId::new(2), ActionId::new(0), 10.0, Outcome::Terminal);
        // All three entries moved in one episode — with one-step Q-learning
        // only state 2 would have.
        for s in 0..3 {
            assert!(
                l.q().value(StateId::new(s), ActionId::new(0)) > 0.0,
                "state {s} untouched"
            );
        }
        // And earlier states moved less than later ones.
        let v0 = l.q().value(StateId::new(0), ActionId::new(0));
        let v2 = l.q().value(StateId::new(2), ActionId::new(0));
        assert!(v0 < v2);
    }

    #[test]
    fn exploratory_action_cuts_traces() {
        let shape = ProblemShape::new(3, 2);
        let mut l = WatkinsQLambda::new(shape, cfg(), 0.9, TraceKind::Replacing);
        // Make action 1 greedy in state 1 so that committing to action 0
        // there is exploratory.
        l.q_mut().set(StateId::new(1), ActionId::new(1), 5.0);
        l.begin_episode();
        l.observe(StateId::new(0), ActionId::new(0), 0.0, continue_to(1, 0));
        assert_eq!(l.live_traces(), 0, "non-greedy committed action must clear traces");
    }

    #[test]
    fn greedy_continuation_decays_traces() {
        let shape = ProblemShape::new(3, 2);
        let mut l = WatkinsQLambda::new(shape, cfg(), 0.5, TraceKind::Replacing);
        l.begin_episode();
        // Zero table: greedy action everywhere is action 0 (tie-break).
        l.observe(StateId::new(0), ActionId::new(0), 0.0, continue_to(1, 0));
        assert_eq!(l.live_traces(), 1);
        assert!(
            (l.traces.value(StateId::new(0), ActionId::new(0)) - 0.45).abs() < 1e-12,
            "trace should decay by gamma*lambda = 0.45"
        );
    }

    #[test]
    fn terminal_clears_traces() {
        let mut l =
            WatkinsQLambda::new(ProblemShape::new(2, 1), cfg(), 0.9, TraceKind::Accumulating);
        l.begin_episode();
        l.observe(StateId::new(0), ActionId::new(0), 1.0, Outcome::Terminal);
        assert_eq!(l.live_traces(), 0);
    }

    #[test]
    fn begin_episode_clears_stale_traces() {
        let mut l =
            WatkinsQLambda::new(ProblemShape::new(2, 1), cfg(), 0.9, TraceKind::Accumulating);
        l.begin_episode();
        l.observe(StateId::new(0), ActionId::new(0), 0.0, continue_to(1, 0));
        l.begin_episode();
        assert_eq!(l.live_traces(), 0);
    }

    #[test]
    fn solves_the_chain_faster_than_one_step() {
        // With only 30 noisy episodes, Q(λ) should already have the optimal
        // policy on the 3-chain.
        let mut l = WatkinsQLambda::new(testutil::chain_shape(), cfg(), 0.9, TraceKind::Replacing);
        testutil::train_on_chain(&mut l, 30, 11);
        testutil::assert_chain_solved(&l);
    }

    #[test]
    fn restore_state_resumes_identically() {
        let shape = ProblemShape::new(4, 2);
        // Alpha schedule varies with the update counter, so a resumed
        // learner only matches if `updates` round-trips too.
        let decaying = TdConfig::new(Schedule::exponential(0.5, 0.9, 0.05), 0.9);
        let script = [
            (0, 0, 0.0, continue_to(1, 0)),
            (1, 0, -1.0, continue_to(2, 0)),
            (2, 0, 0.5, continue_to(3, 0)),
            (3, 0, 10.0, Outcome::Terminal),
        ];
        let mut ghost = WatkinsQLambda::new(shape, decaying, 0.8, TraceKind::Replacing);
        let mut live = WatkinsQLambda::new(shape, decaying, 0.8, TraceKind::Replacing);
        for l in [&mut ghost, &mut live] {
            l.begin_episode();
            for &(s, a, r, out) in &script[..2] {
                l.observe(StateId::new(s), ActionId::new(a), r, out);
            }
        }
        // Kill `live` mid-episode and rebuild it from captured parts.
        let values: Vec<f64> = live.q().values().collect();
        let visits: Vec<u64> = live.q().visit_counts().collect();
        let traces = live.trace_entries().to_vec();
        let updates = live.updates();
        let mut resumed = WatkinsQLambda::new(shape, decaying, 0.8, TraceKind::Replacing);
        resumed.restore_state(&values, &visits, &traces, updates);

        for l in [&mut ghost, &mut resumed] {
            for &(s, a, r, out) in &script[2..] {
                l.observe(StateId::new(s), ActionId::new(a), r, out);
            }
        }
        assert_eq!(resumed.updates(), ghost.updates());
        let ghost_vals: Vec<f64> = ghost.q().values().collect();
        let resumed_vals: Vec<f64> = resumed.q().values().collect();
        assert_eq!(resumed_vals, ghost_vals, "resumed learner diverged from ghost");
    }

    #[test]
    #[should_panic(expected = "lambda must be in [0, 1]")]
    fn bad_lambda_rejected() {
        let _ = WatkinsQLambda::new(ProblemShape::new(1, 1), cfg(), 1.5, TraceKind::Replacing);
    }
}
