//! Dyna-Q: model-based acceleration of Q-learning (Sutton 1990).
//!
//! The paper's future-work section asks for "fast learning — the elderly
//! may be not so patient to wait for it". Dyna-Q answers that: every real
//! transition is also recorded in a learned model, and after each real
//! update the learner replays `planning_steps` simulated transitions from
//! the model. For the near-deterministic routines CoReDA learns, this cuts
//! the number of *real* episodes needed to converge dramatically (see the
//! `repro_ablation` harness).

use std::collections::HashMap;

use coreda_des::rng::SimRng;

use crate::algo::{Outcome, TdConfig, TdControl};
use crate::qtable::QTable;
use crate::space::{ActionId, ProblemShape, StateId};

/// A deterministic last-observation world model: `(s, a) → (r, s')`.
///
/// Sufficient for CoReDA's near-deterministic routine MDPs; a stochastic
/// environment would overwrite entries and the planner would chase the
/// most recent sample, which still converges in practice.
#[derive(Debug, Clone, Default)]
struct WorldModel {
    transitions: HashMap<(StateId, ActionId), (f64, Option<StateId>)>,
    keys: Vec<(StateId, ActionId)>,
}

impl WorldModel {
    fn record(&mut self, s: StateId, a: ActionId, reward: f64, next: Option<StateId>) {
        if self.transitions.insert((s, a), (reward, next)).is_none() {
            self.keys.push((s, a));
        }
    }

    fn sample(&self, rng: &mut SimRng) -> Option<(StateId, ActionId, f64, Option<StateId>)> {
        if self.keys.is_empty() {
            return None;
        }
        let key = *rng.choose(&self.keys);
        let (reward, next) = self.transitions[&key];
        Some((key.0, key.1, reward, next))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Dyna-Q: one-step Q-learning plus `planning_steps` model-replay updates
/// per real transition.
///
/// The learner owns a private RNG (seeded at construction) for sampling
/// the model, so runs remain deterministic.
///
/// # Examples
///
/// ```
/// use coreda_rl::algo::{DynaQ, Outcome, TdConfig, TdControl};
/// use coreda_rl::schedule::Schedule;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let cfg = TdConfig::new(Schedule::constant(0.5), 0.9);
/// let mut learner = DynaQ::new(ProblemShape::new(2, 2), cfg, 10, 77);
/// learner.begin_episode();
/// learner.observe(StateId::new(0), ActionId::new(0), 5.0, Outcome::Terminal);
/// assert!(learner.q().value(StateId::new(0), ActionId::new(0)) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DynaQ {
    q: QTable,
    cfg: TdConfig,
    planning_steps: usize,
    model: WorldModel,
    rng: SimRng,
    updates: u64,
}

impl DynaQ {
    /// Creates a learner that performs `planning_steps` model-based updates
    /// after every real one, sampling with a private RNG seeded by `seed`.
    #[must_use]
    pub fn new(shape: ProblemShape, cfg: TdConfig, planning_steps: usize, seed: u64) -> Self {
        DynaQ {
            q: QTable::new(shape),
            cfg,
            planning_steps,
            model: WorldModel::default(),
            rng: SimRng::seed_from(seed),
            updates: 0,
        }
    }

    /// Number of planning (model-replay) updates per real transition.
    #[must_use]
    pub const fn planning_steps(&self) -> usize {
        self.planning_steps
    }

    /// Number of distinct `(state, action)` pairs in the learned model.
    #[must_use]
    pub fn model_size(&self) -> usize {
        self.model.len()
    }

    fn q_update(&mut self, s: StateId, a: ActionId, reward: f64, next: Option<StateId>) {
        let bootstrap = next.map_or(0.0, |ns| self.q.max_value(ns));
        let delta = reward + self.cfg.gamma() * bootstrap - self.q.value(s, a);
        let alpha = self.cfg.alpha_at(self.updates);
        self.q.nudge(s, a, alpha * delta);
    }
}

impl TdControl for DynaQ {
    fn q(&self) -> &QTable {
        &self.q
    }

    fn q_mut(&mut self) -> &mut QTable {
        &mut self.q
    }

    fn begin_episode(&mut self) {}

    fn observe(&mut self, s: StateId, a: ActionId, reward: f64, outcome: Outcome) {
        let next = match outcome {
            Outcome::Terminal => None,
            Outcome::Continue { next_state, .. } => Some(next_state),
        };
        self.q_update(s, a, reward, next);
        self.model.record(s, a, reward, next);
        for _ in 0..self.planning_steps {
            let Some((ms, ma, mr, mnext)) = self.model.sample(&mut self.rng) else {
                break;
            };
            self.q_update(ms, ma, mr, mnext);
        }
        self.updates += 1;
    }

    fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{testutil, QLearning};
    use crate::schedule::Schedule;

    fn cfg() -> TdConfig {
        TdConfig::new(Schedule::constant(0.3), 0.9)
    }

    #[test]
    fn zero_planning_steps_matches_q_learning() {
        let shape = ProblemShape::new(3, 2);
        let mut dq = DynaQ::new(shape, cfg(), 0, 1);
        let mut ql = QLearning::new(shape, cfg());
        let out = Outcome::Continue { next_state: StateId::new(1), next_action: ActionId::new(0) };
        dq.observe(StateId::new(0), ActionId::new(0), 2.0, out);
        ql.observe(StateId::new(0), ActionId::new(0), 2.0, out);
        assert_eq!(
            dq.q().value(StateId::new(0), ActionId::new(0)),
            ql.q().value(StateId::new(0), ActionId::new(0))
        );
    }

    #[test]
    fn model_records_transitions() {
        let mut dq = DynaQ::new(ProblemShape::new(3, 2), cfg(), 5, 1);
        assert_eq!(dq.model_size(), 0);
        dq.observe(StateId::new(0), ActionId::new(0), 0.0, Outcome::Terminal);
        dq.observe(StateId::new(1), ActionId::new(1), 0.0, Outcome::Terminal);
        // Re-observing the same pair must not duplicate it.
        dq.observe(StateId::new(0), ActionId::new(0), 0.0, Outcome::Terminal);
        assert_eq!(dq.model_size(), 2);
    }

    #[test]
    fn planning_propagates_reward_without_revisits() {
        // Observe the chain once, then watch planning back-propagate the
        // terminal reward to the start state without further real episodes.
        let mut dq = DynaQ::new(ProblemShape::new(3, 1), cfg(), 50, 3);
        let fwd = |_s: usize, ns: usize| Outcome::Continue {
            next_state: StateId::new(ns),
            next_action: ActionId::new(0),
        };
        dq.observe(StateId::new(0), ActionId::new(0), 0.0, fwd(0, 1));
        dq.observe(StateId::new(1), ActionId::new(0), 0.0, fwd(1, 2));
        dq.observe(StateId::new(2), ActionId::new(0), 10.0, Outcome::Terminal);
        // A couple more planning-only batches via dummy re-observations.
        dq.observe(StateId::new(0), ActionId::new(0), 0.0, fwd(0, 1));
        assert!(
            dq.q().value(StateId::new(0), ActionId::new(0)) > 0.5,
            "planning should have propagated the terminal reward back: {:?}",
            dq.q().row(StateId::new(0))
        );
    }

    #[test]
    fn solves_the_chain_with_few_episodes() {
        let mut dq = DynaQ::new(testutil::chain_shape(), cfg(), 20, 5);
        testutil::train_on_chain(&mut dq, 15, 21);
        testutil::assert_chain_solved(&dq);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut dq = DynaQ::new(testutil::chain_shape(), cfg(), 10, 9);
            testutil::train_on_chain(&mut dq, 20, 2);
            dq.q().clone()
        };
        assert_eq!(run(), run());
    }
}
