//! Temporal-difference control algorithms.
//!
//! All learners share the [`TdControl`] interface: an episode loop selects
//! actions with a [`Policy`](crate::policy::Policy) and feeds each observed
//! transition to the learner. The paper's planning subsystem uses
//! [`WatkinsQLambda`] (TD(λ) Q-learning); the others are provided for the
//! ablation studies and the "fast learning" future-work experiment
//! ([`DynaQ`]).

mod double_q;
mod dyna_q;
mod expected_sarsa;
mod q_learning;
mod q_lambda;
mod sarsa;

pub use double_q::DoubleQLearning;
pub use dyna_q::DynaQ;
pub use expected_sarsa::ExpectedSarsa;
pub use q_learning::QLearning;
pub use q_lambda::WatkinsQLambda;
pub use sarsa::Sarsa;

use serde::{Deserialize, Serialize};

use crate::qtable::QTable;
use crate::schedule::Schedule;
use crate::space::{ActionId, StateId};

/// What happened after taking an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The episode ended.
    Terminal,
    /// The episode continues in `next_state`, where the policy has already
    /// committed to `next_action` (needed by SARSA-family methods; Watkins
    /// Q(λ) uses it to detect exploratory actions).
    Continue {
        /// The state the environment moved to.
        next_state: StateId,
        /// The action the policy will take there.
        next_action: ActionId,
    },
}

/// Shared hyper-parameters for TD learners.
///
/// # Examples
///
/// ```
/// use coreda_rl::algo::TdConfig;
/// use coreda_rl::schedule::Schedule;
///
/// let cfg = TdConfig::new(Schedule::constant(0.1), 0.9);
/// assert_eq!(cfg.alpha_at(0), 0.1);
/// assert_eq!(cfg.gamma(), 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdConfig {
    alpha: Schedule,
    gamma: f64,
}

impl TdConfig {
    /// Creates a configuration with learning-rate schedule `alpha` and
    /// discount factor `gamma` (the paper's "converge factor" β).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not in `[0, 1]` or the initial learning rate is
    /// not in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: Schedule, gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1], got {gamma}");
        let a0 = alpha.value(0);
        assert!(a0 > 0.0 && a0 <= 1.0, "initial learning rate must be in (0, 1], got {a0}");
        TdConfig { alpha, gamma }
    }

    /// The learning rate at update `step`.
    #[must_use]
    pub fn alpha_at(&self, step: u64) -> f64 {
        self.alpha.value(step)
    }

    /// The discount factor.
    #[must_use]
    pub const fn gamma(&self) -> f64 {
        self.gamma
    }
}

/// A tabular TD-control learner.
pub trait TdControl: std::fmt::Debug {
    /// The learner's current value estimates.
    fn q(&self) -> &QTable;

    /// Mutable access to the value estimates (for warm starts and tests).
    fn q_mut(&mut self) -> &mut QTable;

    /// Resets per-episode state (eligibility traces, pending bookkeeping).
    /// Must be called before the first transition of each episode.
    fn begin_episode(&mut self);

    /// Feeds one observed transition `(s, a) → reward, outcome`.
    fn observe(&mut self, s: StateId, a: ActionId, reward: f64, outcome: Outcome);

    /// Number of transitions observed so far (drives learning-rate
    /// schedules).
    fn updates(&self) -> u64;
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A tiny deterministic 4-state chain shared by the learner tests.
    //!
    //! States 0→1→2→3(terminal). Action 0 moves forward with reward 0
    //! (and 10 on reaching the terminal); action 1 stays put with reward −1.
    //! The optimal policy is "always action 0".

    use super::*;
    use crate::space::ProblemShape;

    /// The chain's 3-state × 2-action shape.
    pub fn chain_shape() -> ProblemShape {
        ProblemShape::new(3, 2)
    }

    /// One step of the chain dynamics. Returns (reward, outcome-state).
    pub fn chain_step(s: StateId, a: ActionId) -> (f64, Option<StateId>) {
        if a == ActionId::new(0) {
            if s.index() == 2 {
                (10.0, None)
            } else {
                (0.0, Some(StateId::new(s.index() + 1)))
            }
        } else {
            (-1.0, Some(s))
        }
    }

    /// Trains `learner` greedily-on-chain for `episodes`, always choosing
    /// the action the ε-greedy hand-rolled explorer picks.
    pub fn train_on_chain(learner: &mut dyn TdControl, episodes: usize, seed: u64) {
        let mut rng = coreda_des::rng::SimRng::seed_from(seed);
        for _ in 0..episodes {
            learner.begin_episode();
            let mut s = StateId::new(0);
            let mut a = explore(learner.q(), s, &mut rng);
            for _ in 0..50 {
                let (r, next) = chain_step(s, a);
                match next {
                    None => {
                        learner.observe(s, a, r, Outcome::Terminal);
                        break;
                    }
                    Some(s2) => {
                        let a2 = explore(learner.q(), s2, &mut rng);
                        learner.observe(
                            s,
                            a,
                            r,
                            Outcome::Continue { next_state: s2, next_action: a2 },
                        );
                        s = s2;
                        a = a2;
                    }
                }
            }
        }
    }

    fn explore(q: &QTable, s: StateId, rng: &mut coreda_des::rng::SimRng) -> ActionId {
        if rng.chance(0.2) {
            ActionId::new(rng.uniform_usize(0, 2))
        } else {
            q.greedy_action(s)
        }
    }

    /// Asserts that the learner found the optimal "always forward" policy.
    pub fn assert_chain_solved(learner: &dyn TdControl) {
        for s in 0..3 {
            assert_eq!(
                learner.q().greedy_action(StateId::new(s)),
                ActionId::new(0),
                "state {s} should prefer moving forward; row {:?}",
                learner.q().row(StateId::new(s))
            );
        }
    }
}
