//! One-step Q-learning (Watkins 1989).

use crate::algo::{Outcome, TdConfig, TdControl};
use crate::qtable::QTable;
use crate::space::{ActionId, ProblemShape, StateId};

/// Off-policy one-step Q-learning:
/// `Q(s,a) ← Q(s,a) + α [r + γ max_a' Q(s',a') − Q(s,a)]`.
///
/// # Examples
///
/// ```
/// use coreda_rl::algo::{Outcome, QLearning, TdConfig, TdControl};
/// use coreda_rl::schedule::Schedule;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let cfg = TdConfig::new(Schedule::constant(0.5), 0.9);
/// let mut learner = QLearning::new(ProblemShape::new(2, 2), cfg);
/// learner.begin_episode();
/// learner.observe(StateId::new(0), ActionId::new(0), 10.0, Outcome::Terminal);
/// assert_eq!(learner.q().value(StateId::new(0), ActionId::new(0)), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct QLearning {
    q: QTable,
    cfg: TdConfig,
    updates: u64,
}

impl QLearning {
    /// Creates a learner with a zero-initialised table.
    #[must_use]
    pub fn new(shape: ProblemShape, cfg: TdConfig) -> Self {
        QLearning { q: QTable::new(shape), cfg, updates: 0 }
    }

    /// The learner's configuration.
    #[must_use]
    pub const fn config(&self) -> TdConfig {
        self.cfg
    }
}

impl TdControl for QLearning {
    fn q(&self) -> &QTable {
        &self.q
    }

    fn q_mut(&mut self) -> &mut QTable {
        &mut self.q
    }

    fn begin_episode(&mut self) {}

    fn observe(&mut self, s: StateId, a: ActionId, reward: f64, outcome: Outcome) {
        let bootstrap = match outcome {
            Outcome::Terminal => 0.0,
            Outcome::Continue { next_state, .. } => self.q.max_value(next_state),
        };
        let delta = reward + self.cfg.gamma() * bootstrap - self.q.value(s, a);
        let alpha = self.cfg.alpha_at(self.updates);
        self.q.nudge(s, a, alpha * delta);
        self.updates += 1;
    }

    fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::testutil;
    use crate::schedule::Schedule;

    fn cfg() -> TdConfig {
        TdConfig::new(Schedule::constant(0.3), 0.9)
    }

    #[test]
    fn terminal_update_has_no_bootstrap() {
        let mut l = QLearning::new(ProblemShape::new(1, 1), cfg());
        l.observe(StateId::new(0), ActionId::new(0), 100.0, Outcome::Terminal);
        assert!((l.q().value(StateId::new(0), ActionId::new(0)) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_uses_max_over_next_actions() {
        let mut l = QLearning::new(ProblemShape::new(2, 2), cfg());
        l.q_mut().set(StateId::new(1), ActionId::new(1), 10.0);
        l.observe(
            StateId::new(0),
            ActionId::new(0),
            0.0,
            // SARSA would bootstrap from next_action=0 (value 0); Q-learning
            // must use the max (value 10) regardless.
            Outcome::Continue { next_state: StateId::new(1), next_action: ActionId::new(0) },
        );
        assert!((l.q().value(StateId::new(0), ActionId::new(0)) - 0.3 * 9.0).abs() < 1e-12);
    }

    #[test]
    fn solves_the_chain() {
        let mut l = QLearning::new(testutil::chain_shape(), cfg());
        testutil::train_on_chain(&mut l, 200, 42);
        testutil::assert_chain_solved(&l);
    }

    #[test]
    fn updates_counter_increments() {
        let mut l = QLearning::new(ProblemShape::new(1, 1), cfg());
        assert_eq!(l.updates(), 0);
        l.observe(StateId::new(0), ActionId::new(0), 1.0, Outcome::Terminal);
        l.observe(StateId::new(0), ActionId::new(0), 1.0, Outcome::Terminal);
        assert_eq!(l.updates(), 2);
    }

    #[test]
    fn decaying_alpha_shrinks_step_size() {
        let cfg = TdConfig::new(Schedule::exponential(1.0, 0.5, 0.0), 0.0);
        let mut l = QLearning::new(ProblemShape::new(1, 1), cfg);
        let (s, a) = (StateId::new(0), ActionId::new(0));
        l.observe(s, a, 1.0, Outcome::Terminal); // alpha=1: Q = 1
        assert!((l.q().value(s, a) - 1.0).abs() < 1e-12);
        l.observe(s, a, 2.0, Outcome::Terminal); // alpha=0.5: Q = 1 + 0.5*(2-1)
        assert!((l.q().value(s, a) - 1.5).abs() < 1e-12);
    }
}
