//! Expected SARSA (van Seijen et al. 2009).

use crate::algo::{Outcome, TdConfig, TdControl};
use crate::qtable::QTable;
use crate::space::{ActionId, ProblemShape, StateId};

/// Expected SARSA with an ε-greedy behaviour model:
/// `Q(s,a) ← Q(s,a) + α [r + γ Σ_a' π(a'|s') Q(s',a') − Q(s,a)]`.
///
/// Bootstrapping from the *expectation* under the policy instead of the
/// sampled next action removes the variance SARSA inherits from
/// exploration. The ε used for the expectation should match the behaviour
/// policy's ε.
///
/// # Examples
///
/// ```
/// use coreda_rl::algo::{ExpectedSarsa, Outcome, TdConfig, TdControl};
/// use coreda_rl::schedule::Schedule;
/// use coreda_rl::space::{ActionId, ProblemShape, StateId};
///
/// let cfg = TdConfig::new(Schedule::constant(1.0), 1.0);
/// let mut learner = ExpectedSarsa::new(ProblemShape::new(2, 2), cfg, 0.0);
/// learner.begin_episode();
/// learner.observe(StateId::new(0), ActionId::new(0), 3.0, Outcome::Terminal);
/// assert_eq!(learner.q().value(StateId::new(0), ActionId::new(0)), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExpectedSarsa {
    q: QTable,
    cfg: TdConfig,
    epsilon: f64,
    updates: u64,
}

impl ExpectedSarsa {
    /// Creates a learner whose expectation assumes an ε-greedy policy with
    /// the given `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 1]`.
    #[must_use]
    pub fn new(shape: ProblemShape, cfg: TdConfig, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1], got {epsilon}");
        ExpectedSarsa { q: QTable::new(shape), cfg, epsilon, updates: 0 }
    }

    /// The ε assumed by the expectation.
    #[must_use]
    pub const fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn expected_value(&self, s: StateId) -> f64 {
        let row = self.q.row(s);
        let n = row.len() as f64;
        let greedy = self.q.greedy_action(s).index();
        let uniform: f64 = row.iter().sum::<f64>() / n;
        self.epsilon * uniform + (1.0 - self.epsilon) * row[greedy]
    }
}

impl TdControl for ExpectedSarsa {
    fn q(&self) -> &QTable {
        &self.q
    }

    fn q_mut(&mut self) -> &mut QTable {
        &mut self.q
    }

    fn begin_episode(&mut self) {}

    fn observe(&mut self, s: StateId, a: ActionId, reward: f64, outcome: Outcome) {
        let bootstrap = match outcome {
            Outcome::Terminal => 0.0,
            Outcome::Continue { next_state, .. } => self.expected_value(next_state),
        };
        let delta = reward + self.cfg.gamma() * bootstrap - self.q.value(s, a);
        let alpha = self.cfg.alpha_at(self.updates);
        self.q.nudge(s, a, alpha * delta);
        self.updates += 1;
    }

    fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{testutil, QLearning};
    use crate::schedule::Schedule;

    fn cfg() -> TdConfig {
        TdConfig::new(Schedule::constant(0.3), 0.9)
    }

    #[test]
    fn epsilon_zero_matches_q_learning() {
        let shape = ProblemShape::new(3, 2);
        let mut es = ExpectedSarsa::new(shape, cfg(), 0.0);
        let mut ql = QLearning::new(shape, cfg());
        let script = [
            (0, 0, 1.0, Some((1, 0))),
            (1, 0, -0.5, Some((2, 1))),
            (2, 1, 4.0, None),
        ];
        for &(s, a, r, next) in &script {
            let out = match next {
                None => Outcome::Terminal,
                Some((ns, na)) => Outcome::Continue {
                    next_state: StateId::new(ns),
                    next_action: ActionId::new(na),
                },
            };
            es.observe(StateId::new(s), ActionId::new(a), r, out);
            ql.observe(StateId::new(s), ActionId::new(a), r, out);
        }
        for s in shape.state_ids() {
            for a in shape.action_ids() {
                assert!((es.q().value(s, a) - ql.q().value(s, a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn expectation_mixes_greedy_and_uniform() {
        let mut es = ExpectedSarsa::new(ProblemShape::new(2, 2), cfg(), 0.5);
        es.q_mut().set(StateId::new(1), ActionId::new(0), 0.0);
        es.q_mut().set(StateId::new(1), ActionId::new(1), 8.0);
        // Expected value in s1: 0.5 * mean(0, 8) + 0.5 * 8 = 2 + 4 = 6.
        assert!((es.expected_value(StateId::new(1)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn solves_the_chain() {
        let mut l = ExpectedSarsa::new(testutil::chain_shape(), cfg(), 0.2);
        testutil::train_on_chain(&mut l, 300, 13);
        testutil::assert_chain_solved(&l);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn bad_epsilon_rejected() {
        let _ = ExpectedSarsa::new(ProblemShape::new(1, 1), cfg(), -0.1);
    }
}
