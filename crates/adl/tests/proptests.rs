//! Property-based tests for the ADL domain model.

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::dataset;
use coreda_adl::intern::NameTable;
use coreda_adl::episode::{Episode, EpisodeEvent, EpisodeGenerator};
use coreda_adl::patient::PatientProfile;
use coreda_adl::routine::{Routine, RoutineSet};
use coreda_adl::step::{Step, StepId};
use coreda_adl::tool::{Tool, ToolId};
use coreda_des::rng::SimRng;
use coreda_sensornet::signal::SignalModel;
use proptest::prelude::*;

/// An arbitrary ADL with 2–8 steps and matching tools.
fn arb_spec() -> impl Strategy<Value = AdlSpec> {
    (2usize..=8).prop_map(|n| {
        let tools: Vec<Tool> = (0..n)
            .map(|i| {
                Tool::new(
                    ToolId::new(100 + i as u16),
                    format!("tool-{i}"),
                    SignalModel::accelerometer(0.03, 0.45, 0.5),
                )
            })
            .collect();
        let steps: Vec<Step> = (0..n)
            .map(|i| {
                Step::new(format!("step {i}"), ToolId::new(100 + i as u16), 3.0 + i as f64, 0.5)
            })
            .collect();
        AdlSpec::new("Generated", tools, steps)
    })
}

proptest! {
    /// Any permutation of a spec's steps is a valid routine, and its
    /// transition list has exactly len−1 entries starting from idle.
    #[test]
    fn permutations_are_valid_routines(spec in arb_spec(), seed in any::<u64>()) {
        let mut ids = spec.step_ids();
        let mut rng = SimRng::seed_from(seed);
        rng.shuffle(&mut ids);
        let routine = Routine::new(&spec, ids.clone());
        let transitions = routine.transitions();
        prop_assert_eq!(transitions.len(), ids.len() - 1);
        prop_assert_eq!(transitions[0].0, StepId::IDLE);
        // next_after agrees with the transition list.
        for &(_, cur, next) in &transitions {
            prop_assert_eq!(routine.next_after(cur), Some(next));
        }
        prop_assert_eq!(routine.next_after(routine.last()), None);
    }

    /// Generated episodes always contain the routine as an in-order
    /// subsequence, whatever the patient profile.
    #[test]
    fn episodes_always_complete_the_routine(
        wrong in 0.0f64..0.4,
        forget in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let profile = PatientProfile::builder("p")
            .wrong_tool_prob(wrong)
            .forget_prob(forget)
            .build();
        let gen = EpisodeGenerator::new(
            tea.clone(),
            RoutineSet::single(routine.clone()),
            profile,
        );
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..10 {
            let seq = gen.generate(&mut rng).step_ids();
            let mut want = routine.steps().iter();
            let mut next = want.next();
            for s in &seq {
                if Some(s) == next {
                    next = want.next();
                }
            }
            prop_assert!(next.is_none(), "routine not completed in {seq:?}");
        }
    }

    /// Clean episodes are exactly the sampled routine.
    #[test]
    fn clean_episodes_are_exact(spec in arb_spec(), seed in any::<u64>()) {
        let routine = Routine::canonical(&spec);
        let gen = EpisodeGenerator::new(
            spec.clone(),
            RoutineSet::single(routine.clone()),
            PatientProfile::unimpaired("p"),
        );
        let mut rng = SimRng::seed_from(seed);
        let ep = gen.generate_clean(&mut rng);
        prop_assert_eq!(ep.step_ids(), routine.steps().to_vec());
        prop_assert!(ep.is_clean());
    }

    /// Step ids mirror tool ids bijectively, and idle never aliases a tool.
    #[test]
    fn step_tool_bijection(raw in 1u16..u16::MAX) {
        let tool = ToolId::new(raw);
        let step = StepId::from_tool(tool);
        prop_assert_eq!(step.tool(), Some(tool));
        prop_assert!(!step.is_idle());
        prop_assert_eq!(StepId::from_raw(raw), step);
    }

    /// Weighted routine sets sample each member with roughly its weight.
    #[test]
    fn routine_sets_respect_weights(weight_a in 1.0f64..9.0, seed in any::<u64>()) {
        let tea = catalog::tea_making();
        let ids = tea.step_ids();
        let a = Routine::canonical(&tea);
        let b = Routine::new(&tea, vec![ids[1], ids[0], ids[2], ids[3]]);
        let set = RoutineSet::weighted(vec![(a.clone(), weight_a), (b, 1.0)]);
        let mut rng = SimRng::seed_from(seed);
        let n = 2000;
        let hits = (0..n).filter(|_| set.sample(&mut rng) == &a).count();
        let expect = weight_a / (weight_a + 1.0);
        let freq = hits as f64 / n as f64;
        prop_assert!((freq - expect).abs() < 0.06,
            "weight {weight_a}: expected {expect:.2}, got {freq:.2}");
    }

    /// Any episode list round-trips through the dataset format.
    #[test]
    fn dataset_roundtrip(
        episodes in proptest::collection::vec(
            proptest::collection::vec((0u16..30, 1u64..100_000), 1..10),
            0..8,
        ),
    ) {
        let episodes: Vec<Episode> = episodes
            .into_iter()
            .map(|evs| Episode {
                adl: "G".to_owned(),
                events: evs
                    .into_iter()
                    .map(|(step, ms)| EpisodeEvent {
                        step: StepId::from_raw(step),
                        duration: coreda_des::time::SimDuration::from_millis(ms),
                    })
                    .collect(),
            })
            .collect();
        let text = dataset::write_episodes("G", &episodes);
        let (adl, parsed) = dataset::parse_episodes(&text).unwrap();
        prop_assert_eq!(adl, "G");
        prop_assert_eq!(parsed, episodes);
    }

    /// Dataset parsing never panics on arbitrary text.
    #[test]
    fn dataset_parse_is_total(garbage in "\\PC{0,300}") {
        let _ = dataset::parse_episodes(&garbage);
    }

    /// Patient step durations respect the 1-second floor and scale with
    /// the speed multiplier in expectation.
    #[test]
    fn durations_floored_and_scaled(speed in 0.5f64..3.0, seed in any::<u64>()) {
        let tea = catalog::tea_making();
        let step = &tea.steps()[0]; // 6 s nominal
        let p = PatientProfile::builder("p").speed(speed).build();
        let mut rng = SimRng::seed_from(seed);
        let n = 300;
        let mut total = 0.0;
        for _ in 0..n {
            let d = p.step_duration(step, &mut rng);
            prop_assert!(d.as_secs_f64() >= 1.0);
            total += d.as_secs_f64();
        }
        let mean = total / f64::from(n);
        let expected = (step.mean_duration_s() * speed).max(1.0);
        prop_assert!((mean - expected).abs() < expected * 0.2 + 0.5,
            "mean {mean:.2} vs expected {expected:.2}");
    }

    /// Interned names round-trip: every id resolves back to the exact
    /// string that produced it, and `get` agrees with `intern`.
    #[test]
    fn intern_round_trips(names in proptest::collection::vec("\\PC{1,12}", 1..20)) {
        let mut table = NameTable::new();
        let ids: Vec<_> = names.iter().map(|n| table.intern(n)).collect();
        for (name, id) in names.iter().zip(&ids) {
            prop_assert_eq!(table.resolve(*id), name.as_str());
            prop_assert_eq!(table.get(name), Some(*id));
        }
    }

    /// Re-interning is idempotent: a second pass returns the same ids and
    /// grows nothing, and `len` counts distinct names only.
    #[test]
    fn intern_is_idempotent(names in proptest::collection::vec("\\PC{1,12}", 1..20)) {
        let mut table = NameTable::new();
        let first: Vec<_> = names.iter().map(|n| table.intern(n)).collect();
        let len_after_first = table.len();
        let second: Vec<_> = names.iter().map(|n| table.intern(n)).collect();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(table.len(), len_after_first);
        let distinct: std::collections::BTreeSet<&str> =
            names.iter().map(String::as_str).collect();
        prop_assert_eq!(table.len(), distinct.len());
    }

    /// Once issued, an id is pinned to its name: re-interning the same
    /// names in any other order never reassigns them, and fresh ids stay
    /// dense.
    #[test]
    fn intern_ids_survive_reordered_reinserts(
        names in proptest::collection::vec("\\PC{1,12}", 1..20),
        seed in any::<u64>(),
    ) {
        let mut table = NameTable::new();
        let original: Vec<_> = names.iter().map(|n| table.intern(n)).collect();
        let mut shuffled = names.clone();
        SimRng::seed_from(seed).shuffle(&mut shuffled);
        for n in &shuffled {
            let again = table.intern(n);
            let first_seen = names.iter().position(|m| m == n).expect("from the same list");
            prop_assert_eq!(again, original[first_seen], "{n:?} was reassigned");
        }
        // Ids index densely into the table.
        for id in original {
            prop_assert!(id.index() < table.len());
        }
    }
}
