//! String interning for hot-path event payloads.
//!
//! Session tracking and live-episode logging emit events thousands of
//! times per simulated hour across a metro-scale run; carrying `String`
//! activity and tool names in those events means a clone per event. A
//! [`NameTable`] interns each distinct name once and hands out [`NameId`]s
//! — `Copy` `u32` handles — so events stay allocation-free and names are
//! resolved back to `&str` only at render time.

use std::collections::HashMap;

/// A compact, `Copy` handle to a name interned in a [`NameTable`].
///
/// Ids are only meaningful relative to the table that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(u32);

impl NameId {
    /// The id's raw index into its table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw index, e.g. when decoding a checkpoint.
    /// Only meaningful against the same (deterministically rebuilt) table
    /// that issued the original id.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NameId(u32::try_from(index).expect("name index fits in u32"))
    }
}

/// An append-only intern table mapping names to stable [`NameId`]s.
///
/// # Examples
///
/// ```
/// use coreda_adl::intern::NameTable;
///
/// let mut names = NameTable::new();
/// let tea = names.intern("Tea-making");
/// assert_eq!(names.intern("Tea-making"), tea); // stable
/// assert_eq!(names.resolve(tea), "Tea-making");
/// ```
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Vec<String>,
    index: HashMap<String, NameId>,
}

impl NameTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, interning it on first sight.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NameId(u32::try_from(self.names.len()).expect("more than u32::MAX names"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name without inserting.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<NameId> {
        self.index.get(name).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different table.
    #[must_use]
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct names interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("kettle");
        let b = t.intern("cup");
        assert_ne!(a, b);
        assert_eq!(t.intern("kettle"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = NameTable::new();
        let id = t.intern("Tooth-brushing");
        assert_eq!(t.resolve(id), "Tooth-brushing");
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = NameTable::new();
        assert_eq!(t.get("absent"), None);
        let id = t.intern("present");
        assert_eq!(t.get("present"), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_index_in_insertion_order() {
        let mut t = NameTable::new();
        assert_eq!(t.intern("a").index(), 0);
        assert_eq!(t.intern("b").index(), 1);
        assert_eq!(t.intern("a").index(), 0);
    }
}
