//! ADL specifications and the paper's two canonical activities.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::step::{Step, StepId};
use crate::tool::{Tool, ToolId};

/// The specification of one activity of daily living: its tools and the
/// canonical ordering of its steps (Table 2).
///
/// A spec is *descriptive*: the canonical order is the order most people
/// perform the activity in. Each user's personally learned order lives in
/// a [`Routine`](crate::routine::Routine).
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
///
/// let tea = catalog::tea_making();
/// assert_eq!(tea.steps().len(), 4);
/// assert_eq!(tea.steps()[1].name(), "Pour hot water into kettle");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdlSpec {
    name: String,
    tools: Vec<Tool>,
    steps: Vec<Step>,
}

impl AdlSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, a step references a tool that is not in
    /// `tools`, or two tools share an id.
    #[must_use]
    pub fn new(name: impl Into<String>, tools: Vec<Tool>, steps: Vec<Step>) -> Self {
        let name = name.into();
        assert!(!steps.is_empty(), "an ADL needs at least one step");
        for (i, a) in tools.iter().enumerate() {
            for b in &tools[i + 1..] {
                assert!(a.id() != b.id(), "duplicate tool id {id}", id = a.id());
            }
        }
        for step in &steps {
            assert!(
                tools.iter().any(|t| t.id() == step.tool()),
                "step '{step}' uses unknown tool {tool}",
                step = step.name(),
                tool = step.tool()
            );
        }
        AdlSpec { name, tools, steps }
    }

    /// The activity's name ("Tea-making").
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tools involved.
    #[must_use]
    pub fn tools(&self) -> &[Tool] {
        &self.tools
    }

    /// The canonical step order.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Looks a tool up by id.
    #[must_use]
    pub fn tool(&self, id: ToolId) -> Option<&Tool> {
        self.tools.iter().find(|t| t.id() == id)
    }

    /// Looks a step up by its step id.
    #[must_use]
    pub fn step(&self, id: StepId) -> Option<&Step> {
        self.steps.iter().find(|s| s.id() == id)
    }

    /// The position of `id` in the canonical order.
    #[must_use]
    pub fn step_index(&self, id: StepId) -> Option<usize> {
        self.steps.iter().position(|s| s.id() == id)
    }

    /// The step id of the final (terminal) step.
    #[must_use]
    pub fn terminal_step(&self) -> StepId {
        self.steps.last().expect("validated: non-empty").id()
    }

    /// The step ids in canonical order.
    #[must_use]
    pub fn step_ids(&self) -> Vec<StepId> {
        self.steps.iter().map(Step::id).collect()
    }
}

impl fmt::Display for AdlSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} steps)", self.name, self.steps.len())
    }
}

/// The paper's two evaluated ADLs, with tool ids, sensors, durations and
/// signal behaviour calibrated to reproduce Table 2 and the precision
/// *shape* of Table 3 (short steps — drying with the towel, pouring hot
/// water — have the weakest signals and the lowest extract precision).
pub mod catalog {
    use coreda_sensornet::signal::SignalModel;

    use super::{AdlSpec, Step, Tool, ToolId};

    /// Tool id of the toothpaste tube.
    pub const PASTE_TUBE: u16 = 1;
    /// Tool id of the toothbrush.
    pub const BRUSH: u16 = 2;
    /// Tool id of the gargling cup.
    pub const CUP: u16 = 3;
    /// Tool id of the towel.
    pub const TOWEL: u16 = 4;
    /// Tool id of the tea box.
    pub const TEA_BOX: u16 = 5;
    /// Tool id of the electronic pot (pressure sensor).
    pub const POT: u16 = 6;
    /// Tool id of the kettle.
    pub const KETTLE: u16 = 7;
    /// Tool id of the tea cup.
    pub const TEA_CUP: u16 = 8;

    /// Accelerometer noise floor shared by every accelerometer tool, in g.
    const ACC_NOISE: f64 = 0.03;
    /// Accelerometer burst amplitude while manipulated, in g.
    const ACC_AMP: f64 = 0.45;

    /// The Tooth-brushing ADL (Table 2, upper half).
    #[must_use]
    pub fn tooth_brushing() -> AdlSpec {
        let acc = |duty: f64| SignalModel::accelerometer(ACC_NOISE, ACC_AMP, duty);
        let tools = vec![
            Tool::new(ToolId::new(PASTE_TUBE), "paste-tube", acc(0.28)),
            Tool::new(ToolId::new(BRUSH), "toothbrush", acc(0.70)),
            Tool::new(ToolId::new(CUP), "cup", acc(0.60)),
            // Drying with a towel is brief and gentle: low duty → the
            // paper's weakest extract precision (85 %).
            Tool::new(ToolId::new(TOWEL), "towel", acc(0.30)),
        ];
        let steps = vec![
            Step::new("Put toothpaste on the brush", ToolId::new(PASTE_TUBE), 4.0, 0.8),
            Step::new("Brush the teeth", ToolId::new(BRUSH), 10.0, 2.0),
            Step::new("Gargle with water", ToolId::new(CUP), 6.0, 1.2),
            Step::new("Dry with a towel", ToolId::new(TOWEL), 3.0, 0.6),
        ];
        AdlSpec::new("Tooth-brushing", tools, steps)
    }

    /// The Tea-making ADL (Table 2, lower half).
    #[must_use]
    pub fn tea_making() -> AdlSpec {
        let acc = |duty: f64| SignalModel::accelerometer(ACC_NOISE, ACC_AMP, duty);
        let tools = vec![
            Tool::new(ToolId::new(TEA_BOX), "tea-box", acc(0.60)),
            // Pouring hot water is one brief press on the pot: the paper's
            // lowest extract precision (80 %).
            Tool::new(ToolId::new(POT), "electronic-pot", SignalModel::pressure(0.3, 3.0, 0.26)),
            Tool::new(ToolId::new(KETTLE), "kettle", acc(0.60)),
            Tool::new(ToolId::new(TEA_CUP), "tea-cup", acc(0.26)),
        ];
        let steps = vec![
            Step::new("Put tea-leaf into kettle", ToolId::new(TEA_BOX), 6.0, 1.2),
            Step::new("Pour hot water into kettle", ToolId::new(POT), 3.0, 0.6),
            Step::new("Pour tea into tea cup", ToolId::new(KETTLE), 5.0, 1.0),
            Step::new("Drink a cup of tea", ToolId::new(TEA_CUP), 4.0, 0.8),
        ];
        AdlSpec::new("Tea-making", tools, steps)
    }

    /// Tool id of the wardrobe door.
    pub const WARDROBE: u16 = 9;
    /// Tool id of the shirt hanger.
    pub const SHIRT: u16 = 10;
    /// Tool id of the trouser hanger.
    pub const TROUSERS: u16 = 11;
    /// Tool id of the sock drawer.
    pub const SOCKS: u16 = 12;
    /// Tool id of the shoe rack.
    pub const SHOES: u16 = 13;

    /// The Dressing ADL — the paper's motivating case for multi-routine
    /// plans ("for some ADLs, such as dressing, one user may have
    /// multiple routines to complete it", future work §4.1). Not part of
    /// the paper's evaluation; provided for the multi-routine studies.
    #[must_use]
    pub fn dressing() -> AdlSpec {
        let acc = |duty: f64| SignalModel::accelerometer(ACC_NOISE, ACC_AMP, duty);
        let tools = vec![
            Tool::new(ToolId::new(WARDROBE), "wardrobe", acc(0.55)),
            Tool::new(ToolId::new(SHIRT), "shirt-hanger", acc(0.50)),
            Tool::new(ToolId::new(TROUSERS), "trouser-hanger", acc(0.50)),
            Tool::new(ToolId::new(SOCKS), "sock-drawer", acc(0.45)),
            Tool::new(ToolId::new(SHOES), "shoe-rack", acc(0.50)),
        ];
        let steps = vec![
            Step::new("Open the wardrobe", ToolId::new(WARDROBE), 4.0, 0.8),
            Step::new("Put on the shirt", ToolId::new(SHIRT), 20.0, 4.0),
            Step::new("Put on the trousers", ToolId::new(TROUSERS), 25.0, 5.0),
            Step::new("Put on the socks", ToolId::new(SOCKS), 15.0, 3.0),
            Step::new("Put on the shoes", ToolId::new(SHOES), 20.0, 4.0),
        ];
        AdlSpec::new("Dressing", tools, steps)
    }

    /// The plausible orderings of [`dressing`]: some people dress
    /// top-down, some start with the trousers, some do socks before
    /// trousers. All end at the shoes.
    #[must_use]
    pub fn dressing_routines(spec: &AdlSpec) -> crate::routine::RoutineSet {
        use crate::routine::{Routine, RoutineSet};
        let id = crate::step::StepId::from_raw;
        let canonical = Routine::canonical(spec);
        let trousers_first = Routine::new(
            spec,
            vec![id(WARDROBE), id(TROUSERS), id(SHIRT), id(SOCKS), id(SHOES)],
        );
        let socks_early = Routine::new(
            spec,
            vec![id(WARDROBE), id(SOCKS), id(SHIRT), id(TROUSERS), id(SHOES)],
        );
        RoutineSet::weighted(vec![
            (canonical, 2.0),
            (trousers_first, 1.0),
            (socks_early, 1.0),
        ])
    }

    /// Every ADL in the catalog (the paper's two plus the dressing
    /// extension).
    #[must_use]
    pub fn all() -> Vec<AdlSpec> {
        vec![tooth_brushing(), tea_making(), dressing()]
    }

    /// The two ADLs the paper evaluates (Tables 2–4, Figure 4).
    #[must_use]
    pub fn paper_adls() -> Vec<AdlSpec> {
        vec![tooth_brushing(), tea_making()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_sensornet::sensors::SensorKind;

    /// Table 2 of the paper, verbatim: step names, tool sensors.
    #[test]
    fn table2_tooth_brushing() {
        let adl = catalog::tooth_brushing();
        let names: Vec<&str> = adl.steps().iter().map(Step::name).collect();
        assert_eq!(
            names,
            vec![
                "Put toothpaste on the brush",
                "Brush the teeth",
                "Gargle with water",
                "Dry with a towel",
            ]
        );
        for step in adl.steps() {
            let tool = adl.tool(step.tool()).unwrap();
            assert_eq!(tool.sensor(), SensorKind::Accelerometer);
        }
    }

    #[test]
    fn table2_tea_making() {
        let adl = catalog::tea_making();
        let names: Vec<&str> = adl.steps().iter().map(Step::name).collect();
        assert_eq!(
            names,
            vec![
                "Put tea-leaf into kettle",
                "Pour hot water into kettle",
                "Pour tea into tea cup",
                "Drink a cup of tea",
            ]
        );
        // "Pressure on pot", accelerometer on the rest.
        for step in adl.steps() {
            let tool = adl.tool(step.tool()).unwrap();
            let expected = if tool.name() == "electronic-pot" {
                SensorKind::Pressure
            } else {
                SensorKind::Accelerometer
            };
            assert_eq!(tool.sensor(), expected, "wrong sensor on {}", tool.name());
        }
    }

    #[test]
    fn tool_ids_are_globally_unique() {
        let mut seen = std::collections::HashSet::new();
        for adl in catalog::all() {
            for tool in adl.tools() {
                assert!(seen.insert(tool.id()), "tool id {} reused", tool.id());
            }
        }
    }

    #[test]
    fn lookups_work() {
        let adl = catalog::tea_making();
        let pot = ToolId::new(catalog::POT);
        assert_eq!(adl.tool(pot).unwrap().name(), "electronic-pot");
        assert_eq!(adl.step(StepId::from_tool(pot)).unwrap().name(), "Pour hot water into kettle");
        assert_eq!(adl.step_index(StepId::from_tool(pot)), Some(1));
        assert_eq!(adl.terminal_step(), StepId::from_raw(catalog::TEA_CUP));
        assert!(adl.tool(ToolId::new(99)).is_none());
        assert!(adl.step(StepId::from_raw(99)).is_none());
    }

    #[test]
    fn short_steps_have_weak_signals() {
        // The calibration behind Table 3's shape: towel and pot have the
        // lowest duty cycles in their ADLs.
        let tooth = catalog::tooth_brushing();
        let towel_duty = tooth.tool(ToolId::new(catalog::TOWEL)).unwrap().signal().duty();
        for tool in tooth.tools() {
            if tool.id() != ToolId::new(catalog::TOWEL)
                && tool.id() != ToolId::new(catalog::PASTE_TUBE)
            {
                assert!(tool.signal().duty() > towel_duty);
            }
        }
        let tea = catalog::tea_making();
        let pot_duty = tea.tool(ToolId::new(catalog::POT)).unwrap().signal().duty();
        for tool in tea.tools() {
            if tool.id() != ToolId::new(catalog::POT) && tool.id() != ToolId::new(catalog::TEA_CUP)
            {
                assert!(tool.signal().duty() > pot_duty);
            }
        }
    }

    #[test]
    fn dressing_extension_is_well_formed() {
        let dressing = catalog::dressing();
        assert_eq!(dressing.steps().len(), 5);
        assert_eq!(dressing.terminal_step(), StepId::from_raw(catalog::SHOES));
        let routines = catalog::dressing_routines(&dressing);
        assert_eq!(routines.len(), 3, "three plausible dressing orders");
        // All routines end at the shoes — you dress before leaving.
        for (r, _) in routines.routines() {
            assert_eq!(r.last(), StepId::from_raw(catalog::SHOES));
            assert_eq!(r.first(), StepId::from_raw(catalog::WARDROBE));
        }
    }

    #[test]
    fn custom_adl_can_be_defined() {
        // Design criterion 4: "easily generalize to other ADLs".
        let tools = vec![Tool::new(
            ToolId::new(20),
            "soap",
            coreda_sensornet::signal::SignalModel::accelerometer(0.03, 0.5, 0.6),
        )];
        let steps = vec![Step::new("Lather hands", ToolId::new(20), 5.0, 1.0)];
        let adl = AdlSpec::new("Hand-washing", tools, steps);
        assert_eq!(adl.to_string(), "Hand-washing (1 steps)");
    }

    #[test]
    #[should_panic(expected = "unknown tool")]
    fn step_with_unknown_tool_rejected() {
        let _ = AdlSpec::new(
            "bad",
            vec![],
            vec![Step::new("x", ToolId::new(1), 1.0, 0.0)],
        );
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_adl_rejected() {
        let _ = AdlSpec::new("bad", vec![], vec![]);
    }
}
