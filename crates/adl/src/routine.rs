//! Personal routines: the order a particular user performs an ADL in.
//!
//! "Keep the dementia patients do ADLs as they did before. Therefore, a
//! guidance system must have the capability to learn different patients'
//! routines of ADLs." A [`Routine`] is one user's step order; a
//! [`RoutineSet`] holds several alternatives (the paper's "multi-routine
//! plan" future-work item, needed for ADLs like dressing).

use coreda_des::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::activity::AdlSpec;
use crate::step::StepId;

/// One user's step order for an ADL: a permutation of the spec's steps.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_adl::routine::Routine;
///
/// let tea = catalog::tea_making();
/// let routine = Routine::canonical(&tea);
/// assert_eq!(routine.len(), 4);
/// assert_eq!(routine.steps()[0], tea.steps()[0].id());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Routine {
    steps: Vec<StepId>,
}

impl Routine {
    /// The spec's canonical order.
    #[must_use]
    pub fn canonical(spec: &AdlSpec) -> Self {
        Routine { steps: spec.step_ids() }
    }

    /// A custom order over the spec's steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is not a permutation of the spec's step ids.
    #[must_use]
    pub fn new(spec: &AdlSpec, steps: Vec<StepId>) -> Self {
        let mut expected = spec.step_ids();
        let mut got = steps.clone();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(
            expected, got,
            "a routine must be a permutation of the ADL's steps"
        );
        Routine { steps }
    }

    /// The ordered steps.
    #[must_use]
    pub fn steps(&self) -> &[StepId] {
        &self.steps
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the routine has no steps (never true for validated specs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step after `current`, or `None` if `current` is last (or not in
    /// the routine).
    #[must_use]
    pub fn next_after(&self, current: StepId) -> Option<StepId> {
        let idx = self.steps.iter().position(|&s| s == current)?;
        self.steps.get(idx + 1).copied()
    }

    /// The first step.
    ///
    /// # Panics
    ///
    /// Panics if the routine is empty.
    #[must_use]
    pub fn first(&self) -> StepId {
        *self.steps.first().expect("routine must not be empty")
    }

    /// The terminal step.
    ///
    /// # Panics
    ///
    /// Panics if the routine is empty.
    #[must_use]
    pub fn last(&self) -> StepId {
        *self.steps.last().expect("routine must not be empty")
    }

    /// The `(previous, current) → next` transitions of this routine,
    /// including the episode-start transition whose previous step is
    /// [`StepId::IDLE`].
    ///
    /// These pairs are exactly the states of the planner's MDP, so they
    /// double as the reference set for convergence measurement.
    #[must_use]
    pub fn transitions(&self) -> Vec<(StepId, StepId, StepId)> {
        let mut out = Vec::with_capacity(self.steps.len().saturating_sub(1));
        for (i, &cur) in self.steps.iter().enumerate() {
            if let Some(&next) = self.steps.get(i + 1) {
                let prev = if i == 0 { StepId::IDLE } else { self.steps[i - 1] };
                out.push((prev, cur, next));
            }
        }
        out
    }
}

/// A weighted set of alternative routines for the same ADL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutineSet {
    routines: Vec<(Routine, f64)>,
}

impl RoutineSet {
    /// A set with a single routine.
    #[must_use]
    pub fn single(routine: Routine) -> Self {
        RoutineSet { routines: vec![(routine, 1.0)] }
    }

    /// A weighted set.
    ///
    /// # Panics
    ///
    /// Panics if `routines` is empty, a weight is non-positive, or all
    /// routines do not have the same length.
    #[must_use]
    pub fn weighted(routines: Vec<(Routine, f64)>) -> Self {
        assert!(!routines.is_empty(), "a routine set needs at least one routine");
        let len = routines[0].0.len();
        for (r, w) in &routines {
            assert!(*w > 0.0, "routine weights must be positive");
            assert_eq!(r.len(), len, "all routines must cover the same steps");
        }
        RoutineSet { routines }
    }

    /// The routines and weights.
    #[must_use]
    pub fn routines(&self) -> &[(Routine, f64)] {
        &self.routines
    }

    /// Number of alternative routines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routines.len()
    }

    /// Whether the set is empty (never true for validated sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routines.is_empty()
    }

    /// Samples a routine proportionally to the weights.
    pub fn sample<'a>(&'a self, rng: &mut SimRng) -> &'a Routine {
        let total: f64 = self.routines.iter().map(|(_, w)| w).sum();
        let mut draw = rng.uniform() * total;
        for (r, w) in &self.routines {
            draw -= w;
            if draw <= 0.0 {
                return r;
            }
        }
        &self.routines.last().expect("validated: non-empty").0
    }

    /// The union of `(prev, cur) → next` transitions over all routines.
    /// A `(prev, cur)` pair that maps to different next steps in different
    /// routines appears once per distinct next step.
    #[must_use]
    pub fn transitions(&self) -> Vec<(StepId, StepId, StepId)> {
        let mut out: Vec<(StepId, StepId, StepId)> = Vec::new();
        for (r, _) in &self.routines {
            for t in r.transitions() {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::catalog;

    #[test]
    fn canonical_matches_spec_order() {
        let tea = catalog::tea_making();
        let r = Routine::canonical(&tea);
        assert_eq!(r.steps(), tea.step_ids().as_slice());
        assert_eq!(r.first(), tea.steps()[0].id());
        assert_eq!(r.last(), tea.terminal_step());
    }

    #[test]
    fn next_after_walks_the_order() {
        let tea = catalog::tea_making();
        let r = Routine::canonical(&tea);
        let ids = tea.step_ids();
        assert_eq!(r.next_after(ids[0]), Some(ids[1]));
        assert_eq!(r.next_after(ids[3]), None);
        assert_eq!(r.next_after(StepId::from_raw(99)), None);
    }

    #[test]
    fn custom_permutation_accepted() {
        let tea = catalog::tea_making();
        let ids = tea.step_ids();
        let reordered = vec![ids[1], ids[0], ids[2], ids[3]];
        let r = Routine::new(&tea, reordered.clone());
        assert_eq!(r.steps(), reordered.as_slice());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_rejected() {
        let tea = catalog::tea_making();
        let ids = tea.step_ids();
        let _ = Routine::new(&tea, vec![ids[0], ids[0], ids[2], ids[3]]);
    }

    #[test]
    fn transitions_include_idle_start() {
        let tea = catalog::tea_making();
        let r = Routine::canonical(&tea);
        let trans = r.transitions();
        assert_eq!(trans.len(), 3);
        assert_eq!(trans[0].0, StepId::IDLE);
        assert_eq!(trans[0].1, r.first());
        // Every consecutive pair appears.
        let ids = tea.step_ids();
        assert_eq!(trans[1], (ids[0], ids[1], ids[2]));
        assert_eq!(trans[2], (ids[1], ids[2], ids[3]));
    }

    #[test]
    fn routine_set_samples_by_weight() {
        let tea = catalog::tea_making();
        let ids = tea.step_ids();
        let a = Routine::canonical(&tea);
        let b = Routine::new(&tea, vec![ids[1], ids[0], ids[2], ids[3]]);
        let set = RoutineSet::weighted(vec![(a.clone(), 9.0), (b.clone(), 1.0)]);
        let mut rng = SimRng::seed_from(42);
        let a_count = (0..2000).filter(|_| set.sample(&mut rng) == &a).count();
        assert!((1650..1950).contains(&a_count), "weight-9 routine drawn {a_count}/2000");
    }

    #[test]
    fn routine_set_union_transitions() {
        let tea = catalog::tea_making();
        let ids = tea.step_ids();
        let a = Routine::canonical(&tea);
        let b = Routine::new(&tea, vec![ids[1], ids[0], ids[2], ids[3]]);
        let set = RoutineSet::weighted(vec![(a, 1.0), (b, 1.0)]);
        let trans = set.transitions();
        // Both routines contribute 3 transitions each; all distinct here.
        assert_eq!(trans.len(), 6);
        let unique: std::collections::HashSet<_> = trans.iter().collect();
        assert_eq!(unique.len(), trans.len());
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let tea = catalog::tea_making();
        let _ = RoutineSet::weighted(vec![(Routine::canonical(&tea), 0.0)]);
    }
}
