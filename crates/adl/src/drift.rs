//! Longitudinal dementia progression.
//!
//! The paper's motivation is that "if the level of dementia worsens,
//! caregivers experience greater feelings of burden". This module models
//! that worsening: a [`SeverityTrajectory`] maps a day index to a
//! [`PatientProfile`] whose error probabilities have progressed, so
//! longitudinal studies can measure how the system's help scales with
//! decline.

use serde::{Deserialize, Serialize};

use crate::patient::PatientProfile;

/// How fast the disease progresses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeverityTrajectory {
    /// Wrong-tool probability on day 0.
    pub wrong_tool_start: f64,
    /// Freeze probability on day 0.
    pub forget_start: f64,
    /// Added to each error probability per day (linear progression).
    pub daily_increase: f64,
    /// Ceiling on each error probability.
    pub cap: f64,
    /// Prompt compliance on day 0.
    pub compliance_start: f64,
    /// Subtracted from compliance per day.
    pub compliance_decline: f64,
    /// Floor on compliance.
    pub compliance_floor: f64,
}

impl Default for SeverityTrajectory {
    /// A slow decline: roughly mild → severe over about a year.
    fn default() -> Self {
        SeverityTrajectory {
            wrong_tool_start: 0.08,
            forget_start: 0.05,
            daily_increase: 0.0006,
            cap: 0.30,
            compliance_start: 0.97,
            compliance_decline: 0.0004,
            compliance_floor: 0.80,
        }
    }
}

impl SeverityTrajectory {
    /// The patient's profile on `day`.
    ///
    /// # Examples
    ///
    /// ```
    /// use coreda_adl::drift::SeverityTrajectory;
    ///
    /// let t = SeverityTrajectory::default();
    /// let early = t.profile_on_day("Mr. Tanaka", 0);
    /// let late = t.profile_on_day("Mr. Tanaka", 365);
    /// assert!(late.forget_prob() > early.forget_prob());
    /// assert!(late.compliance() < early.compliance());
    /// ```
    #[must_use]
    pub fn profile_on_day(&self, name: &str, day: u32) -> PatientProfile {
        let d = f64::from(day);
        let wrong = (self.wrong_tool_start + self.daily_increase * d).min(self.cap);
        let forget = (self.forget_start + self.daily_increase * d).min(self.cap);
        let compliance =
            (self.compliance_start - self.compliance_decline * d).max(self.compliance_floor);
        // Pace also slows with decline, up to 1.8× nominal.
        let speed = (1.0 + d * 0.002).min(1.8);
        PatientProfile::builder(name)
            .wrong_tool_prob(wrong)
            .forget_prob(forget)
            .compliance(compliance)
            .speed(speed)
            .build()
    }

    /// First day on which both error probabilities have reached the cap.
    #[must_use]
    pub fn plateau_day(&self) -> u32 {
        if self.daily_increase <= 0.0 {
            return 0;
        }
        let worst_start = self.wrong_tool_start.min(self.forget_start);
        ((self.cap - worst_start) / self.daily_increase).ceil().max(0.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progression_is_monotone() {
        let t = SeverityTrajectory::default();
        let mut last_forget = 0.0;
        let mut last_compliance = 1.0;
        for day in (0..600).step_by(50) {
            let p = t.profile_on_day("x", day);
            assert!(p.forget_prob() >= last_forget);
            assert!(p.compliance() <= last_compliance);
            last_forget = p.forget_prob();
            last_compliance = p.compliance();
        }
    }

    #[test]
    fn probabilities_respect_caps() {
        let t = SeverityTrajectory::default();
        let late = t.profile_on_day("x", 10_000);
        assert!(late.wrong_tool_prob() <= t.cap);
        assert!(late.forget_prob() <= t.cap);
        assert!(late.compliance() >= t.compliance_floor);
        assert!(late.speed() <= 1.8);
    }

    #[test]
    fn day_zero_matches_start_values() {
        let t = SeverityTrajectory::default();
        let p = t.profile_on_day("x", 0);
        assert!((p.wrong_tool_prob() - t.wrong_tool_start).abs() < 1e-12);
        assert!((p.forget_prob() - t.forget_start).abs() < 1e-12);
        assert!((p.compliance() - t.compliance_start).abs() < 1e-12);
    }

    #[test]
    fn plateau_day_is_consistent() {
        let t = SeverityTrajectory::default();
        let day = t.plateau_day();
        let before = t.profile_on_day("x", day.saturating_sub(10));
        let at = t.profile_on_day("x", day + 1);
        assert!(at.forget_prob() >= before.forget_prob());
        assert!((at.forget_prob() - t.cap).abs() < 1e-9 || day == 0);
    }

    #[test]
    fn flat_trajectory_never_progresses() {
        let t = SeverityTrajectory { daily_increase: 0.0, compliance_decline: 0.0, ..SeverityTrajectory::default() };
        let early = t.profile_on_day("x", 0);
        let late = t.profile_on_day("x", 1000);
        assert_eq!(early.forget_prob(), late.forget_prob());
        assert_eq!(t.plateau_day(), 0);
    }
}
