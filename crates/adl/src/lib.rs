//! # coreda-adl — the activity-of-daily-living domain model
//!
//! Everything CoReDA knows about the *world*: tools with sensors strapped
//! to them, activities made of steps, the personal routines users perform
//! them in, and a stochastic patient whose slips and freezes replace the
//! human subject of the original study.
//!
//! - [`tool`] / [`step`] — [`ToolId`]s double as PAVENET uids; a
//!   [`StepId`] is "the ID of the tool mainly used in this step", with 0
//!   reserved for idleness, exactly as §2.1 defines;
//! - [`activity`] — validated [`AdlSpec`]s plus the paper's Table 2
//!   catalog (Tooth-brushing, Tea-making) with signal calibration chosen
//!   to reproduce Table 3's precision shape;
//! - [`routine`] — per-user step orders and weighted multi-routine sets
//!   (future work §4.1);
//! - [`patient`] — severity-parameterised behaviour: wrong-tool grabs,
//!   freezes, prompt compliance, pace;
//! - [`episode`] — generation of the "complete process of an ADL"
//!   training samples the planner learns from.
//!
//! # Examples
//!
//! ```
//! use coreda_adl::activity::catalog;
//! use coreda_adl::episode::EpisodeGenerator;
//! use coreda_adl::patient::PatientProfile;
//! use coreda_adl::routine::{Routine, RoutineSet};
//! use coreda_des::rng::SimRng;
//!
//! let tea = catalog::tea_making();
//! let gen = EpisodeGenerator::new(
//!     tea.clone(),
//!     RoutineSet::single(Routine::canonical(&tea)),
//!     PatientProfile::moderate("Mr. Tanaka"),
//! );
//! let mut rng = SimRng::seed_from(2007);
//! let training_set = gen.generate_batch(120, &mut rng);
//! assert_eq!(training_set.len(), 120);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod dataset;
pub mod drift;
pub mod episode;
pub mod intern;
pub mod patient;
pub mod routine;
pub mod step;
pub mod tool;

pub use activity::AdlSpec;
pub use intern::{NameId, NameTable};
pub use drift::SeverityTrajectory;
pub use episode::{Episode, EpisodeEvent, EpisodeGenerator};
pub use patient::{PatientAction, PatientProfile};
pub use routine::{Routine, RoutineSet};
pub use step::{Step, StepId};
pub use tool::{Tool, ToolId};
