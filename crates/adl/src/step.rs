//! ADL steps and step identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tool::ToolId;

/// The identifier of a step within (and across) ADLs.
///
/// "The StepID is defined as the ID of the tool which is mainly used in
/// this step. We also define a StepID 0 to indicate nothing is done for a
/// long time." (paper §2.1)
///
/// # Examples
///
/// ```
/// use coreda_adl::step::StepId;
/// use coreda_adl::tool::ToolId;
///
/// assert!(StepId::IDLE.is_idle());
/// let s = StepId::from_tool(ToolId::new(3));
/// assert_eq!(s.raw(), 3);
/// assert_eq!(s.tool(), Some(ToolId::new(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StepId(u16);

impl StepId {
    /// StepID 0: "nothing is done for a long time".
    pub const IDLE: StepId = StepId(0);

    /// The step driven by `tool`.
    #[must_use]
    pub const fn from_tool(tool: ToolId) -> Self {
        StepId(tool.raw())
    }

    /// Wraps a raw step id (0 = idle).
    #[must_use]
    pub const fn from_raw(raw: u16) -> Self {
        StepId(raw)
    }

    /// The raw id.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Whether this is the idle step.
    #[must_use]
    pub const fn is_idle(self) -> bool {
        self.0 == 0
    }

    /// The tool behind this step, unless idle.
    #[must_use]
    pub fn tool(self) -> Option<ToolId> {
        if self.is_idle() {
            None
        } else {
            Some(ToolId::new(self.0))
        }
    }
}

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_idle() {
            f.write_str("idle")
        } else {
            write!(f, "step-{}", self.0)
        }
    }
}

/// One step of an ADL: a name, the tool it uses, and how long it
/// typically takes.
///
/// The duration statistics matter twice: the behaviour simulator draws
/// real step durations from them, and the sensing subsystem derives each
/// tool's idle timeout from them (the paper's footnote: the 30 s wait
/// "should be determined from the statistical data of how long a user
/// will use this tool").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    name: String,
    tool: ToolId,
    mean_duration_s: f64,
    sd_duration_s: f64,
}

impl Step {
    /// Creates a step.
    ///
    /// # Panics
    ///
    /// Panics if `mean_duration_s` is not positive or `sd_duration_s` is
    /// negative.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        tool: ToolId,
        mean_duration_s: f64,
        sd_duration_s: f64,
    ) -> Self {
        assert!(mean_duration_s > 0.0, "step duration must be positive");
        assert!(sd_duration_s >= 0.0, "duration spread must be non-negative");
        Step { name: name.into(), tool, mean_duration_s, sd_duration_s }
    }

    /// Human-readable name ("Pour hot water into kettle").
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tool mainly used in this step.
    #[must_use]
    pub const fn tool(&self) -> ToolId {
        self.tool
    }

    /// This step's id (the tool's id).
    #[must_use]
    pub const fn id(&self) -> StepId {
        StepId::from_tool(self.tool)
    }

    /// Mean duration in seconds.
    #[must_use]
    pub const fn mean_duration_s(&self) -> f64 {
        self.mean_duration_s
    }

    /// Duration standard deviation in seconds.
    #[must_use]
    pub const fn sd_duration_s(&self) -> f64 {
        self.sd_duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_semantics() {
        assert!(StepId::IDLE.is_idle());
        assert_eq!(StepId::IDLE.tool(), None);
        assert_eq!(StepId::IDLE.to_string(), "idle");
        assert_eq!(StepId::from_raw(0), StepId::IDLE);
    }

    #[test]
    fn step_id_mirrors_tool_id() {
        let s = StepId::from_tool(ToolId::new(7));
        assert_eq!(s.raw(), 7);
        assert_eq!(s.tool(), Some(ToolId::new(7)));
        assert_eq!(s.to_string(), "step-7");
    }

    #[test]
    fn step_carries_duration_stats() {
        let s = Step::new("Brush the teeth", ToolId::new(2), 8.0, 2.0);
        assert_eq!(s.id(), StepId::from_raw(2));
        assert_eq!(s.mean_duration_s(), 8.0);
        assert_eq!(s.sd_duration_s(), 2.0);
        assert_eq!(s.name(), "Brush the teeth");
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let _ = Step::new("x", ToolId::new(1), 0.0, 0.0);
    }
}
