//! Episode datasets: a plain-text interchange format for recordings.
//!
//! The paper's evaluation rests on collected recordings ("we collected
//! 120 training samples of each ADL"). This module gives those recordings
//! a durable form: a line-oriented, versioned text format that diffs
//! well, survives editors, and needs no serialisation framework.
//!
//! ```text
//! #coreda-episodes v1
//! #adl Tea-making
//! episode
//! 5:6300
//! 6:3100
//! 7:5000
//! 8:4200
//! episode
//! …
//! ```
//!
//! Each step line is `step_id:duration_ms` (step 0 is an idle stretch).

use std::error::Error;
use std::fmt;

use coreda_des::time::SimDuration;

use crate::episode::{Episode, EpisodeEvent};
use crate::step::StepId;

/// Format header.
pub const HEADER: &str = "#coreda-episodes v1";

/// Serialises episodes of one ADL.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_adl::dataset;
/// use coreda_adl::episode::EpisodeGenerator;
/// use coreda_adl::patient::PatientProfile;
/// use coreda_adl::routine::{Routine, RoutineSet};
/// use coreda_des::rng::SimRng;
///
/// let tea = catalog::tea_making();
/// let gen = EpisodeGenerator::new(
///     tea.clone(),
///     RoutineSet::single(Routine::canonical(&tea)),
///     PatientProfile::unimpaired("x"),
/// );
/// let mut rng = SimRng::seed_from(1);
/// let episodes = gen.generate_batch(3, &mut rng);
/// let text = dataset::write_episodes("Tea-making", &episodes);
/// let (adl, parsed) = dataset::parse_episodes(&text)?;
/// assert_eq!(adl, "Tea-making");
/// assert_eq!(parsed, episodes);
/// # Ok::<(), coreda_adl::dataset::DatasetError>(())
/// ```
#[must_use]
pub fn write_episodes(adl: &str, episodes: &[Episode]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "#adl {adl}");
    for ep in episodes {
        let _ = writeln!(out, "episode");
        for ev in &ep.events {
            let _ = writeln!(out, "{}:{}", ev.step.raw(), ev.duration.as_millis());
        }
    }
    out
}

/// Parses a dataset back into episodes. Returns the ADL name and the
/// episodes.
///
/// # Errors
///
/// Returns a [`DatasetError`] for a missing/wrong header, malformed step
/// lines, or an episode body outside an `episode` block.
pub fn parse_episodes(text: &str) -> Result<(String, Vec<Episode>), DatasetError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        Some((_, l)) => return Err(DatasetError::BadHeader(l.to_owned())),
        None => return Err(DatasetError::Empty),
    }
    let adl = match lines.next() {
        Some((_, l)) if l.starts_with("#adl ") => l["#adl ".len()..].trim().to_owned(),
        Some((_, l)) => return Err(DatasetError::BadHeader(l.to_owned())),
        None => return Err(DatasetError::Empty),
    };

    let mut episodes = Vec::new();
    let mut current: Option<Vec<EpisodeEvent>> = None;
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "episode" {
            if let Some(events) = current.take() {
                episodes.push(Episode { adl: adl.clone(), events });
            }
            current = Some(Vec::new());
            continue;
        }
        let Some(events) = current.as_mut() else {
            return Err(DatasetError::StepOutsideEpisode { line: idx + 1 });
        };
        let (step_str, dur_str) = line
            .split_once(':')
            .ok_or(DatasetError::BadStepLine { line: idx + 1 })?;
        let step: u16 =
            step_str.trim().parse().map_err(|_| DatasetError::BadStepLine { line: idx + 1 })?;
        let ms: u64 =
            dur_str.trim().parse().map_err(|_| DatasetError::BadStepLine { line: idx + 1 })?;
        events.push(EpisodeEvent {
            step: StepId::from_raw(step),
            duration: SimDuration::from_millis(ms),
        });
    }
    if let Some(events) = current.take() {
        episodes.push(Episode { adl: adl.clone(), events });
    }
    Ok((adl, episodes))
}

/// Dataset parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The input has no lines at all.
    Empty,
    /// The header or #adl line is missing or malformed.
    BadHeader(String),
    /// A step line appears before any `episode` marker.
    StepOutsideEpisode {
        /// 1-based line number.
        line: usize,
    },
    /// A step line is not `id:duration_ms`.
    BadStepLine {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset is empty"),
            DatasetError::BadHeader(l) => write!(f, "bad dataset header: {l:?}"),
            DatasetError::StepOutsideEpisode { line } => {
                write!(f, "line {line}: step before any 'episode' marker")
            }
            DatasetError::BadStepLine { line } => {
                write!(f, "line {line}: expected 'step_id:duration_ms'")
            }
        }
    }
}

impl Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::catalog;
    use crate::episode::EpisodeGenerator;
    use crate::patient::PatientProfile;
    use crate::routine::{Routine, RoutineSet};
    use coreda_des::rng::SimRng;

    fn sample_episodes(n: usize) -> Vec<Episode> {
        let tea = catalog::tea_making();
        let gen = EpisodeGenerator::new(
            tea.clone(),
            RoutineSet::single(Routine::canonical(&tea)),
            PatientProfile::moderate("x"),
        );
        let mut rng = SimRng::seed_from(1);
        gen.generate_batch(n, &mut rng)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let episodes = sample_episodes(10);
        let text = write_episodes("Tea-making", &episodes);
        let (adl, parsed) = parse_episodes(&text).unwrap();
        assert_eq!(adl, "Tea-making");
        assert_eq!(parsed, episodes);
    }

    #[test]
    fn idle_steps_survive_the_roundtrip() {
        let episodes = sample_episodes(40);
        assert!(
            episodes.iter().any(|e| e.events.iter().any(|ev| ev.step.is_idle())),
            "a moderate patient should freeze somewhere in 40 episodes"
        );
        let text = write_episodes("Tea-making", &episodes);
        let (_, parsed) = parse_episodes(&text).unwrap();
        assert_eq!(parsed, episodes);
    }

    #[test]
    fn comments_and_blank_lines_are_tolerated() {
        let text = "#coreda-episodes v1\n#adl T\n\n# a comment\nepisode\n5:100\n\n6:200\n";
        let (_, parsed) = parse_episodes(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].events.len(), 2);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(parse_episodes(""), Err(DatasetError::Empty));
        assert!(matches!(
            parse_episodes("not a dataset\n"),
            Err(DatasetError::BadHeader(_))
        ));
        assert!(matches!(
            parse_episodes("#coreda-episodes v1\nmissing adl\n"),
            Err(DatasetError::BadHeader(_))
        ));
    }

    #[test]
    fn step_outside_episode_rejected() {
        let text = "#coreda-episodes v1\n#adl T\n5:100\n";
        assert_eq!(
            parse_episodes(text),
            Err(DatasetError::StepOutsideEpisode { line: 3 })
        );
    }

    #[test]
    fn malformed_step_lines_rejected_with_line_numbers() {
        let text = "#coreda-episodes v1\n#adl T\nepisode\ngibberish\n";
        assert_eq!(parse_episodes(text), Err(DatasetError::BadStepLine { line: 4 }));
        let text = "#coreda-episodes v1\n#adl T\nepisode\n5:notanumber\n";
        assert_eq!(parse_episodes(text), Err(DatasetError::BadStepLine { line: 4 }));
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let text = write_episodes("Nothing", &[]);
        let (adl, parsed) = parse_episodes(&text).unwrap();
        assert_eq!(adl, "Nothing");
        assert!(parsed.is_empty());
    }

    #[test]
    fn errors_display_line_numbers() {
        let e = DatasetError::BadStepLine { line: 7 };
        assert!(e.to_string().contains("line 7"));
    }
}
