//! Episodes: recorded passes through an ADL.
//!
//! "One training sample is a complete process of an ADL" (paper §3.2).
//! The generator produces the StepID sequences the planning subsystem
//! trains and is evaluated on, either clean (the routine exactly) or with
//! injected wrong-tool grabs and freezes.

use coreda_des::rng::SimRng;
use coreda_des::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::activity::AdlSpec;
use crate::patient::{PatientAction, PatientProfile};
use crate::routine::{Routine, RoutineSet};
use crate::step::StepId;
use crate::tool::ToolId;

/// One observed step occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodeEvent {
    /// The step the user was in ([`StepId::IDLE`] for a freeze).
    pub step: StepId,
    /// How long they stayed in it.
    pub duration: SimDuration,
}

/// A complete pass through an ADL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// Name of the ADL.
    pub adl: String,
    /// The observed step sequence.
    pub events: Vec<EpisodeEvent>,
}

impl Episode {
    /// The bare StepID sequence.
    #[must_use]
    pub fn step_ids(&self) -> Vec<StepId> {
        self.events.iter().map(|e| e.step).collect()
    }

    /// Total wall-clock duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.events.iter().fold(SimDuration::ZERO, |acc, e| acc + e.duration)
    }

    /// Whether the sequence contains no idles or repeats — i.e. it is
    /// exactly some routine.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.events.iter().any(|e| e.step.is_idle())
            && self.events.windows(2).all(|w| w[0].step != w[1].step)
    }
}

/// Generates training and evaluation episodes.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_adl::episode::EpisodeGenerator;
/// use coreda_adl::patient::PatientProfile;
/// use coreda_adl::routine::{Routine, RoutineSet};
/// use coreda_des::rng::SimRng;
///
/// let tea = catalog::tea_making();
/// let gen = EpisodeGenerator::new(
///     tea.clone(),
///     RoutineSet::single(Routine::canonical(&tea)),
///     PatientProfile::unimpaired("Mr. Tanaka"),
/// );
/// let mut rng = SimRng::seed_from(1);
/// let ep = gen.generate(&mut rng);
/// assert!(ep.is_clean());
/// assert_eq!(ep.events.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct EpisodeGenerator {
    spec: AdlSpec,
    routines: RoutineSet,
    profile: PatientProfile,
}

impl EpisodeGenerator {
    /// Creates a generator.
    #[must_use]
    pub fn new(spec: AdlSpec, routines: RoutineSet, profile: PatientProfile) -> Self {
        EpisodeGenerator { spec, routines, profile }
    }

    /// The ADL being generated.
    #[must_use]
    pub const fn spec(&self) -> &AdlSpec {
        &self.spec
    }

    /// The routine set in use.
    #[must_use]
    pub const fn routines(&self) -> &RoutineSet {
        &self.routines
    }

    /// The patient profile in use.
    #[must_use]
    pub const fn profile(&self) -> &PatientProfile {
        &self.profile
    }

    /// Duration the patient idles when frozen, before (in the live system)
    /// a reminder fires.
    pub const FREEZE_DURATION: SimDuration = SimDuration::from_secs(30);
    /// Duration of an erroneous wrong-tool grab before self-correction.
    pub const WRONG_TOOL_DURATION: SimDuration = SimDuration::from_secs(4);

    /// Generates one *complete* episode: the patient may err along the
    /// way (emitting idle or wrong-step events) but always eventually
    /// finishes the routine, as the paper's supervised recordings did.
    pub fn generate(&self, rng: &mut SimRng) -> Episode {
        let routine = self.routines.sample(rng).clone();
        let mut events = Vec::with_capacity(routine.len());
        for (idx, &step_id) in routine.steps().iter().enumerate() {
            // At most one error excursion at the boundary *before* this
            // step (the recording then shows recovery and the real step).
            if idx > 0 {
                match self.profile.decide_next(
                    &routine,
                    idx - 1,
                    &self.wrong_candidates(&routine, step_id),
                    rng,
                ) {
                    PatientAction::Proceed => {}
                    PatientAction::Freeze => {
                        events.push(EpisodeEvent {
                            step: StepId::IDLE,
                            duration: Self::FREEZE_DURATION,
                        });
                    }
                    PatientAction::WrongTool(tool) => {
                        events.push(EpisodeEvent {
                            step: StepId::from_tool(tool),
                            duration: Self::WRONG_TOOL_DURATION,
                        });
                    }
                }
            }
            let step = self.spec.step(step_id).expect("routine steps exist in spec");
            events.push(EpisodeEvent {
                step: step_id,
                duration: self.profile.step_duration(step, rng),
            });
        }
        Episode { adl: self.spec.name().to_owned(), events }
    }

    /// Generates a clean episode: the sampled routine exactly, no errors.
    pub fn generate_clean(&self, rng: &mut SimRng) -> Episode {
        let routine = self.routines.sample(rng).clone();
        let events = routine
            .steps()
            .iter()
            .map(|&id| {
                let step = self.spec.step(id).expect("routine steps exist in spec");
                EpisodeEvent { step: id, duration: self.profile.step_duration(step, rng) }
            })
            .collect();
        Episode { adl: self.spec.name().to_owned(), events }
    }

    /// Generates `n` episodes (the paper's training sets are 120 per ADL).
    pub fn generate_batch(&self, n: usize, rng: &mut SimRng) -> Vec<Episode> {
        (0..n).map(|_| self.generate(rng)).collect()
    }

    /// Tools the patient might wrongly grab instead of the one for
    /// `correct_next`.
    fn wrong_candidates(&self, _routine: &Routine, correct_next: StepId) -> Vec<ToolId> {
        self.spec
            .tools()
            .iter()
            .map(crate::tool::Tool::id)
            .filter(|&t| StepId::from_tool(t) != correct_next)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::catalog;

    fn generator(profile: PatientProfile) -> EpisodeGenerator {
        let tea = catalog::tea_making();
        EpisodeGenerator::new(tea.clone(), RoutineSet::single(Routine::canonical(&tea)), profile)
    }

    #[test]
    fn clean_generation_matches_routine() {
        let gen = generator(PatientProfile::unimpaired("x"));
        let mut rng = SimRng::seed_from(1);
        let ep = gen.generate_clean(&mut rng);
        assert_eq!(ep.step_ids(), catalog::tea_making().step_ids());
        assert!(ep.is_clean());
        assert_eq!(ep.adl, "Tea-making");
    }

    #[test]
    fn unimpaired_generate_equals_clean_shape() {
        let gen = generator(PatientProfile::unimpaired("x"));
        let mut rng = SimRng::seed_from(2);
        for _ in 0..50 {
            assert!(gen.generate(&mut rng).is_clean());
        }
    }

    #[test]
    fn impaired_episodes_contain_errors_but_complete() {
        let gen = generator(PatientProfile::severe("x"));
        let mut rng = SimRng::seed_from(3);
        let canonical = catalog::tea_making().step_ids();
        let mut any_error = false;
        for _ in 0..100 {
            let ep = gen.generate(&mut rng);
            // The canonical steps appear in order within the noisy sequence.
            let seq = ep.step_ids();
            let mut want = canonical.iter();
            let mut next = want.next();
            for s in &seq {
                if Some(s) == next {
                    next = want.next();
                }
            }
            assert!(next.is_none(), "episode must complete the routine: {seq:?}");
            if !ep.is_clean() {
                any_error = true;
            }
        }
        assert!(any_error, "severe patients should err in 100 episodes");
    }

    #[test]
    fn error_events_use_expected_durations() {
        let gen = generator(PatientProfile::severe("x"));
        let mut rng = SimRng::seed_from(4);
        for _ in 0..100 {
            let ep = gen.generate(&mut rng);
            for ev in &ep.events {
                if ev.step.is_idle() {
                    assert_eq!(ev.duration, EpisodeGenerator::FREEZE_DURATION);
                }
            }
        }
    }

    #[test]
    fn batch_size_is_exact() {
        let gen = generator(PatientProfile::mild("x"));
        let mut rng = SimRng::seed_from(5);
        assert_eq!(gen.generate_batch(120, &mut rng).len(), 120);
    }

    #[test]
    fn duration_sums_events() {
        let gen = generator(PatientProfile::unimpaired("x"));
        let mut rng = SimRng::seed_from(6);
        let ep = gen.generate_clean(&mut rng);
        let total: u64 = ep.events.iter().map(|e| e.duration.as_millis()).sum();
        assert_eq!(ep.duration().as_millis(), total);
        assert!(ep.duration() > SimDuration::from_secs(8), "4 tea steps take a while");
    }

    #[test]
    fn multi_routine_generation_uses_all_routines() {
        let tea = catalog::tea_making();
        let ids = tea.step_ids();
        let a = Routine::canonical(&tea);
        let b = Routine::new(&tea, vec![ids[1], ids[0], ids[2], ids[3]]);
        let gen = EpisodeGenerator::new(
            tea.clone(),
            RoutineSet::weighted(vec![(a.clone(), 1.0), (b.clone(), 1.0)]),
            PatientProfile::unimpaired("x"),
        );
        let mut rng = SimRng::seed_from(7);
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..100 {
            let seq = gen.generate_clean(&mut rng).step_ids();
            if seq == a.steps() {
                saw_a = true;
            } else if seq == b.steps() {
                saw_b = true;
            } else {
                panic!("unexpected sequence {seq:?}");
            }
        }
        assert!(saw_a && saw_b);
    }
}
