//! Household tools and their sensor bindings.

use std::fmt;

use coreda_sensornet::node::NodeId;
use coreda_sensornet::sensors::SensorKind;
use coreda_sensornet::signal::SignalModel;
use serde::{Deserialize, Serialize};

/// Identifier of a tool.
///
/// The paper binds tools to sensor nodes one-to-one: "We use the uid
/// (unique ID) of PAVENET as the ID of the tool which it is attached to."
/// A [`ToolId`] therefore converts losslessly to and from a
/// [`NodeId`]. Zero is reserved (it is the idle `StepId`).
///
/// # Examples
///
/// ```
/// use coreda_adl::tool::ToolId;
/// use coreda_sensornet::node::NodeId;
///
/// let tool = ToolId::new(5);
/// let node: NodeId = tool.into();
/// assert_eq!(ToolId::from(node), tool);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ToolId(u16);

impl ToolId {
    /// Wraps a raw tool id.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is zero — tool ID 0 is reserved for the idle step.
    #[must_use]
    pub fn new(raw: u16) -> Self {
        assert!(raw != 0, "tool id 0 is reserved for the idle step");
        ToolId(raw)
    }

    /// The raw id.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ToolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tool-{}", self.0)
    }
}

impl From<ToolId> for NodeId {
    fn from(t: ToolId) -> NodeId {
        NodeId::new(t.0)
    }
}

impl From<NodeId> for ToolId {
    fn from(n: NodeId) -> ToolId {
        ToolId::new(n.raw())
    }
}

/// A tool with its attached sensor's behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tool {
    id: ToolId,
    name: String,
    signal: SignalModel,
}

impl Tool {
    /// Creates a tool.
    #[must_use]
    pub fn new(id: ToolId, name: impl Into<String>, signal: SignalModel) -> Self {
        Tool { id, name: name.into(), signal }
    }

    /// The tool's id (== the PAVENET uid attached to it).
    #[must_use]
    pub const fn id(&self) -> ToolId {
        self.id
    }

    /// Human-readable name ("tea-box", "electronic-pot", …).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sensor kind strapped to this tool.
    #[must_use]
    pub fn sensor(&self) -> SensorKind {
        self.signal.kind()
    }

    /// The synthetic signal model for this tool.
    #[must_use]
    pub const fn signal(&self) -> SignalModel {
        self.signal
    }
}

impl fmt::Display for Tool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_id_roundtrips_node_id() {
        let t = ToolId::new(8);
        let n: NodeId = t.into();
        assert_eq!(n.raw(), 8);
        assert_eq!(ToolId::from(n), t);
    }

    #[test]
    #[should_panic(expected = "reserved for the idle step")]
    fn zero_tool_id_rejected() {
        let _ = ToolId::new(0);
    }

    #[test]
    fn tool_exposes_sensor_kind() {
        let tool = Tool::new(
            ToolId::new(1),
            "tea-box",
            SignalModel::accelerometer(0.03, 0.5, 0.8),
        );
        assert_eq!(tool.sensor(), SensorKind::Accelerometer);
        assert_eq!(tool.name(), "tea-box");
        assert_eq!(tool.to_string(), "tea-box (tool-1)");
    }
}
