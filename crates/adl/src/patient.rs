//! The stochastic patient behaviour model.
//!
//! This replaces the human subject of the original experiments. The model
//! captures what mattered to CoReDA: at each step boundary a person with
//! dementia either proceeds correctly, picks up a wrong tool, or freezes
//! (forgets what to do) — and responds to a prompt with some compliance.
//! Severity moves those probabilities.

use coreda_des::rng::SimRng;
use coreda_des::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::routine::Routine;
use crate::step::Step;
use crate::tool::ToolId;

/// What the patient does at a step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatientAction {
    /// Moves to the correct next step.
    Proceed,
    /// Starts using the wrong tool.
    WrongTool(ToolId),
    /// Does nothing (the paper's "does not do anything for 30 seconds").
    Freeze,
}

/// A patient's behavioural parameters.
///
/// # Examples
///
/// ```
/// use coreda_adl::patient::PatientProfile;
///
/// let tanaka = PatientProfile::builder("Mr. Tanaka")
///     .wrong_tool_prob(0.15)
///     .forget_prob(0.10)
///     .compliance(0.95)
///     .build();
/// assert_eq!(tanaka.name(), "Mr. Tanaka");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatientProfile {
    name: String,
    wrong_tool_prob: f64,
    forget_prob: f64,
    compliance: f64,
    speed: f64,
}

impl PatientProfile {
    /// Starts a builder.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> PatientProfileBuilder {
        PatientProfileBuilder {
            name: name.into(),
            wrong_tool_prob: 0.0,
            forget_prob: 0.0,
            compliance: 1.0,
            speed: 1.0,
        }
    }

    /// No errors at all — used to generate clean training samples.
    #[must_use]
    pub fn unimpaired(name: impl Into<String>) -> Self {
        Self::builder(name).build()
    }

    /// Mild dementia: occasional slips.
    #[must_use]
    pub fn mild(name: impl Into<String>) -> Self {
        Self::builder(name).wrong_tool_prob(0.08).forget_prob(0.05).compliance(0.97).build()
    }

    /// Moderate dementia: frequent slips, still prompt-responsive.
    #[must_use]
    pub fn moderate(name: impl Into<String>) -> Self {
        Self::builder(name)
            .wrong_tool_prob(0.18)
            .forget_prob(0.15)
            .compliance(0.92)
            .speed(1.3)
            .build()
    }

    /// Severe dementia: most boundaries need help.
    #[must_use]
    pub fn severe(name: impl Into<String>) -> Self {
        Self::builder(name)
            .wrong_tool_prob(0.30)
            .forget_prob(0.30)
            .compliance(0.85)
            .speed(1.6)
            .build()
    }

    /// The patient's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Probability of grabbing a wrong tool at a step boundary.
    #[must_use]
    pub const fn wrong_tool_prob(&self) -> f64 {
        self.wrong_tool_prob
    }

    /// Probability of freezing at a step boundary.
    #[must_use]
    pub const fn forget_prob(&self) -> f64 {
        self.forget_prob
    }

    /// Probability of following a prompt.
    #[must_use]
    pub const fn compliance(&self) -> f64 {
        self.compliance
    }

    /// Step-duration multiplier (1.0 = the spec's nominal pace).
    #[must_use]
    pub const fn speed(&self) -> f64 {
        self.speed
    }

    /// Decides what the patient does after finishing the step at
    /// `position` in `routine`. `other_tools` are the candidates a wrong
    /// grab chooses from (typically every tool of the ADL except the
    /// correct next one).
    pub fn decide_next(
        &self,
        routine: &Routine,
        position: usize,
        other_tools: &[ToolId],
        rng: &mut SimRng,
    ) -> PatientAction {
        debug_assert!(position < routine.len());
        let draw = rng.uniform();
        if draw < self.forget_prob {
            PatientAction::Freeze
        } else if draw < self.forget_prob + self.wrong_tool_prob && !other_tools.is_empty() {
            PatientAction::WrongTool(*rng.choose(other_tools))
        } else {
            PatientAction::Proceed
        }
    }

    /// How the patient reacts to a prompt for `prompted_tool`.
    pub fn respond_to_prompt(&self, prompted_tool: ToolId, rng: &mut SimRng) -> PatientAction {
        if rng.chance(self.compliance) {
            let _ = prompted_tool;
            PatientAction::Proceed
        } else {
            PatientAction::Freeze
        }
    }

    /// Samples how long the patient spends on `step`.
    pub fn step_duration(&self, step: &Step, rng: &mut SimRng) -> SimDuration {
        let mean = step.mean_duration_s() * self.speed;
        let secs = rng.normal(mean, step.sd_duration_s()).max(1.0);
        SimDuration::from_secs_f64(secs)
    }
}

/// Builder for [`PatientProfile`].
#[derive(Debug, Clone)]
pub struct PatientProfileBuilder {
    name: String,
    wrong_tool_prob: f64,
    forget_prob: f64,
    compliance: f64,
    speed: f64,
}

impl PatientProfileBuilder {
    /// Sets the wrong-tool probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn wrong_tool_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.wrong_tool_prob = p;
        self
    }

    /// Sets the freeze probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn forget_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.forget_prob = p;
        self
    }

    /// Sets prompt compliance.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn compliance(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.compliance = p;
        self
    }

    /// Sets the pace multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive.
    #[must_use]
    pub fn speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        self.speed = speed;
        self
    }

    /// Builds the profile.
    ///
    /// # Panics
    ///
    /// Panics if the error probabilities sum to more than 1.
    #[must_use]
    pub fn build(self) -> PatientProfile {
        assert!(
            self.wrong_tool_prob + self.forget_prob <= 1.0,
            "error probabilities must sum to at most 1"
        );
        PatientProfile {
            name: self.name,
            wrong_tool_prob: self.wrong_tool_prob,
            forget_prob: self.forget_prob,
            compliance: self.compliance,
            speed: self.speed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::catalog;

    #[test]
    fn unimpaired_always_proceeds() {
        let p = PatientProfile::unimpaired("control");
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let others: Vec<ToolId> = tea.tools().iter().map(|t| t.id()).collect();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..200 {
            assert_eq!(p.decide_next(&routine, 0, &others, &mut rng), PatientAction::Proceed);
        }
    }

    #[test]
    fn severity_increases_error_rates() {
        let mild = PatientProfile::mild("a");
        let severe = PatientProfile::severe("b");
        assert!(severe.wrong_tool_prob() > mild.wrong_tool_prob());
        assert!(severe.forget_prob() > mild.forget_prob());
        assert!(severe.compliance() < mild.compliance());
        assert!(severe.speed() > mild.speed());
    }

    #[test]
    fn error_frequencies_match_probabilities() {
        let p = PatientProfile::builder("t").wrong_tool_prob(0.2).forget_prob(0.3).build();
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let others = vec![ToolId::new(catalog::POT)];
        let mut rng = SimRng::seed_from(2);
        let n = 10_000;
        let mut wrong = 0;
        let mut froze = 0;
        for _ in 0..n {
            match p.decide_next(&routine, 1, &others, &mut rng) {
                PatientAction::WrongTool(_) => wrong += 1,
                PatientAction::Freeze => froze += 1,
                PatientAction::Proceed => {}
            }
        }
        assert!((1800..2200).contains(&wrong), "wrong-tool count {wrong}");
        assert!((2800..3200).contains(&froze), "freeze count {froze}");
    }

    #[test]
    fn wrong_tool_comes_from_candidates() {
        let p = PatientProfile::builder("t").wrong_tool_prob(1.0).build();
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let others = vec![ToolId::new(catalog::KETTLE), ToolId::new(catalog::TEA_CUP)];
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            match p.decide_next(&routine, 0, &others, &mut rng) {
                PatientAction::WrongTool(t) => assert!(others.contains(&t)),
                other => panic!("expected wrong tool, got {other:?}"),
            }
        }
    }

    #[test]
    fn no_candidates_means_no_wrong_tool() {
        let p = PatientProfile::builder("t").wrong_tool_prob(1.0).build();
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut rng = SimRng::seed_from(4);
        assert_eq!(p.decide_next(&routine, 0, &[], &mut rng), PatientAction::Proceed);
    }

    #[test]
    fn compliance_governs_prompt_response() {
        let p = PatientProfile::builder("t").compliance(0.8).build();
        let mut rng = SimRng::seed_from(5);
        let n = 10_000;
        let followed = (0..n)
            .filter(|_| {
                p.respond_to_prompt(ToolId::new(1), &mut rng) == PatientAction::Proceed
            })
            .count();
        assert!((7700..8300).contains(&followed), "followed {followed}/{n}");
    }

    #[test]
    fn durations_scale_with_speed() {
        let slow = PatientProfile::builder("slow").speed(2.0).build();
        let fast = PatientProfile::builder("fast").speed(1.0).build();
        let tea = catalog::tea_making();
        let step = &tea.steps()[0];
        let mut rng_a = SimRng::seed_from(6);
        let mut rng_b = SimRng::seed_from(6);
        let n = 500;
        let mean_slow: f64 = (0..n)
            .map(|_| slow.step_duration(step, &mut rng_a).as_secs_f64())
            .sum::<f64>()
            / f64::from(n);
        let mean_fast: f64 = (0..n)
            .map(|_| fast.step_duration(step, &mut rng_b).as_secs_f64())
            .sum::<f64>()
            / f64::from(n);
        assert!(mean_slow > mean_fast * 1.5);
    }

    #[test]
    fn durations_have_a_floor() {
        let p = PatientProfile::unimpaired("t");
        let tea = catalog::tea_making();
        let step = &tea.steps()[1]; // 3s ± 0.6
        let mut rng = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert!(p.step_duration(step, &mut rng) >= SimDuration::from_secs(1));
        }
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn impossible_probabilities_rejected() {
        let _ = PatientProfile::builder("t").wrong_tool_prob(0.6).forget_prob(0.6).build();
    }
}
