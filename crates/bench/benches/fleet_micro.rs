//! Fleet-engine throughput: full training sweeps at 1, 2, 4 and 8 workers.
//!
//! Besides the criterion groups printed to stdout, this bench writes
//! `BENCH_fleet.json` at the repository root with episodes/second and the
//! speedup over the single-worker engine at each worker count, plus the
//! host's core count — the speedup a given machine can show is bounded by
//! its cores, so the raw context ships with the numbers.

use std::time::Instant;

use coreda_bench::ablation;
use coreda_core::fleet::{default_jobs, FleetEngine};
use criterion::{criterion_group, criterion_main, Criterion};

const LAMBDAS: [f64; 4] = [0.0, 0.3, 0.6, 0.9];
const EPISODES: usize = 120;
const SEEDS: usize = 8;
const SEED: u64 = 2007;
const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn lambda_sweep(jobs: usize) {
    let _ = ablation::lambda_sweep_with(FleetEngine::new(jobs), &LAMBDAS, EPISODES, SEEDS, SEED);
}

fn algorithm_family(jobs: usize) {
    let _ = ablation::algorithm_family_with(FleetEngine::new(jobs), EPISODES, SEEDS, SEED);
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_sweep");
    group.sample_size(2);
    for jobs in JOB_COUNTS {
        group.bench_function(&format!("lambda_sweep/jobs={jobs}"), |b| {
            b.iter(|| lambda_sweep(jobs));
        });
        group.bench_function(&format!("algorithm_family/jobs={jobs}"), |b| {
            b.iter(|| algorithm_family(jobs));
        });
    }
    group.finish();
}

/// Best-of-3 wall clock after one warm-up run.
fn measure(f: impl Fn()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn sweep_json(name: &str, episodes: usize, run: impl Fn(usize)) -> String {
    let timings: Vec<(usize, f64)> =
        JOB_COUNTS.iter().map(|&j| (j, measure(|| run(j)))).collect();
    let serial = timings[0].1;
    let rows: Vec<String> = timings
        .iter()
        .map(|&(jobs, secs)| {
            format!(
                "    {{\"jobs\": {jobs}, \"secs\": {secs:.4}, \
                 \"episodes_per_sec\": {:.1}, \"speedup_vs_jobs1\": {:.2}}}",
                episodes as f64 / secs,
                serial / secs
            )
        })
        .collect();
    format!(
        "  {{\"sweep\": \"{name}\", \"episodes\": {episodes}, \"runs\": [\n{}\n  ]}}",
        rows.join(",\n")
    )
}

fn emit_report(_c: &mut Criterion) {
    let sweeps = [
        sweep_json("lambda_sweep", LAMBDAS.len() * SEEDS * EPISODES, lambda_sweep),
        // 5 learners in the family comparison.
        sweep_json("algorithm_family", 5 * SEEDS * EPISODES, algorithm_family),
    ];
    let json = format!(
        "{{\n\"bench\": \"fleet_micro\",\n\"host_cores\": {},\n\"sweeps\": [\n{}\n]\n}}\n",
        default_jobs(),
        sweeps.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_fleet, emit_report);
criterion_main!(benches);
