//! Microbenchmarks for the sensor substrate: signal synthesis, detection
//! voting, packet codec, and the radio/ARQ path.

use coreda_des::rng::SimRng;
use coreda_sensornet::detect::{Detector, Thresholds};
use coreda_sensornet::network::{LinkConfig, StarNetwork};
use coreda_sensornet::node::{NodeId, PavenetNode};
use coreda_sensornet::packet::{crc16, Packet, Payload};
use coreda_sensornet::radio::LossModel;
use coreda_sensornet::signal::SignalModel;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_signal_and_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensing");
    let model = SignalModel::accelerometer(0.03, 0.45, 0.6);

    group.bench_function("sample_one_reading", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| model.sample(black_box(true), &mut rng));
    });

    group.bench_function("judge_window_3_of_10", |b| {
        let det = Detector::new(Thresholds::default());
        let mut rng = SimRng::seed_from(2);
        let window = model.sample_window(true, &mut rng);
        b.iter(|| det.judge_window(black_box(&window)));
    });

    group.bench_function("node_sample_tick", |b| {
        let mut node = PavenetNode::new(NodeId::new(1), model, Thresholds::default());
        let mut rng = SimRng::seed_from(3);
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            node.sample_tick(black_box(true), t, &mut rng)
        });
    });
    group.finish();
}

fn bench_packets(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet");
    let packet =
        Packet::new(NodeId::new(5), 42, 13_000, Payload::ToolUse { activation_milli: 450 });
    let bytes = packet.encode();

    group.bench_function("encode", |b| b.iter(|| black_box(&packet).encode()));
    group.bench_function("decode", |b| b.iter(|| Packet::decode(black_box(&bytes)).unwrap()));
    group.bench_function("crc16_32_bytes", |b| {
        let data = [0xA5u8; 32];
        b.iter(|| crc16(black_box(&data)));
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    let packet =
        Packet::new(NodeId::new(1), 0, 0, Payload::ToolUse { activation_milli: 100 });

    group.bench_function("uplink_perfect", |b| {
        let mut net = StarNetwork::new(LinkConfig::default());
        net.register(NodeId::new(1));
        let mut rng = SimRng::seed_from(4);
        b.iter(|| net.send_uplink(black_box(&packet), &mut rng));
    });

    group.bench_function("uplink_lossy_30pct", |b| {
        let mut net = StarNetwork::new(LinkConfig {
            loss: LossModel::Bernoulli { p: 0.3 },
            ..LinkConfig::default()
        });
        net.register(NodeId::new(1));
        let mut rng = SimRng::seed_from(5);
        b.iter(|| net.send_uplink(black_box(&packet), &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_signal_and_detection, bench_packets, bench_network);
criterion_main!(benches);
