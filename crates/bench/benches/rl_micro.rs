//! Microbenchmarks for the RL toolbox: update rules and action selection.

use coreda_des::rng::SimRng;
use coreda_rl::algo::{DynaQ, Outcome, QLearning, TdConfig, TdControl, WatkinsQLambda};
use coreda_rl::policy::{EpsilonGreedy, Policy, Softmax};
use coreda_rl::qtable::QTable;
use coreda_rl::schedule::Schedule;
use coreda_rl::space::{ActionId, ProblemShape, StateId};
use coreda_rl::traces::TraceKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn shape() -> ProblemShape {
    // CoReDA's tea-making problem size: 25 states × 8 actions.
    ProblemShape::new(25, 8)
}

fn cfg() -> TdConfig {
    TdConfig::new(Schedule::constant(0.3), 0.05)
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("td_update");
    let outcome = Outcome::Continue { next_state: StateId::new(7), next_action: ActionId::new(1) };

    group.bench_function("q_learning", |b| {
        let mut l = QLearning::new(shape(), cfg());
        b.iter(|| {
            l.observe(black_box(StateId::new(3)), black_box(ActionId::new(2)), 100.0, outcome);
        });
    });

    group.bench_function("watkins_q_lambda", |b| {
        let mut l = WatkinsQLambda::new(shape(), cfg(), 0.8, TraceKind::Replacing);
        l.begin_episode();
        b.iter(|| {
            l.observe(black_box(StateId::new(3)), black_box(ActionId::new(2)), 100.0, outcome);
        });
    });

    group.bench_function("dyna_q_10_planning_steps", |b| {
        let mut l = DynaQ::new(shape(), cfg(), 10, 1);
        b.iter(|| {
            l.observe(black_box(StateId::new(3)), black_box(ActionId::new(2)), 100.0, outcome);
        });
    });
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_select");
    let mut q = QTable::new(shape());
    let mut rng = SimRng::seed_from(1);
    for s in shape().state_ids() {
        for a in shape().action_ids() {
            q.set(s, a, rng.normal(0.0, 100.0));
        }
    }

    group.bench_function("epsilon_greedy", |b| {
        let pol = EpsilonGreedy::constant(0.35);
        let mut r = SimRng::seed_from(2);
        b.iter(|| pol.select(black_box(&q), StateId::new(12), 0, &mut r));
    });

    group.bench_function("softmax", |b| {
        let pol = Softmax::constant(10.0);
        let mut r = SimRng::seed_from(3);
        b.iter(|| pol.select(black_box(&q), StateId::new(12), 0, &mut r));
    });

    group.bench_function("greedy_lookup", |b| {
        b.iter(|| black_box(&q).greedy_action(StateId::new(12)));
    });
    group.finish();
}

criterion_group!(benches, bench_updates, bench_policies);
criterion_main!(benches);
