//! Metro-scale serving throughput: homes/sec and events/sec across the
//! fleet-size grid, plus the timing-wheel vs binary-heap engine duel.
//!
//! Besides the criterion group printed to stdout, this bench writes
//! `BENCH_scale.json` at the repository root: the serving grid (100, 1k,
//! 10k and 100k homes at 1/2/4/8 workers) and an `engine_compare` entry
//! measuring the wheel + interned zero-alloc pipeline against the seed's
//! dense heap-polling path at 1 000 homes on one worker — the speedup
//! figure the ISSUE's acceptance bar reads — a `locality_duel` entry
//! pricing epoch-tiled wake scheduling against the strict `(due, seq)`
//! sweep at the 100k-home cache cliff, plus a `care_overhead`
//! entry pricing the caregiver escalation overlay and fleet analytics
//! reduction at 10k homes (paired-ratio protocol, bar <= 5 %), a
//! `checkpoint` entry
//! recording snapshot encode/restore throughput for a mid-run 1k-home
//! fleet, a `durability` entry pricing the steady-state delta + WAL
//! interval against a full snapshot at 10k homes, a `phase_breakdown`
//! entry separating fleet construction from serving at 10k/100k homes,
//! and a `memory` entry with the marginal bytes-per-home slope
//! (10k -> 100k) plus a 1M-home stretch probe. `events_per_sec` counts 100 ms
//! pipeline ticks, which both engines execute in identical number, so the
//! ratio of their rates is exactly the wall-clock speedup. The host core
//! count ships with the numbers, and a debug build refuses to write the
//! file at all — unoptimised timings would be noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use coreda_core::checkpoint::{
    compact, config_digest, load_checkpoint, load_delta, save_checkpoint, save_delta,
};
use coreda_core::fleet::default_jobs;
use coreda_core::metro::{
    run_scale, run_scale_checkpointed, run_scale_durable, run_scale_traced, EngineKind,
    MetroConfig, SchedMode,
};
use coreda_core::wal::encode_wal;
use coreda_des::time::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};

/// Live/peak-tracking shim over the system allocator. The two relaxed
/// atomics cost nanoseconds against millisecond-scale serve loops (the
/// serving path is allocation-free by design), and they buy the
/// `bytes_per_home` figure: peak live heap deltas between fleet sizes.
struct CountingAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(p, layout);
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        q
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak live heap reached while running `f`, measured from the current
/// live level (so back-to-back probes don't inherit each other's peak).
fn peak_during(f: impl FnOnce()) -> usize {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    f();
    PEAK_BYTES.load(Ordering::Relaxed)
}

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// (homes, simulated seconds): bigger fleets get shorter walls so every
/// grid cell does comparable total work.
// The 100k wall must clear the 60–240 s first-episode gap draw, or the
// cell measures fleet construction and zero serving ticks.
const GRID: [(usize, u64); 4] = [(100, 3600), (1000, 1800), (10_000, 360), (100_000, 120)];
const SEED: u64 = 2007;

fn cfg(homes: usize, secs: u64, jobs: usize, engine: EngineKind) -> MetroConfig {
    MetroConfig {
        homes,
        horizon: SimDuration::from_secs(secs),
        seed: SEED,
        jobs,
        engine,
        ..MetroConfig::default()
    }
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("metro_scale");
    group.sample_size(2);
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        group.bench_function(&format!("serve/homes=100/engine={engine}"), |b| {
            b.iter(|| run_scale(&cfg(100, 600, 1, engine)));
        });
    }
    group.finish();
}

/// Wall clock of the best of two timed runs after one warm-up, plus the
/// pipeline-tick count (identical across runs of the same config).
fn measure(config: &MetroConfig) -> (f64, u64) {
    let ticks = run_scale(config).pipeline_ticks();
    let secs = (0..2)
        .map(|_| {
            let t = Instant::now();
            let _ = run_scale(config);
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    (secs, ticks)
}

fn grid_json() -> String {
    let rows: Vec<String> = GRID
        .iter()
        .flat_map(|&(homes, sim_secs)| {
            JOB_COUNTS.iter().map(move |&jobs| {
                let (secs, ticks) = measure(&cfg(homes, sim_secs, jobs, EngineKind::Wheel));
                format!(
                    "    {{\"homes\": {homes}, \"sim_secs\": {sim_secs}, \"jobs\": {jobs}, \
                     \"secs\": {secs:.4}, \"homes_per_sec\": {:.1}, \
                     \"events_per_sec\": {:.0}}}",
                    homes as f64 / secs,
                    ticks as f64 / secs
                )
            })
        })
        .collect();
    format!("  \"grid\": [\n{}\n  ]", rows.join(",\n"))
}

fn engine_compare_json() -> String {
    let wheel_cfg = cfg(1000, 1800, 1, EngineKind::Wheel);
    let heap_cfg = cfg(1000, 1800, 1, EngineKind::Heap);
    // The two engines must agree home for home before their wall clocks
    // mean anything.
    assert_eq!(
        run_scale(&wheel_cfg).per_home,
        run_scale(&heap_cfg).per_home,
        "engines diverged; timings would compare different work"
    );
    let (wheel_secs, ticks) = measure(&wheel_cfg);
    let (heap_secs, _) = measure(&heap_cfg);
    format!(
        "  \"engine_compare\": {{\"homes\": 1000, \"sim_secs\": 1800, \"jobs\": 1, \
         \"pipeline_ticks\": {ticks}, \
         \"wheel_secs\": {wheel_secs:.4}, \"heap_secs\": {heap_secs:.4}, \
         \"wheel_events_per_sec\": {:.0}, \"heap_events_per_sec\": {:.0}, \
         \"speedup\": {:.2}}}",
        ticks as f64 / wheel_secs,
        ticks as f64 / heap_secs,
        heap_secs / wheel_secs
    )
}

/// Flight-recorder cost: the same 1k-home serve with the recorder off
/// vs on. The acceptance bar is <= 5 % overhead; the recorded report is
/// asserted bit-identical to the plain one first, so the timings compare
/// the same work plus recording.
///
/// Protocol: seven off/on *pairs*, each pair back-to-back, and the
/// reported figure is the median of the per-pair ratios. This host's
/// wall clock drifts by ~10 % over a bench run; a pairwise ratio sees
/// both arms under the same drift so it cancels, and the median throws
/// away pairs that straddle a frequency step entirely. The previous
/// best-of-five-each-arm protocol let drift land asymmetrically and
/// once recorded a 15.86 % "overhead" that CPU-time measurement
/// (utime+stime from /proc/self/stat) showed was ~0-3 % — i.e. within
/// the bar. Keep wall clock here (it is what users feel) but pair it.
fn telemetry_overhead_json() -> String {
    let config = cfg(1000, 1800, 1, EngineKind::Wheel);
    let traced = run_scale_traced(&config);
    let plain = run_scale(&config);
    assert_eq!(
        plain.per_home, traced.report.per_home,
        "recording changed the serve; timings would compare different work"
    );
    let ticks = plain.pipeline_ticks();
    let mut pairs: Vec<(f64, f64)> = (0..7)
        .map(|_| {
            let t = Instant::now();
            let _ = run_scale(&config);
            let off = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let _ = run_scale_traced(&config);
            (off, t.elapsed().as_secs_f64())
        })
        .collect();
    pairs.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    let (off_secs, on_secs) = pairs[pairs.len() / 2];
    format!(
        "  \"telemetry_overhead\": {{\"homes\": 1000, \"sim_secs\": 1800, \"jobs\": 1, \
         \"pipeline_ticks\": {ticks}, \"pairs\": {}, \
         \"recorder_off_secs\": {off_secs:.4}, \"recorder_on_secs\": {on_secs:.4}, \
         \"overhead_pct\": {:.2}}}",
        pairs.len(),
        (on_secs / off_secs - 1.0) * 100.0
    )
}

/// Caregiver-overlay cost at fleet scale: the 10k-home serving cell
/// with the escalation monitor and fleet analytics reduction off vs on.
/// The overlay is a pure fold over the write-ahead event stream plus a
/// per-home quantile rollup merged in home order, so its cost must stay
/// noise-level; the acceptance bar is <= 5 % overhead. The plain and
/// overlaid reports are asserted bit-identical first — observation must
/// never perturb the fleet — and the timing reuses the paired-ratio
/// protocol from `telemetry_overhead_json` (median of per-pair ratios,
/// both arms back-to-back under the same clock drift).
fn care_overhead_json() -> String {
    use coreda_core::escalation::CarePolicy;
    use coreda_core::metro::run_scale_care;

    let config = cfg(10_000, 360, 1, EngineKind::Wheel);
    let policy = CarePolicy::default();
    let plain = run_scale(&config);
    let (cared, care) = run_scale_care(&config, &policy);
    assert_eq!(
        plain, cared,
        "the care overlay changed the serve; timings would compare different work"
    );
    let ticks = plain.pipeline_ticks();
    let mut pairs: Vec<(f64, f64)> = (0..7)
        .map(|_| {
            let t = Instant::now();
            let _ = run_scale(&config);
            let off = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let _ = run_scale_care(&config, &policy);
            (off, t.elapsed().as_secs_f64())
        })
        .collect();
    pairs.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    let (off_secs, on_secs) = pairs[pairs.len() / 2];
    format!(
        "  \"care_overhead\": {{\"homes\": 10000, \"sim_secs\": 360, \"jobs\": 1, \
         \"pipeline_ticks\": {ticks}, \"pairs\": {}, \"escalation_events\": {}, \
         \"care_off_secs\": {off_secs:.4}, \"care_on_secs\": {on_secs:.4}, \
         \"overhead_pct\": {:.2}}}",
        pairs.len(),
        care.events.len(),
        (on_secs / off_secs - 1.0) * 100.0
    )
}

/// Incremental durability cost at fleet scale: a 10k-home serve with a
/// base snapshot at 120 s and delta checkpoints every 120 s after, WAL
/// on for the whole horizon. The figures that matter are the steady-
/// state interval bytes (newest delta plus its WAL slice) against a
/// full snapshot — the ISSUE bar is <= 10 % — and the delta encode /
/// decode rates. The delta round trip is asserted exact before timing,
/// and the diff itself (`delta_checkpoint` between the two newest full
/// states, rebuilt via `compact`) is timed separately from the codec so
/// the interval cost can be read as diff + encode + log append.
fn durability_json() -> String {
    let config = cfg(10_000, 360, 8, EngineKind::Wheel);
    let stops: Vec<SimTime> = [120u64, 240, 360].iter().map(|&s| SimTime::from_secs(s)).collect();
    let (_, run) = run_scale_durable(&config, &stops);
    let full_bytes = save_checkpoint(&run.base, 8).len();
    let last = run.deltas.last().expect("two deltas past the base");
    let blob = save_delta(last, 8);
    assert_eq!(
        &load_delta(&blob, 8).expect("fresh delta decodes"),
        last,
        "delta codec round trip drifted; throughput would measure a broken codec"
    );
    let prev = compact(&run.base, &run.deltas[..run.deltas.len() - 1]).expect("chain folds");
    let cur = compact(&prev, &run.deltas[run.deltas.len() - 1..]).expect("chain folds");
    let tail: Vec<_> = run.wal.iter().filter(|rec| rec.at > stops[1]).copied().collect();
    let wal_bytes = encode_wal(config_digest(&config), &tail).len();
    let best = |f: &dyn Fn()| {
        (0..5)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let diff_secs = best(&|| {
        let _ = coreda_core::checkpoint::delta_checkpoint(&prev, &cur);
    });
    let encode_secs = best(&|| {
        let _ = save_delta(last, 8);
    });
    let decode_secs = best(&|| {
        let _ = load_delta(&blob, 8).expect("decode");
    });
    let dirty: usize = last.homes.iter().flatten().count();
    let homes = run.base.homes.len();
    format!(
        "  \"durability\": {{\"homes\": {homes}, \"sim_secs\": 360, \"interval_secs\": 120, \
         \"jobs\": 8, \"full_snapshot_bytes\": {full_bytes}, \"delta_bytes\": {}, \
         \"wal_interval_bytes\": {wal_bytes}, \"interval_pct_of_full\": {:.2}, \
         \"dirty_homes\": {dirty}, \"wal_records\": {}, \
         \"diff_secs\": {diff_secs:.4}, \"encode_secs\": {encode_secs:.4}, \
         \"decode_secs\": {decode_secs:.4}, \"encode_mb_per_sec\": {:.1}, \
         \"diff_homes_per_sec\": {:.0}}}",
        blob.len(),
        100.0 * (blob.len() + wal_bytes) as f64 / full_bytes as f64,
        tail.len(),
        blob.len() as f64 / 1e6 / encode_secs,
        homes as f64 / diff_secs
    )
}

/// Where the 100k-home wall clock goes. A 1-second-horizon run prices
/// fleet construction (spec interning, arena allocation, wheel slots —
/// the first episode draw lands at 60-240 s, so no home has woken
/// yet), and the remainder of the full grid cell is pure serving.
/// Construction is a few percent and amortises, so whatever gap exists
/// between fleet sizes lives in the serve phase: the struct-of-arrays
/// fleet state runs ~5.8 kB/home marginal (see `memory`), so a 100k
/// fleet is ~580 MB against ~58 MB at 10k — a 10x working-set jump
/// that outruns every cache level and the TLB. Under the strict
/// `(due, seq)` sweep that cliff cost ~2.5x of throughput; epoch
/// tiling (the default, priced head-to-head in `locality_duel`) serves
/// each window's wakes in arena order so consecutive wakes share
/// lines, closing most of it.
fn phase_breakdown_json() -> String {
    let rows: Vec<String> = [(10_000usize, 360u64), (100_000, 120)]
        .iter()
        .map(|&(homes, sim_secs)| {
            let best = |secs: u64| {
                (0..2)
                    .map(|_| {
                        let t = Instant::now();
                        let _ = run_scale(&cfg(homes, secs, 8, EngineKind::Wheel));
                        t.elapsed().as_secs_f64()
                    })
                    .fold(f64::INFINITY, f64::min)
            };
            let construct_secs = best(1);
            let total_secs = best(sim_secs);
            let serve_secs = (total_secs - construct_secs).max(0.0);
            format!(
                "    {{\"homes\": {homes}, \"sim_secs\": {sim_secs}, \"jobs\": 8, \
                 \"construct_secs\": {construct_secs:.4}, \"serve_secs\": {serve_secs:.4}, \
                 \"construct_pct\": {:.1}}}",
                100.0 * construct_secs / total_secs
            )
        })
        .collect();
    format!("  \"phase_breakdown\": [\n{}\n  ]", rows.join(",\n"))
}

/// The scheduling-mode duel at the cache cliff: 100k homes, one
/// worker, epoch-tiled locality-aware wake order vs the strict
/// `(due, seq)` sweep. The two modes must agree home for home before
/// their wall clocks mean anything — epoch tiling is a pure
/// performance knob, and the `locality_equivalence` suite holds that
/// line down to WAL bytes. The speedup figure is the acceptance bar
/// for the epoch-tiling PR: the strict sweep hops arenas in due order
/// (cold line per wake at this working-set size), the tiled sweep
/// serves each 256 ms window in ascending arena order with the next
/// home's lanes prefetched.
fn locality_duel_json() -> String {
    let epoch_cfg = cfg(100_000, 120, 1, EngineKind::Wheel);
    let strict_cfg = MetroConfig {
        sched: SchedMode::Strict,
        ..cfg(100_000, 120, 1, EngineKind::Wheel)
    };
    assert_eq!(
        run_scale(&epoch_cfg).per_home,
        run_scale(&strict_cfg).per_home,
        "sched modes diverged; timings would compare different work"
    );
    let (epoch_secs, ticks) = measure(&epoch_cfg);
    let (strict_secs, _) = measure(&strict_cfg);
    format!(
        "  \"locality_duel\": {{\"homes\": 100000, \"sim_secs\": 120, \"jobs\": 1, \
         \"pipeline_ticks\": {ticks}, \
         \"epoch_secs\": {epoch_secs:.4}, \"strict_secs\": {strict_secs:.4}, \
         \"epoch_events_per_sec\": {:.0}, \"strict_events_per_sec\": {:.0}, \
         \"speedup\": {:.2}}}",
        ticks as f64 / epoch_secs,
        ticks as f64 / strict_secs,
        strict_secs / epoch_secs
    )
}

/// Snapshot codec throughput at fleet scale: encode and restore a
/// mid-run 1k-home checkpoint, serial vs the sharded (`jobs = 8`) path.
/// The round trip is asserted exact before anything is timed, so the
/// rates describe a codec that actually preserves the fleet.
fn checkpoint_json() -> String {
    let config = cfg(1000, 1800, 1, EngineKind::Wheel);
    let (_, snaps) = run_scale_checkpointed(&config, &[SimTime::from_secs(900)]);
    let snap = &snaps[0];
    let blob = save_checkpoint(snap, 1);
    assert_eq!(
        &load_checkpoint(&blob, 1).expect("fresh snapshot decodes"),
        snap,
        "codec round trip drifted; throughput would measure a broken codec"
    );
    let best = |f: &dyn Fn()| {
        (0..5)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let homes = snap.homes.len();
    let encode_secs = best(&|| {
        let _ = save_checkpoint(snap, 8);
    });
    let decode_secs = best(&|| {
        let _ = load_checkpoint(&blob, 8).expect("decode");
    });
    let mb = blob.len() as f64 / 1e6;
    format!(
        "  \"checkpoint\": {{\"homes\": {homes}, \"at_secs\": 900, \
         \"blob_bytes\": {}, \"jobs\": 8, \
         \"encode_secs\": {encode_secs:.4}, \"decode_secs\": {decode_secs:.4}, \
         \"encode_mb_per_sec\": {:.1}, \"decode_mb_per_sec\": {:.1}, \
         \"encode_homes_per_sec\": {:.0}, \"decode_homes_per_sec\": {:.0}}}",
        blob.len(),
        mb / encode_secs,
        mb / decode_secs,
        homes as f64 / encode_secs,
        homes as f64 / decode_secs
    )
}

/// Heap footprint by fleet size. `bytes_per_home` is the *marginal*
/// cost from 10k to 100k homes — the slope cancels everything a fleet
/// pays once (trained planner templates, interned specs, the DES wheel's
/// fixed slots) and isolates what each additional home actually owns in
/// the struct-of-arrays arenas. The 1M-home probe is the stretch point:
/// a single short-horizon serve proving the layout holds at seven
/// figures, with its own whole-fleet average for comparison.
fn memory_json() -> String {
    let peak_at = |homes: usize, secs: u64| {
        peak_during(|| {
            let _ = run_scale(&cfg(homes, secs, 1, EngineKind::Wheel));
        })
    };
    let small = peak_at(10_000, 10);
    let large = peak_at(100_000, 10);
    let million = peak_at(1_000_000, 1);
    let marginal = (large.saturating_sub(small)) as f64 / 90_000.0;
    format!(
        "  \"memory\": {{\"peak_bytes_10k\": {small}, \"peak_bytes_100k\": {large}, \
         \"peak_bytes_1m\": {million}, \"bytes_per_home\": {marginal:.0}, \
         \"avg_bytes_per_home_1m\": {:.0}}}",
        million as f64 / 1e6
    )
}

fn emit_report(_c: &mut Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    if cfg!(debug_assertions) {
        eprintln!(
            "\nscale_micro: debug build — refusing to write {path}; \
             run under --release for committable numbers"
        );
        return;
    }
    let json = format!(
        "{{\n\"bench\": \"scale_micro\",\n\"host_cores\": {},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{}\n}}\n",
        default_jobs(),
        grid_json(),
        engine_compare_json(),
        locality_duel_json(),
        telemetry_overhead_json(),
        care_overhead_json(),
        checkpoint_json(),
        durability_json(),
        phase_breakdown_json(),
        memory_json()
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_scale, emit_report);
criterion_main!(benches);
