//! Macro benchmarks: whole-experiment costs — training episodes, live
//! episodes, table/figure regeneration units. These bound how long the
//! `repro_*` harnesses take and how the system would scale to more tools
//! and longer routines.

use coreda_adl::activity::catalog;
use coreda_adl::patient::PatientProfile;
use coreda_adl::routine::Routine;
use coreda_bench::common::extract_trial;
use coreda_core::baseline::MdpPlanner;
use coreda_core::live::StochasticBehavior;
use coreda_core::planning::{PlanningConfig, PlanningSubsystem, RewardConfig};
use coreda_core::system::{Coreda, CoredaConfig};
use coreda_des::rng::SimRng;
use coreda_sensornet::network::LinkConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);

    group.bench_function("train_one_episode", |b| {
        let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
        let mut rng = SimRng::seed_from(1);
        b.iter(|| planner.train_episode(black_box(routine.steps()), &mut rng));
    });

    group.bench_function("train_120_episodes_fresh", |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| {
            let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
            for _ in 0..120 {
                planner.train_episode(routine.steps(), &mut rng);
            }
            planner.accuracy_vs_routine(&routine)
        });
    });

    group.bench_function("value_iteration_oracle", |b| {
        b.iter(|| MdpPlanner::solve(&tea, &routine, RewardConfig::default(), 0.05, 20));
    });
    group.finish();
}

fn bench_live(c: &mut Criterion) {
    let mut group = c.benchmark_group("live");
    group.sample_size(20);
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);

    group.bench_function("live_episode_clean_patient", |b| {
        let mut system = Coreda::new(tea.clone(), "x", CoredaConfig::default(), 1);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..150 {
            system.planner_mut().train_episode(routine.steps(), &mut rng);
        }
        b.iter(|| {
            let mut behavior = StochasticBehavior::new(PatientProfile::unimpaired("x"));
            system.run_live(black_box(&routine), &mut behavior, &mut rng)
        });
    });

    group.bench_function("live_episode_severe_patient", |b| {
        let mut system = Coreda::new(tea.clone(), "x", CoredaConfig::default(), 3);
        let mut rng = SimRng::seed_from(4);
        for _ in 0..150 {
            system.planner_mut().train_episode(routine.steps(), &mut rng);
        }
        b.iter(|| {
            let mut behavior = StochasticBehavior::new(PatientProfile::severe("x"));
            system.run_live(black_box(&routine), &mut behavior, &mut rng)
        });
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);

    group.bench_function("persistence_save", |b| {
        let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
        let mut rng = SimRng::seed_from(6);
        for _ in 0..150 {
            planner.train_episode(routine.steps(), &mut rng);
        }
        b.iter(|| coreda_core::persistence::save_policy(black_box(&planner)));
    });

    group.bench_function("persistence_restore", |b| {
        let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
        let mut rng = SimRng::seed_from(7);
        for _ in 0..150 {
            planner.train_episode(routine.steps(), &mut rng);
        }
        let blob = coreda_core::persistence::save_policy(&planner);
        let mut fresh = PlanningSubsystem::new(&tea, PlanningConfig::default());
        b.iter(|| coreda_core::persistence::restore_policy(&mut fresh, black_box(&blob)).unwrap());
    });

    group.bench_function("certainty_equivalence_observe_and_solve", |b| {
        use coreda_core::baseline::CertaintyEquivalence;
        use coreda_core::planning::RewardConfig;
        let mut ce = CertaintyEquivalence::new(&tea, RewardConfig::default(), 0.05);
        b.iter(|| ce.observe_episode(black_box(routine.steps())));
    });

    group.bench_function("session_tracker_report", |b| {
        use coreda_core::sessions::SessionTracker;
        use coreda_des::time::{SimDuration, SimTime};
        use coreda_sensornet::node::NodeId;
        let mut tracker = SessionTracker::new(
            &[catalog::tea_making(), catalog::tooth_brushing()],
            SimDuration::from_secs(120),
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            tracker.on_report(
                black_box(NodeId::new(5 + (t % 4) as u16)),
                SimTime::from_millis(t * 100),
            )
        });
    });
    group.finish();
}

fn bench_experiment_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_units");
    let tea = catalog::tea_making();

    group.bench_function("table3_one_extract_trial", |b| {
        let mut rng = SimRng::seed_from(5);
        b.iter(|| extract_trial(black_box(&tea), 1, LinkConfig::default(), &mut rng));
    });

    group.bench_function("figure1_scenario", |b| {
        group_scenario(b);
    });
    group.finish();
}

fn group_scenario(b: &mut criterion::Bencher) {
    let mut seed = 0u64;
    b.iter(|| {
        seed += 1;
        coreda_core::scenario::figure1(black_box(seed))
    });
}

criterion_group!(benches, bench_training, bench_live, bench_components, bench_experiment_units);
criterion_main!(benches);
