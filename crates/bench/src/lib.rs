//! # coreda-bench — experiment harnesses for every table and figure
//!
//! Each module reproduces one piece of the paper's evaluation; the
//! `repro_*` binaries print the corresponding table or series. See
//! `EXPERIMENTS.md` at the repository root for paper-vs-measured records.

pub mod ablation;
pub mod adaptation;
pub mod baseline_cmp;
pub mod burden;
pub mod common;
pub mod contention;
pub mod energy_study;
pub mod fig4;
pub mod radio_loss;
pub mod table3;
pub mod table4;
