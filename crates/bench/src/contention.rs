//! Scaling study: many simultaneously active tools on one channel.
//!
//! The paper's prototype had one user and at most one tool in motion at a
//! time, so the CC1000's tiny contention window never mattered. A care
//! *facility* is different: a dozen residents' tools key up in the same
//! 100 ms slots. This study measures how window-delivery probability and
//! step-extraction precision degrade with the number of concurrently
//! active tools, and how much a wider contention window buys back.

use coreda_core::fleet::FleetEngine;
use coreda_des::rng::SimRng;
use coreda_sensornet::detect::Thresholds;
use coreda_sensornet::medium::SharedMedium;
use coreda_sensornet::network::{LinkConfig, StarNetwork};
use coreda_sensornet::node::{NodeId, PavenetNode};
use coreda_sensornet::signal::SignalModel;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionPoint {
    /// Concurrently active tools.
    pub active_tools: usize,
    /// Contention-window size.
    pub window: u8,
    /// Fraction of positive detection windows whose report reached the
    /// base station.
    pub delivery: f64,
    /// Fraction of 6-second "steps" extracted (≥1 delivered report).
    pub extraction: f64,
}

/// Simulates `trials` six-second steps with `active_tools` tools all in
/// use at once, contending on a medium with the given `window`.
#[must_use]
pub fn run_point(active_tools: usize, window: u8, trials: usize, seed: u64) -> ContentionPoint {
    let medium = SharedMedium::new(window);
    let mut rng = SimRng::seed_from(seed);
    let model = SignalModel::accelerometer(0.03, 0.45, 0.6);

    let mut nodes: Vec<PavenetNode> = (0..active_tools)
        .map(|i| {
            PavenetNode::new(
                NodeId::new(u16::try_from(i + 1).expect("few tools")),
                model,
                Thresholds::default(),
            )
        })
        .collect();
    let mut net = StarNetwork::new(LinkConfig::default());
    for n in &nodes {
        net.register(n.uid());
    }

    let mut reports_raised = 0u64;
    let mut reports_delivered = 0u64;
    let mut steps_extracted = 0u64;
    for _ in 0..trials {
        // Each trial: one 6 s step, all tools active; track whether the
        // *first* tool got at least one report through (the step under
        // measurement — the others are interference).
        let mut tool0_delivered = false;
        for tick in 0..60u64 {
            let mut outbox = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                if let Some(p) = node.sample_tick(true, tick * 100, &mut rng) {
                    outbox.push((i, p));
                }
            }
            let slots = medium.resolve_slot(outbox.len(), &mut rng);
            for ((i, packet), won) in outbox.into_iter().zip(slots) {
                if i == 0 {
                    reports_raised += 1;
                }
                if !won {
                    continue;
                }
                // Every medium winner transmits (interference traffic
                // exercises the ARQ path too); only tool 0 is measured.
                let delivered = net.send_uplink(&packet, &mut rng).is_delivered();
                if delivered && i == 0 {
                    reports_delivered += 1;
                    tool0_delivered = true;
                }
            }
        }
        if tool0_delivered {
            steps_extracted += 1;
        }
        for n in &mut nodes {
            n.reset_detector();
        }
    }
    ContentionPoint {
        active_tools,
        window,
        delivery: if reports_raised == 0 {
            0.0
        } else {
            reports_delivered as f64 / reports_raised as f64
        },
        extraction: steps_extracted as f64 / trials as f64,
    }
}

/// The standard sweep: 1–12 concurrent tools at windows 8 and 32.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Vec<ContentionPoint> {
    run_on(FleetEngine::default(), trials, seed)
}

/// [`run`] on an explicit [`FleetEngine`]: one job per sweep point, each
/// already seeded independently, so the sweep is identical at any worker
/// count.
#[must_use]
pub fn run_on(engine: FleetEngine, trials: usize, seed: u64) -> Vec<ContentionPoint> {
    let mut cells = Vec::new();
    for &window in &[8u8, 32] {
        for &k in &[1usize, 2, 4, 8, 12] {
            cells.push((k, window));
        }
    }
    engine.map(cells, |(k, window)| run_point(k, window, trials, seed ^ u64::from(window)))
}

/// Renders the sweep.
#[must_use]
pub fn render(points: &[ContentionPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Scaling: concurrent tools on one channel ==");
    let _ = writeln!(
        out,
        "  {:>6} {:>8} {:>10} {:>11}",
        "tools", "window", "delivery", "extraction"
    );
    for p in points {
        let _ = writeln!(
            out,
            "  {:>6} {:>8} {:>9.0}% {:>10.0}%",
            p.active_tools,
            p.window,
            p.delivery * 100.0,
            p.extraction * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_degrades_with_contenders() {
        let solo = run_point(1, 8, 40, 1);
        let crowd = run_point(8, 8, 40, 1);
        assert!(solo.delivery > 0.99, "lone tool delivers everything: {solo:?}");
        assert!(
            crowd.delivery < solo.delivery - 0.1,
            "eight contenders in eight slots must collide: {crowd:?} vs {solo:?}"
        );
        // Extraction survives because a 6 s step only needs one success.
        assert!(crowd.extraction > 0.9, "{crowd:?}");
    }

    #[test]
    fn wider_window_restores_delivery() {
        let narrow = run_point(8, 8, 40, 2);
        let wide = run_point(8, 32, 40, 2);
        assert!(
            wide.delivery > narrow.delivery,
            "a wider contention window must help: {wide:?} vs {narrow:?}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(run_point(4, 8, 10, 7), run_point(4, 8, 10, 7));
    }
}
