//! Table 3 — "Extract Precision of ADL Step".
//!
//! The paper collected 320 samples (40 per tool) across the two ADLs and
//! reports per-step extraction precision between 80 % and 100 %, with the
//! two short steps lowest ("Dry with a towel" 85 %, "Pour hot water into
//! kettle" 80 %).

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_core::fleet::{derive_seed, FleetEngine};
use coreda_core::metrics::PrecisionCounter;
use coreda_des::rng::SimRng;
use coreda_sensornet::network::{LinkConfig, StarNetwork};

use crate::common::extract_trial_in;

/// One row of the reproduced table.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractRow {
    /// ADL name.
    pub adl: String,
    /// Step name.
    pub step: String,
    /// Measured precision.
    pub precision: PrecisionCounter,
    /// The paper's reported value for this row.
    pub paper: f64,
}

/// The paper's Table 3 values, in catalog order.
#[must_use]
pub fn paper_values() -> Vec<f64> {
    vec![
        0.90, 1.00, 1.00, 0.85, // Tooth-brushing
        1.00, 0.80, 1.00, 0.90, // Tea-making
    ]
}

/// Runs the Table 3 protocol: `trials` performances of every step of both
/// catalog ADLs over a perfect radio link.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Vec<ExtractRow> {
    run_with_link(trials, seed, LinkConfig::default())
}

/// Same, with a custom radio link (used by the loss-sweep experiment).
#[must_use]
pub fn run_with_link(trials: usize, seed: u64, link: LinkConfig) -> Vec<ExtractRow> {
    run_with_link_on(FleetEngine::default(), trials, seed, link)
}

/// [`run_with_link`] on an explicit [`FleetEngine`]: one job per table
/// row, each with a counter-based RNG stream derived from the row index,
/// so the table is identical at any worker count.
#[must_use]
pub fn run_with_link_on(
    engine: FleetEngine,
    trials: usize,
    seed: u64,
    link: LinkConfig,
) -> Vec<ExtractRow> {
    let paper = paper_values();
    let adls = catalog::paper_adls();
    let mut cells = Vec::new();
    for (ai, adl) in adls.iter().enumerate() {
        for idx in 0..adl.steps().len() {
            cells.push((cells.len(), ai, idx));
        }
    }
    engine.map(cells, |(row, ai, idx)| {
        let adl = &adls[ai];
        let mut rng = SimRng::seed_from(derive_seed(seed, "table3", row as u64));
        let mut net = StarNetwork::new(link);
        let mut counter = PrecisionCounter::new();
        for _ in 0..trials {
            counter.record(extract_trial_in(adl, idx, &mut net, &mut rng));
        }
        ExtractRow {
            adl: adl.name().to_owned(),
            step: adl.steps()[idx].name().to_owned(),
            precision: counter,
            paper: paper[row],
        }
    })
}

/// Runs Table 3 for a single custom ADL (generalisation demo).
#[must_use]
pub fn run_for(spec: &AdlSpec, trials: usize, seed: u64) -> Vec<(String, PrecisionCounter)> {
    let engine = FleetEngine::default();
    let cells: Vec<usize> = (0..spec.steps().len()).collect();
    engine.map(cells, |idx| {
        let mut rng = SimRng::seed_from(derive_seed(seed, "table3-custom", idx as u64));
        let mut net = StarNetwork::new(LinkConfig::default());
        let mut counter = PrecisionCounter::new();
        for _ in 0..trials {
            counter.record(extract_trial_in(spec, idx, &mut net, &mut rng));
        }
        (spec.steps()[idx].name().to_owned(), counter)
    })
}

/// Renders the table like the paper's.
#[must_use]
pub fn render(rows: &[ExtractRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Table 3: Extract Precision of ADL Step ==");
    let _ = writeln!(out, "  {:<14} {:<30} {:>9} {:>7}", "ADL", "ADL Step", "Measured", "Paper");
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<14} {:<30} {:>8.0}% {:>6.0}%",
            r.adl,
            r.step,
            r.precision.precision() * 100.0,
            r.paper * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reproduction criterion: every step lands in the paper's
    /// 75–100 % band, and the two short steps are the weakest of their
    /// ADLs (the paper's qualitative finding: "the precisions of Dry with
    /// a towel and Pour hot water into kettle are relatively low. It is
    /// because the duration of these two steps are relatively shorter").
    #[test]
    fn shape_matches_paper() {
        let rows = run(120, 2007);
        for r in &rows {
            let p = r.precision.precision();
            assert!(
                (0.70..=1.0).contains(&p),
                "{}/{} precision {p:.2} out of band",
                r.adl,
                r.step
            );
        }
        let prec = |name: &str| {
            rows.iter().find(|r| r.step == name).unwrap().precision.precision()
        };
        // Short steps weakest in their ADLs.
        assert!(prec("Dry with a towel") < prec("Brush the teeth"));
        assert!(prec("Dry with a towel") < prec("Gargle with water"));
        assert!(prec("Pour hot water into kettle") < prec("Put tea-leaf into kettle"));
        assert!(prec("Pour hot water into kettle") < prec("Pour tea into tea cup"));
        // Long steady steps are essentially perfect.
        assert!(prec("Brush the teeth") > 0.97);
        assert!(prec("Put tea-leaf into kettle") > 0.97);
    }

    #[test]
    fn row_count_matches_table() {
        let rows = run(5, 1);
        assert_eq!(rows.len(), 8, "two ADLs × four steps");
        assert_eq!(paper_values().len(), 8);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(run(20, 9), run(20, 9));
    }

    #[test]
    fn render_contains_all_steps() {
        let rows = run(5, 1);
        let s = render(&rows);
        for r in &rows {
            assert!(s.contains(&r.step));
        }
    }
}
