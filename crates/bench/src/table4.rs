//! Table 4 — "Predict Precision of ADL Step".
//!
//! After learning a user's routine, the paper verifies the correctness of
//! reminding on 30 test samples per ADL, covering the two trigger
//! situations equally: (1) the user idles past the timeout, (2) the user
//! uses a wrong tool. Every non-initial step scores 100 %; the first step
//! has no entry because "we need them to trigger the start of
//! prediction".

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::routine::Routine;
use coreda_adl::step::StepId;
use coreda_core::fleet::FleetEngine;
use coreda_core::metrics::PrecisionCounter;
use coreda_core::planning::{PlanningConfig, PlanningSubsystem};
use coreda_des::rng::SimRng;

use crate::common::{corrupt_sequence, measure_extraction};

/// One row of the reproduced table.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRow {
    /// ADL name.
    pub adl: String,
    /// Step name.
    pub step: String,
    /// `None` for the first step (it triggers prediction; Table 4 leaves
    /// it blank).
    pub precision: Option<PrecisionCounter>,
}

/// Trains a planner the way the paper did: 120 recorded episodes run
/// through the sensing pipeline's extraction noise.
#[must_use]
pub fn train_planner(spec: &AdlSpec, episodes: usize, seed: u64) -> PlanningSubsystem {
    let routine = Routine::canonical(spec);
    let mut rng = SimRng::seed_from(seed);
    let extraction = measure_extraction(spec, 300, &mut rng);
    let mut planner = PlanningSubsystem::new(spec, PlanningConfig::default());
    for _ in 0..episodes {
        let observed = corrupt_sequence(routine.steps(), spec, &extraction, &mut rng);
        planner.train_episode(&observed, &mut rng);
    }
    planner
}

/// Runs the Table 4 protocol for one ADL with `samples` test trials split
/// evenly between the two trigger situations and across non-initial steps.
#[must_use]
pub fn run_adl(spec: &AdlSpec, samples: usize, seed: u64) -> Vec<PredictRow> {
    let planner = train_planner(spec, 120, seed);
    let routine = Routine::canonical(spec);
    let steps = routine.steps();
    let mut rng = SimRng::seed_from(seed ^ 0xDEAD_BEEF);

    let mut counters: Vec<PrecisionCounter> = vec![PrecisionCounter::new(); steps.len()];
    for trial in 0..samples {
        // Cycle through non-initial steps and alternate the situation, so
        // the two situations are "equally examined".
        let j = 1 + trial % (steps.len() - 1);
        let idle_situation = (trial / (steps.len() - 1)).is_multiple_of(2);
        let prev = if j >= 2 { steps[j - 2] } else { StepId::IDLE };
        let cur = steps[j - 1];
        let predicted = planner.predict_tool(prev, cur);

        let correct = if idle_situation {
            // Situation 1: the user idles in (prev, cur); the reminder
            // must point at the routine's next tool.
            predicted == steps[j].tool()
        } else {
            // Situation 2: the user grabs a wrong tool. The reminder is
            // issued from the same pre-error state; it must point at the
            // correct next tool AND flag the misused tool (which the
            // reminding subsystem does whenever the prompt differs from
            // the tool in use).
            let wrong = spec
                .tools()
                .iter()
                .map(coreda_adl::tool::Tool::id)
                .find(|&t| Some(t) != steps[j].tool() && StepId::from_tool(t) != cur)
                .expect("ADLs have more than two tools");
            predicted == steps[j].tool() && predicted != Some(wrong)
        };
        counters[j].record(correct);
        let _ = &mut rng;
    }

    steps
        .iter()
        .enumerate()
        .map(|(i, &id)| PredictRow {
            adl: spec.name().to_owned(),
            step: spec.step(id).expect("routine step in spec").name().to_owned(),
            precision: (i > 0).then(|| counters[i]),
        })
        .collect()
}

/// Runs the full Table 4 experiment (30 samples per ADL, like the paper).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Vec<PredictRow> {
    run_on(FleetEngine::default(), samples, seed)
}

/// [`run`] on an explicit [`FleetEngine`]: one training job per ADL.
#[must_use]
pub fn run_on(engine: FleetEngine, samples: usize, seed: u64) -> Vec<PredictRow> {
    let adls: Vec<AdlSpec> = catalog::paper_adls().into_iter().collect();
    engine
        .map(adls, |adl| run_adl(&adl, samples, seed))
        .into_iter()
        .flatten()
        .collect()
}

/// Renders the table like the paper's.
#[must_use]
pub fn render(rows: &[PredictRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Table 4: Predict Precision of ADL Step ==");
    let _ = writeln!(out, "  {:<14} {:<30} {:>9} {:>7}", "ADL", "ADL Step", "Measured", "Paper");
    for r in rows {
        let (measured, paper) = match &r.precision {
            Some(p) => (format!("{:.0}%", p.precision() * 100.0), "100%"),
            None => ("-".to_owned(), "-"),
        };
        let _ = writeln!(out, "  {:<14} {:<30} {:>9} {:>7}", r.adl, r.step, measured, paper);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reproduction criterion: after convergence every non-initial
    /// step predicts at 100 %, and the first step has no entry.
    #[test]
    fn shape_matches_paper() {
        let rows = run(30, 2007);
        assert_eq!(rows.len(), 8);
        for (i, r) in rows.iter().enumerate() {
            let first_of_adl = i % 4 == 0;
            match (&r.precision, first_of_adl) {
                (None, true) => {}
                (Some(p), false) => {
                    assert_eq!(
                        p.precision(),
                        1.0,
                        "{}/{} should predict perfectly, got {p}",
                        r.adl,
                        r.step
                    );
                    assert!(p.total() >= 5, "each step gets several trials");
                }
                other => panic!("row {i} has unexpected shape {other:?}"),
            }
        }
    }

    #[test]
    fn undertrained_planner_is_imperfect() {
        // Sanity check that the experiment can fail: with 3 training
        // episodes the planner cannot predict everything.
        let tea = catalog::tea_making();
        let planner = train_planner(&tea, 3, 1);
        let routine = Routine::canonical(&tea);
        let acc = planner.accuracy_vs_routine(&routine);
        assert!(acc < 1.0, "3 episodes should not be enough, got {acc}");
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(run(30, 5), run(30, 5));
    }

    #[test]
    fn trials_split_across_situations() {
        let tea = catalog::tea_making();
        let rows = run_adl(&tea, 30, 2007);
        let total: u64 = rows.iter().filter_map(|r| r.precision.map(|p| p.total())).sum();
        assert_eq!(total, 30, "all 30 samples are scored");
    }
}
