//! Failure injection: what packet loss does to CoReDA.
//!
//! The paper ran on a clean bench-top link; a deployed home has
//! microwaves, bodies and concrete. This experiment sweeps frame-loss
//! probability (memoryless and bursty Gilbert–Elliott) and reports the
//! end-to-end effect on extraction precision and on learning convergence.

use coreda_adl::activity::catalog;
use coreda_adl::routine::Routine;
use coreda_core::fleet::{derive_seed, FleetEngine};
use coreda_core::metrics::mean_curve;
use coreda_core::planning::{PlanningConfig, PlanningSubsystem};
use coreda_des::rng::SimRng;
use coreda_sensornet::network::{LinkConfig, StarNetwork};
use coreda_sensornet::radio::LossModel;

use crate::common::{corrupt_sequence_into, extract_trial_in};
use crate::fig4::sustained_crossing;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct LossPoint {
    /// Link description.
    pub link: String,
    /// Mean extraction precision across every step of both ADLs.
    pub mean_extraction: f64,
    /// Episodes to sustain 95 % routine accuracy on Tea-making (mean
    /// curve over seeds), if reached within the horizon.
    pub converge_95: Option<usize>,
    /// Final Tea-making accuracy.
    pub final_accuracy: f64,
}

fn link_with(loss: LossModel) -> LinkConfig {
    LinkConfig { loss, ..LinkConfig::default() }
}

/// The standard sweep: perfect, Bernoulli {10, 30, 50, 70 %}, and a
/// bursty channel with a similar average rate to the 30 % point.
#[must_use]
pub fn standard_links() -> Vec<(String, LinkConfig)> {
    let mut links = vec![("perfect".to_owned(), link_with(LossModel::Perfect))];
    for p in [0.1, 0.3, 0.5, 0.7] {
        links.push((format!("bernoulli {:.0}%", p * 100.0), link_with(LossModel::Bernoulli { p })));
    }
    links.push((
        "gilbert-elliott (bursty ~30%)".to_owned(),
        link_with(LossModel::GilbertElliott {
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.2,
            loss_good: 0.05,
            loss_bad: 0.8,
        }),
    ));
    links
}

/// Runs the sweep.
#[must_use]
pub fn run(extract_trials: usize, episodes: usize, seeds: usize, base_seed: u64) -> Vec<LossPoint> {
    run_on(FleetEngine::default(), extract_trials, episodes, seeds, base_seed)
}

/// [`run`] on an explicit [`FleetEngine`]: each link point fans its
/// extraction rows and training seeds out as independent jobs with
/// counter-based RNG streams.
#[must_use]
pub fn run_on(
    engine: FleetEngine,
    extract_trials: usize,
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> Vec<LossPoint> {
    standard_links()
        .into_iter()
        .map(|(label, link)| run_point(engine, &label, link, extract_trials, episodes, seeds, base_seed))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    engine: FleetEngine,
    label: &str,
    link: LinkConfig,
    extract_trials: usize,
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> LossPoint {
    // Extraction across all steps of both ADLs under this link: one job
    // per step, each with a stream derived from the link label and row.
    let tea = catalog::tea_making();
    let adls = catalog::paper_adls();
    let mut cells = Vec::new();
    for (ai, adl) in adls.iter().enumerate() {
        for idx in 0..adl.steps().len() {
            cells.push((cells.len(), ai, idx));
        }
    }
    let rows = engine.map(cells, |(row, ai, idx)| {
        let mut rng = SimRng::seed_from(derive_seed(base_seed, label, row as u64));
        let mut net = StarNetwork::new(link);
        let ok = (0..extract_trials)
            .filter(|_| extract_trial_in(&adls[ai], idx, &mut net, &mut rng))
            .count();
        (ai, ok)
    });
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut tea_extraction = Vec::new();
    for (ai, ok) in rows {
        hits += ok;
        total += extract_trials;
        if adls[ai].name() == tea.name() {
            tea_extraction.push(ok as f64 / extract_trials as f64);
        }
    }

    // Learning under this link's extraction, Tea-making: one job per seed.
    let routine = Routine::canonical(&tea);
    let per_seed = engine.map((0..seeds).collect(), |s| {
        let mut srng = SimRng::seed_from(base_seed ^ (0x1111_2222 * (s as u64 + 1)));
        let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
        let mut curve = Vec::with_capacity(episodes);
        let mut observed = Vec::with_capacity(routine.steps().len());
        for _ in 0..episodes {
            corrupt_sequence_into(routine.steps(), &tea, &tea_extraction, &mut srng, &mut observed);
            planner.train_episode(&observed, &mut srng);
            curve.push(planner.accuracy_vs_routine(&routine));
        }
        let final_acc = planner.accuracy_vs_routine(&routine);
        (curve, final_acc)
    });
    let mut curves = Vec::with_capacity(seeds);
    let mut final_acc = 0.0;
    for (curve, fa) in per_seed {
        final_acc += fa;
        curves.push(curve);
    }
    let mean = mean_curve(&curves);
    LossPoint {
        link: label.to_owned(),
        mean_extraction: hits as f64 / total as f64,
        converge_95: sustained_crossing(&mean, 0.95, 3),
        final_accuracy: final_acc / seeds as f64,
    }
}

/// Renders the sweep.
#[must_use]
pub fn render(points: &[LossPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Failure injection: radio loss sweep ==");
    let _ = writeln!(
        out,
        "  {:<30} {:>11} {:>9} {:>10}",
        "link", "extraction", "conv@95%", "final acc"
    );
    for p in points {
        let conv = p.converge_95.map_or("n/a".to_owned(), |v| v.to_string());
        let _ = writeln!(
            out,
            "  {:<30} {:>10.1}% {:>9} {:>9.1}%",
            p.link,
            p.mean_extraction * 100.0,
            conv,
            p.final_accuracy * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_absorbs_moderate_loss() {
        // Stop-and-wait with 3 retries keeps extraction essentially flat
        // up to 30 % loss; heavy loss finally bites.
        let points = run(60, 60, 4, 2007);
        let by_name = |n: &str| points.iter().find(|p| p.link.starts_with(n)).unwrap();
        let perfect = by_name("perfect").mean_extraction;
        let b30 = by_name("bernoulli 30%").mean_extraction;
        let b70 = by_name("bernoulli 70%").mean_extraction;
        assert!((perfect - b30).abs() < 0.05, "ARQ should mask 30% loss: {perfect} vs {b30}");
        assert!(b70 < perfect - 0.05, "70% loss should hurt: {b70} vs {perfect}");
    }

    #[test]
    fn learning_survives_loss() {
        // Enough extraction trials and seeds that the band below measures
        // the learner, not Monte-Carlo noise in the extraction estimate.
        let points = run(80, 100, 6, 11);
        for p in &points {
            assert!(
                p.final_accuracy > 0.8,
                "learning should stay functional under {}: {p:?}",
                p.link
            );
        }
    }
}
