//! Longitudinal caregiver-burden study.
//!
//! The paper's opening claim: "With the assistance of ubiquitous guidance
//! system which can remind elderly instead of them, caregivers' burden
//! will be significantly reduced." We quantify it over a year of
//! progressing dementia ([`SeverityTrajectory`]): every lapse the system
//! resolves with a prompt is a lapse the caregiver did not have to handle
//! in person. Without the system, every lapse falls to the caregiver (or
//! to slow self-recovery).

use coreda_adl::activity::catalog;
use coreda_adl::drift::SeverityTrajectory;
use coreda_adl::routine::Routine;
use coreda_core::live::{LogKind, StochasticBehavior};
use coreda_core::report::DailyReport;
use coreda_core::system::{Coreda, CoredaConfig};
use coreda_des::rng::SimRng;

/// One sampled day of the longitudinal study.
#[derive(Debug, Clone, PartialEq)]
pub struct BurdenPoint {
    /// Day index.
    pub day: u32,
    /// Patient lapses per episode (freezes + wrong grabs), ground truth.
    pub lapses_per_episode: f64,
    /// Lapses resolved by a system prompt per episode (praise events).
    pub prompt_resolved_per_episode: f64,
    /// Lapses left to self-recovery / caregiver per episode.
    pub unresolved_per_episode: f64,
    /// Mean completion time with the system, seconds.
    pub completion_with_s: f64,
    /// Mean completion time without a (useful) system, seconds.
    pub completion_without_s: f64,
}

/// Runs the study: sample every `stride` days up to `days`, running
/// `episodes` tea-making episodes per sampled day under the default
/// severity trajectory.
#[must_use]
pub fn run(days: u32, stride: u32, episodes: usize, seed: u64) -> Vec<BurdenPoint> {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let trajectory = SeverityTrajectory::default();

    // The assisted system learned the routine; the unassisted arm is the
    // same pipeline with an untrained planner (its prompts never match,
    // so every lapse is left to self-recovery — the "no system" world).
    let mut with = Coreda::new(tea.clone(), "x", CoredaConfig::default(), seed);
    let mut train_rng = SimRng::seed_from(seed ^ 0xAB);
    for _ in 0..200 {
        with.planner_mut().train_episode(routine.steps(), &mut train_rng);
    }
    let mut without = Coreda::new(tea, "x", CoredaConfig::default(), seed ^ 0xCD);

    let mut points = Vec::new();
    let mut day = 0;
    while day <= days {
        let profile = trajectory.profile_on_day("x", day);
        let mut rng = SimRng::seed_from(seed ^ (u64::from(day) << 8));
        let mut lapses = 0usize;
        let mut resolved = 0usize;
        let mut with_logs = Vec::new();
        let mut without_logs = Vec::new();
        for _ in 0..episodes {
            let mut behavior = StochasticBehavior::new(profile.clone());
            let log = with.run_live(&routine, &mut behavior, &mut rng);
            lapses += log
                .entries()
                .iter()
                .filter(|(_, k)| {
                    matches!(k, LogKind::PatientFroze | LogKind::PatientMisused(_))
                })
                .count();
            resolved += log.praise_count();
            with_logs.push(log);

            let mut behavior = StochasticBehavior::new(profile.clone());
            without_logs.push(without.run_live(&routine, &mut behavior, &mut rng));
        }
        let with_report = DailyReport::from_logs("x", format!("day {day}"), &with_logs);
        let without_report = DailyReport::from_logs("x", format!("day {day}"), &without_logs);
        let n = episodes as f64;
        points.push(BurdenPoint {
            day,
            lapses_per_episode: lapses as f64 / n,
            prompt_resolved_per_episode: resolved as f64 / n,
            unresolved_per_episode: (lapses.saturating_sub(resolved)) as f64 / n,
            completion_with_s: with_report.mean_completion_s,
            completion_without_s: without_report.mean_completion_s,
        });
        day += stride;
    }
    points
}

/// Renders the study.
#[must_use]
pub fn render(points: &[BurdenPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Longitudinal study: caregiver burden under progression ==");
    let _ = writeln!(
        out,
        "  {:>5} {:>9} {:>16} {:>12} {:>12} {:>14}",
        "day", "lapses/ep", "prompt-resolved", "unresolved", "with CoReDA", "without"
    );
    for p in points {
        let _ = writeln!(
            out,
            "  {:>5} {:>9.2} {:>16.2} {:>12.2} {:>11.1}s {:>13.1}s",
            p.day,
            p.lapses_per_episode,
            p.prompt_resolved_per_episode,
            p.unresolved_per_episode,
            p.completion_with_s,
            p.completion_without_s
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burden_grows_and_the_system_absorbs_it() {
        let points = run(360, 120, 12, 2007);
        assert_eq!(points.len(), 4);
        let first = &points[0];
        let last = points.last().unwrap();
        // Dementia progressed: more lapses per episode.
        assert!(
            last.lapses_per_episode > first.lapses_per_episode,
            "progression should raise the lapse rate: {points:#?}"
        );
        // The system keeps absorbing most of them.
        assert!(
            last.prompt_resolved_per_episode >= last.lapses_per_episode * 0.5,
            "most lapses should be prompt-resolved: {last:?}"
        );
        // And assisted episodes finish faster than unassisted ones at
        // every sampled severity.
        for p in &points {
            if p.lapses_per_episode > 0.2 {
                assert!(
                    p.completion_with_s < p.completion_without_s,
                    "assistance should shorten episodes: {p:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(run(120, 60, 4, 5), run(120, 60, 4, 5));
    }
}
