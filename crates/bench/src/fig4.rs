//! Figure 4 — the TD(λ) Q-learning learning curve.
//!
//! The paper trains on 120 complete episodes per ADL and reads off when
//! the "converging condition" is met: 95 % after 49 iterations
//! (Tooth-brushing) / 56 (Tea-making), and 98 % after 91 / 98.
//!
//! We reproduce the curve as mean prediction accuracy (greedy prompt vs
//! the user's routine) over independently seeded runs. Training episodes
//! pass through the measured extraction noise of the sensing pipeline, so
//! Tea-making — whose "pour hot water" step extracts at only ~80 % —
//! learns more slowly than Tooth-brushing, exactly as in the paper.

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::routine::Routine;
use coreda_core::fleet::FleetEngine;
use coreda_core::metrics::mean_curve;
use coreda_core::planning::{PlanningConfig, PlanningSubsystem};
use coreda_des::rng::SimRng;

use crate::common::{corrupt_sequence_into, measure_extraction};

/// The learning curve of one ADL.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// ADL name.
    pub adl: String,
    /// Mean accuracy after each training episode.
    pub accuracy: Vec<f64>,
    /// First episode (1-based) whose mean accuracy sustains ≥ 95 %.
    pub converge_95: Option<usize>,
    /// First episode (1-based) whose mean accuracy sustains ≥ 98 %.
    pub converge_98: Option<usize>,
}

/// The paper's reported convergence iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperPoint {
    /// Episodes to reach 95 %.
    pub at_95: usize,
    /// Episodes to reach 98 %.
    pub at_98: usize,
}

/// Figure 4's reported values.
#[must_use]
pub fn paper_values() -> [(&'static str, PaperPoint); 2] {
    [
        ("Tooth-brushing", PaperPoint { at_95: 49, at_98: 91 }),
        ("Tea-making", PaperPoint { at_95: 56, at_98: 98 }),
    ]
}

/// First index (1-based) from which `curve` stays at or above `threshold`
/// for at least `window` points.
#[must_use]
pub fn sustained_crossing(curve: &[f64], threshold: f64, window: usize) -> Option<usize> {
    if curve.len() < window {
        return None;
    }
    (0..=curve.len() - window)
        .find(|&i| curve[i..i + window].iter().all(|&a| a >= threshold))
        .map(|i| i + 1)
}

/// Runs the Figure 4 protocol for one ADL.
#[must_use]
pub fn run_adl(
    spec: &AdlSpec,
    cfg: PlanningConfig,
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> Curve {
    run_adl_with(FleetEngine::default(), spec, cfg, episodes, seeds, base_seed)
}

/// [`run_adl`] on an explicit [`FleetEngine`] (results are identical at
/// any worker count: one job per seed, each with its own derived stream).
#[must_use]
pub fn run_adl_with(
    engine: FleetEngine,
    spec: &AdlSpec,
    cfg: PlanningConfig,
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> Curve {
    let routine = Routine::canonical(spec);
    let mut meta_rng = SimRng::seed_from(base_seed);
    let extraction = measure_extraction(spec, 300, &mut meta_rng);

    let curves = engine.map((0..seeds).collect(), |s| {
        let mut rng = SimRng::seed_from(base_seed ^ (0x9E37_79B9 * (s as u64 + 1)));
        let mut planner = PlanningSubsystem::new(spec, cfg);
        let mut curve = Vec::with_capacity(episodes);
        let mut observed = Vec::with_capacity(routine.steps().len());
        for _ in 0..episodes {
            corrupt_sequence_into(routine.steps(), spec, &extraction, &mut rng, &mut observed);
            planner.train_episode(&observed, &mut rng);
            curve.push(planner.accuracy_vs_routine(&routine));
        }
        curve
    });
    let accuracy = mean_curve(&curves);
    Curve {
        adl: spec.name().to_owned(),
        converge_95: sustained_crossing(&accuracy, 0.95, 3),
        converge_98: sustained_crossing(&accuracy, 0.98, 3),
        accuracy,
    }
}

/// Runs the full Figure 4 experiment over both catalog ADLs.
#[must_use]
pub fn run(episodes: usize, seeds: usize, base_seed: u64) -> Vec<Curve> {
    run_with(FleetEngine::default(), episodes, seeds, base_seed)
}

/// [`run`] on an explicit [`FleetEngine`].
#[must_use]
pub fn run_with(engine: FleetEngine, episodes: usize, seeds: usize, base_seed: u64) -> Vec<Curve> {
    catalog::paper_adls()
        .iter()
        .map(|adl| run_adl_with(engine, adl, PlanningConfig::default(), episodes, seeds, base_seed))
        .collect()
}

/// Renders the curves as fixed-interval series plus convergence summary.
#[must_use]
pub fn render(curves: &[Curve]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Figure 4: Learning curve ==");
    let paper = paper_values();
    for c in curves {
        let _ = writeln!(out, "  {} (episodes 1..{}):", c.adl, c.accuracy.len());
        for line in crate::common::ascii_chart(&c.accuracy, 8, 60).lines() {
            let _ = writeln!(out, "    {line}");
        }
        for (i, acc) in c.accuracy.iter().enumerate() {
            if (i + 1) % 20 == 0 || i == 0 {
                let _ = writeln!(out, "    episode {:>3}: {:>5.1}%", i + 1, acc * 100.0);
            }
        }
        let point = paper.iter().find(|(n, _)| *n == c.adl).map(|(_, p)| *p);
        let fmt_opt = |o: Option<usize>| o.map_or("n/a".to_owned(), |v| v.to_string());
        let _ = writeln!(
            out,
            "    converge@95%: measured {:>4}  (paper {})",
            fmt_opt(c.converge_95),
            point.map_or("?".into(), |p| p.at_95.to_string()),
        );
        let _ = writeln!(
            out,
            "    converge@98%: measured {:>4}  (paper {})",
            fmt_opt(c.converge_98),
            point.map_or("?".into(), |p| p.at_98.to_string()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_crossing_semantics() {
        let c = [0.9, 0.96, 0.7, 0.96, 0.97, 0.99];
        assert_eq!(sustained_crossing(&c, 0.95, 1), Some(2));
        assert_eq!(sustained_crossing(&c, 0.95, 3), Some(4));
        assert_eq!(sustained_crossing(&c, 0.999, 2), None);
        assert_eq!(sustained_crossing(&[0.9], 0.5, 3), None);
    }

    /// The headline reproduction: curves rise, both ADLs converge on the
    /// paper's time-scale (tooth 49/tea 56 at the 95 % condition), and
    /// Tea-making — whose sensing is noisier — is slower.
    #[test]
    fn shape_matches_paper() {
        let curves = run(120, 40, 2007);
        assert_eq!(curves.len(), 2);
        let tooth = &curves[0];
        let tea = &curves[1];
        assert_eq!(tooth.adl, "Tooth-brushing");

        let t95 = tooth.converge_95.expect("tooth must reach 95%");
        let tea95 = tea.converge_95.expect("tea must reach 95%");
        // Paper: 49 and 56. Accept the same order of magnitude.
        assert!((20..=80).contains(&t95), "tooth 95% at {t95}");
        assert!((25..=90).contains(&tea95), "tea 95% at {tea95}");
        assert!(
            tea95 > t95,
            "tea-making (noisier sensing) should converge later: tea {tea95} vs tooth {t95}"
        );

        // 98 % is reached later than 95 % for both ADLs.
        let t98 = tooth.converge_98.expect("tooth must reach 98%");
        let tea98 = tea.converge_98.expect("tea must reach 98%");
        assert!(t98 > t95);
        assert!(tea98 > tea95);

        // Both curves end high and start low (random policy).
        assert!(*tooth.accuracy.last().unwrap() >= 0.97);
        assert!(*tea.accuracy.last().unwrap() >= 0.95);
        assert!(tooth.accuracy[0] < 0.7);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_adl(
            &catalog::tooth_brushing(),
            PlanningConfig::default(),
            30,
            3,
            7,
        );
        let b = run_adl(
            &catalog::tooth_brushing(),
            PlanningConfig::default(),
            30,
            3,
            7,
        );
        assert_eq!(a, b);
    }
}
