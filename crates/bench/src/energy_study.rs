//! Deployment study: node energy and battery life.
//!
//! Not in the paper — but the first question a caregiver organisation
//! asks about tool-mounted motes is "how often do we change batteries?".
//! This study runs a realistic day (several ADL episodes plus long idle
//! stretches of pure 10 Hz sampling) and extrapolates battery life per
//! tool from the measured energy mix.

use coreda_adl::activity::catalog;
use coreda_adl::patient::PatientProfile;
use coreda_adl::routine::Routine;
use coreda_core::live::StochasticBehavior;
use coreda_core::system::{Coreda, CoredaConfig};
use coreda_des::rng::SimRng;
use coreda_sensornet::energy::TWO_AA_JOULES;

/// Energy summary for one tool node.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Tool name.
    pub tool: String,
    /// Microjoules consumed during the simulated day's active part.
    pub active_uj: f64,
    /// Samples taken.
    pub samples: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// LED-on milliseconds.
    pub led_ms: u64,
    /// Estimated battery life in days on two AA cells, assuming the
    /// measured episodes repeat `episodes_per_day` times daily and the
    /// node sleeps (while still sampling) the rest of the time.
    pub battery_days: f64,
}

/// Runs `episodes` tea-making episodes with a moderately impaired patient
/// and extrapolates per-tool battery life at `episodes_per_day`.
#[must_use]
pub fn run(episodes: usize, episodes_per_day: f64, seed: u64) -> Vec<EnergyRow> {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let mut system = Coreda::new(tea.clone(), "x", CoredaConfig::default(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0x77);
    for _ in 0..150 {
        system.planner_mut().train_episode(routine.steps(), &mut rng);
    }

    let mut active_ms = 0u64;
    for _ in 0..episodes {
        let mut behavior = StochasticBehavior::new(PatientProfile::moderate("x"));
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        if let Some((t, _)) = log.entries().last() {
            active_ms += t.as_millis();
        }
    }

    let model = coreda_sensornet::energy::EnergyModel::default();
    tea.tools()
        .iter()
        .map(|tool| {
            let node = system.node(tool.id()).expect("node exists per tool");
            let meter = node.energy();
            let (samples, tx, _rx, led, _sleep) = meter.breakdown();
            // Extrapolate one day: the active episodes repeat
            // `episodes_per_day / episodes` times, and the rest of the day
            // the node samples at 10 Hz without transmitting.
            let day_ms = 86_400_000.0;
            let scale = episodes_per_day / episodes as f64;
            let active_day_uj = meter.consumed_uj() * scale;
            let active_day_ms = active_ms as f64 * scale;
            let idle_ms = (day_ms - active_day_ms).max(0.0);
            let idle_samples = idle_ms / 100.0;
            let idle_uj = idle_samples * model.sample_uj + idle_ms * model.sleep_ms_uj;
            let day_uj = active_day_uj + idle_uj;
            let battery_days = TWO_AA_JOULES / (day_uj * 1e-6);
            EnergyRow {
                tool: tool.name().to_owned(),
                active_uj: meter.consumed_uj(),
                samples,
                tx_bytes: tx,
                led_ms: led,
                battery_days,
            }
        })
        .collect()
}

/// Renders the study.
#[must_use]
pub fn render(rows: &[EnergyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Deployment study: node energy & battery life ==");
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>9} {:>9} {:>8} {:>13}",
        "tool", "active µJ", "samples", "tx bytes", "LED ms", "battery days"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<16} {:>12.0} {:>9} {:>9} {:>8} {:>13.0}",
            r.tool, r.active_uj, r.samples, r.tx_bytes, r.led_ms, r.battery_days
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_life_is_plausible() {
        let rows = run(5, 3.0, 2007);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // Dominated by 10 Hz idle sampling: weeks-to-months, not hours
            // and not centuries.
            assert!(
                (10.0..10_000.0).contains(&r.battery_days),
                "{}: implausible battery estimate {:.1} days",
                r.tool,
                r.battery_days
            );
            assert!(r.samples > 0);
        }
    }

    #[test]
    fn used_tools_transmit_unused_sampling_still_costs() {
        let rows = run(5, 3.0, 7);
        // Every tea tool is used in the routine, so all transmit.
        for r in &rows {
            assert!(r.tx_bytes > 0, "{} should have reported use", r.tool);
            assert!(r.active_uj > 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(run(3, 3.0, 9), run(3, 3.0, 9));
    }
}
