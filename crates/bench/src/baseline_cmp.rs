//! CoReDA vs the prior-work baselines.
//!
//! The paper's motivating criticism of earlier guidance systems is that
//! they "are based solely on pre-planned routines of ADLs, without
//! considering different users' preferences". This experiment quantifies
//! that: on users whose personal routine deviates from the canonical
//! order, the pre-planned baseline mispredicts, while CoReDA (which
//! learned the user) matches the oracle value-iteration planner.
//! A second study compares live outcomes: completion time and reminder
//! counts for a moderately impaired patient under each planner.

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::patient::PatientProfile;
use coreda_adl::routine::Routine;
use coreda_core::baseline::{routine_accuracy, CanonicalReminder, MdpPlanner};
use coreda_core::fleet::FleetEngine;
use coreda_core::live::StochasticBehavior;
use coreda_core::planning::{PlanningConfig, PlanningSubsystem, RewardConfig};
use coreda_core::system::{Coreda, CoredaConfig};
use coreda_des::rng::SimRng;

/// Accuracy of the three predictors on one personalised routine.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Short description of the user's routine.
    pub routine: String,
    /// CoReDA after 120 training episodes.
    pub coreda: f64,
    /// The pre-planned canonical baseline.
    pub canonical: f64,
    /// Value iteration with oracle knowledge of the routine.
    pub oracle: f64,
}

/// Runs the prediction-accuracy comparison over `users` random
/// personalised routines of `spec` (plus the canonical one).
#[must_use]
pub fn accuracy_study(spec: &AdlSpec, users: usize, seed: u64) -> Vec<AccuracyRow> {
    accuracy_study_with(FleetEngine::default(), spec, users, seed)
}

/// [`accuracy_study`] on an explicit [`FleetEngine`]. The personalised
/// routines are drawn from one sequential stream up front (their shuffles
/// depend on draw order); the per-routine training jobs then fan out,
/// each with its own fixed-seed stream.
#[must_use]
pub fn accuracy_study_with(
    engine: FleetEngine,
    spec: &AdlSpec,
    users: usize,
    seed: u64,
) -> Vec<AccuracyRow> {
    let mut rng = SimRng::seed_from(seed);
    let mut routines = vec![("canonical".to_owned(), Routine::canonical(spec))];
    for u in 0..users {
        let mut ids = spec.step_ids();
        // Personalised users keep the terminal step (you drink the tea
        // last either way) but reorder the preparation steps.
        let last = ids.pop().expect("ADLs are non-empty");
        rng.shuffle(&mut ids);
        ids.push(last);
        routines.push((format!("user {}", u + 1), Routine::new(spec, ids)));
    }

    engine.map(routines, |(label, routine)| {
        let mut planner = PlanningSubsystem::new(spec, PlanningConfig::default());
        let mut train_rng = SimRng::seed_from(seed ^ 0x5555);
        for _ in 0..120 {
            planner.train_episode(routine.steps(), &mut train_rng);
        }
        let canonical = CanonicalReminder::new(spec);
        let oracle = MdpPlanner::solve(spec, &routine, RewardConfig::default(), 0.05, 20);
        AccuracyRow {
            routine: label,
            coreda: routine_accuracy(&planner, &routine),
            canonical: routine_accuracy(&canonical, &routine),
            oracle: routine_accuracy(&oracle, &routine),
        }
    })
}

/// Live outcomes under one planner state.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveRow {
    /// Planner description.
    pub planner: String,
    /// Mean completion time in seconds (only completed episodes).
    pub mean_completion_s: f64,
    /// Fraction of episodes completed within the cap.
    pub completion_rate: f64,
    /// Mean reminders per episode.
    pub mean_reminders: f64,
    /// Mean praises per episode.
    pub mean_praises: f64,
}

/// Live comparison: a moderately impaired patient runs `episodes`
/// tea-making episodes under (a) a trained CoReDA and (b) an untrained
/// one (whose prompts are useless, leaving the patient to self-recover).
#[must_use]
pub fn live_study(episodes: usize, seed: u64) -> Vec<LiveRow> {
    live_study_with(FleetEngine::default(), episodes, seed)
}

/// [`live_study`] on an explicit [`FleetEngine`]: one job per planner
/// condition (each condition already has its own derived RNG streams).
#[must_use]
pub fn live_study_with(engine: FleetEngine, episodes: usize, seed: u64) -> Vec<LiveRow> {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);

    let conditions =
        vec![("CoReDA (trained, 120 episodes)", true), ("untrained prompts", false)];
    engine.map(conditions, |(label, train)| {
        let mut system = Coreda::new(tea.clone(), "Mr. Tanaka", CoredaConfig::default(), seed);
        if train {
            let mut rng = SimRng::seed_from(seed ^ 0x1111);
            for _ in 0..120 {
                system.planner_mut().train_episode(routine.steps(), &mut rng);
            }
        }
        let mut rng = SimRng::seed_from(seed ^ 0x2222);
        let mut completions = Vec::new();
        let mut reminders = 0usize;
        let mut praises = 0usize;
        let mut completed = 0usize;
        for _ in 0..episodes {
            let mut behavior = StochasticBehavior::new(PatientProfile::moderate("Mr. Tanaka"));
            let log = system.run_live(&routine, &mut behavior, &mut rng);
            if let Some(t) = log.completed_at() {
                completed += 1;
                completions.push(t.as_secs_f64());
            }
            reminders += log.reminders().len();
            praises += log.praise_count();
        }
        LiveRow {
            planner: label.to_owned(),
            mean_completion_s: coreda_core::metrics::mean(&completions),
            completion_rate: completed as f64 / episodes as f64,
            mean_reminders: reminders as f64 / episodes as f64,
            mean_praises: praises as f64 / episodes as f64,
        }
    })
}

/// Renders the accuracy study.
#[must_use]
pub fn render_accuracy(rows: &[AccuracyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Baseline comparison: next-step prediction accuracy ==");
    let _ = writeln!(out, "  {:<12} {:>8} {:>11} {:>8}", "routine", "CoReDA", "pre-planned", "oracle");
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<12} {:>7.0}% {:>10.0}% {:>7.0}%",
            r.routine,
            r.coreda * 100.0,
            r.canonical * 100.0,
            r.oracle * 100.0
        );
    }
    out
}

/// Renders the live study.
#[must_use]
pub fn render_live(rows: &[LiveRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Baseline comparison: live episodes (moderate dementia) ==");
    let _ = writeln!(
        out,
        "  {:<32} {:>12} {:>10} {:>10} {:>8}",
        "planner", "completion", "rate", "reminders", "praises"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<32} {:>10.1}s {:>9.0}% {:>10.2} {:>8.2}",
            r.planner,
            r.mean_completion_s,
            r.completion_rate * 100.0,
            r.mean_reminders,
            r.mean_praises
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coreda_matches_oracle_and_beats_preplanned() {
        let tea = catalog::tea_making();
        let rows = accuracy_study(&tea, 4, 2007);
        assert_eq!(rows.len(), 5);
        // On the canonical user everyone is perfect.
        assert_eq!(rows[0].coreda, 1.0);
        assert_eq!(rows[0].canonical, 1.0);
        assert_eq!(rows[0].oracle, 1.0);
        // On personalised users CoReDA stays with the oracle; the
        // pre-planned baseline loses accuracy whenever the order differs.
        let mut baseline_ever_wrong = false;
        for r in &rows[1..] {
            assert_eq!(r.oracle, 1.0, "{r:?}");
            assert!(r.coreda >= 0.99, "CoReDA should learn every user: {r:?}");
            if r.canonical < 1.0 {
                baseline_ever_wrong = true;
            }
        }
        assert!(
            baseline_ever_wrong,
            "at least one shuffled user should defeat the pre-planned baseline: {rows:#?}"
        );
    }

    #[test]
    fn trained_system_outperforms_untrained_live() {
        let rows = live_study(12, 2007);
        let trained = &rows[0];
        let untrained = &rows[1];
        assert!(trained.completion_rate >= untrained.completion_rate);
        assert!(
            trained.mean_completion_s < untrained.mean_completion_s,
            "useful prompts should shorten episodes: {rows:#?}"
        );
    }
}
