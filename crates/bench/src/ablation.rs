//! Ablations over the design choices DESIGN.md calls out:
//!
//! - **λ sweep** — how much do eligibility traces buy on CoReDA's MDP?
//! - **Reward shape** — what breaks when the 1000/100/50/0 structure is
//!   flattened or the mismatch penalty is removed?
//! - **Fast learning** (future work §4.2) — Dyna-Q model replay vs the
//!   paper's TD(λ), measured in real episodes to convergence.
//! - **Algorithm family** — Q-learning / SARSA / Expected SARSA / Q(λ).

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::routine::Routine;
use coreda_adl::step::StepId;
use coreda_core::baseline::{routine_accuracy, CertaintyEquivalence};
use coreda_core::fleet::FleetEngine;
use coreda_core::planning::{PlanningConfig, PlanningSubsystem, RewardConfig, StateEncoder};
use coreda_core::reminding::ReminderLevel;
use coreda_des::rng::SimRng;
use coreda_rl::algo::{DoubleQLearning, DynaQ, ExpectedSarsa, Outcome, QLearning, Sarsa, TdConfig, TdControl, WatkinsQLambda};
use coreda_rl::policy::{EpsilonGreedy, Policy};
use coreda_rl::schedule::Schedule;
use coreda_rl::traces::TraceKind;

use crate::common::{corrupt_sequence_into, measure_extraction};
use crate::fig4::sustained_crossing;

/// Result of one ablation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Configuration label.
    pub label: String,
    /// Episodes to sustain ≥95 % accuracy (mean curve), if reached.
    pub converge_95: Option<usize>,
    /// Final accuracy after all episodes.
    pub final_accuracy: f64,
    /// Fraction of intermediate greedy prompts at the minimal level.
    pub minimal_fraction: f64,
}

/// Trains one [`TdControl`] learner on CoReDA's MDP encoding, replicating
/// the planning subsystem's episode protocol (used to compare algorithms
/// the subsystem does not natively embed).
#[allow(clippy::too_many_arguments)] // mirrors the planner's internal signature
pub fn train_learner_episode(
    learner: &mut dyn TdControl,
    encoder: &StateEncoder,
    reward: RewardConfig,
    terminal: StepId,
    steps: &[StepId],
    policy: &EpsilonGreedy,
    ep: u64,
    rng: &mut SimRng,
) {
    let mut seq = Vec::with_capacity(steps.len());
    train_learner_episode_in(
        learner, encoder, reward, terminal, steps, policy, ep, rng, &mut seq,
    );
}

/// [`train_learner_episode`] with a caller-owned sequence buffer, so a
/// multi-episode training loop reuses one allocation.
#[allow(clippy::too_many_arguments)] // mirrors the planner's internal signature
pub fn train_learner_episode_in(
    learner: &mut dyn TdControl,
    encoder: &StateEncoder,
    reward: RewardConfig,
    terminal: StepId,
    steps: &[StepId],
    policy: &EpsilonGreedy,
    ep: u64,
    rng: &mut SimRng,
    seq: &mut Vec<StepId>,
) {
    seq.clear();
    seq.extend(
        steps
            .iter()
            .copied()
            .filter(|s| !s.is_idle() && encoder.state_of(*s, *s).is_some()),
    );
    if seq.len() < 2 {
        return;
    }
    learner.begin_episode();
    let mut prev = StepId::IDLE;
    for i in 0..seq.len() - 1 {
        let cur = seq[i];
        let next = seq[i + 1];
        let s = encoder.state_of(prev, cur).expect("known step");
        let a = policy.select(learner.q(), s, ep, rng);
        let prompt = encoder.decode_action(a);
        let is_terminal = next == terminal;
        let r = reward.reward(prompt, next, is_terminal);
        if is_terminal {
            learner.observe(s, a, r, Outcome::Terminal);
        } else {
            let s2 = encoder.state_of(cur, next).expect("known step");
            let a2 = if i + 2 == seq.len() {
                learner.q().greedy_action(s2)
            } else {
                policy.select(learner.q(), s2, ep, rng)
            };
            learner.observe(s, a, r, Outcome::Continue { next_state: s2, next_action: a2 });
        }
        prev = cur;
    }
}

fn routine_accuracy_of(
    learner: &dyn TdControl,
    encoder: &StateEncoder,
    routine: &Routine,
) -> f64 {
    let transitions = routine.transitions();
    let hits = transitions
        .iter()
        .filter(|&&(p, c, n)| {
            encoder
                .state_of(p, c)
                .map(|s| encoder.decode_action(learner.q().greedy_action(s)).tool)
                .map(StepId::from_tool)
                == Some(n)
        })
        .count();
    hits as f64 / transitions.len() as f64
}

fn minimal_fraction_of(planner: &PlanningSubsystem, routine: &Routine) -> f64 {
    let terminal = routine.last();
    let intermediate: Vec<_> =
        routine.transitions().into_iter().filter(|&(_, _, n)| n != terminal).collect();
    if intermediate.is_empty() {
        return 1.0;
    }
    let hits = intermediate
        .iter()
        .filter(|&&(p, c, _)| {
            planner.predict(p, c).is_some_and(|pr| pr.level == ReminderLevel::Minimal)
        })
        .count();
    hits as f64 / intermediate.len() as f64
}

/// λ sweep on Tea-making with the paper's protocol.
#[must_use]
pub fn lambda_sweep(lambdas: &[f64], episodes: usize, seeds: usize, base_seed: u64) -> Vec<AblationPoint> {
    lambda_sweep_with(FleetEngine::default(), lambdas, episodes, seeds, base_seed)
}

/// [`lambda_sweep`] on an explicit [`FleetEngine`] (results are identical
/// at any worker count).
#[must_use]
pub fn lambda_sweep_with(
    engine: FleetEngine,
    lambdas: &[f64],
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> Vec<AblationPoint> {
    let tea = catalog::tea_making();
    lambdas
        .iter()
        .map(|&lambda| {
            let cfg = PlanningConfig { lambda, ..PlanningConfig::default() };
            run_planner_config(engine, &tea, cfg, &format!("lambda = {lambda}"), episodes, seeds, base_seed)
        })
        .collect()
}

/// Reward-shape ablation: the paper's values, a flat variant with no
/// level asymmetry, and a broken variant where mismatching prompts score
/// as well as matching ones.
#[must_use]
pub fn reward_shapes(episodes: usize, seeds: usize, base_seed: u64) -> Vec<AblationPoint> {
    reward_shapes_with(FleetEngine::default(), episodes, seeds, base_seed)
}

/// [`reward_shapes`] on an explicit [`FleetEngine`].
#[must_use]
pub fn reward_shapes_with(
    engine: FleetEngine,
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> Vec<AblationPoint> {
    let tea = catalog::tea_making();
    let shapes = [
        ("paper (1000/100/50, 0 mismatch)", RewardConfig::default()),
        (
            "flat levels (1000/100/100, 0 mismatch)",
            RewardConfig { specific: 100.0, ..RewardConfig::default() },
        ),
        (
            "no mismatch penalty (all 100)",
            RewardConfig { terminal: 100.0, specific: 100.0, mismatch: 100.0, ..RewardConfig::default() },
        ),
    ];
    shapes
        .iter()
        .map(|(label, reward)| {
            let cfg = PlanningConfig { reward: *reward, ..PlanningConfig::default() };
            run_planner_config(engine, &tea, cfg, label, episodes, seeds, base_seed)
        })
        .collect()
}

fn run_planner_config(
    engine: FleetEngine,
    spec: &AdlSpec,
    cfg: PlanningConfig,
    label: &str,
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> AblationPoint {
    let routine = Routine::canonical(spec);
    // Extraction statistics are shared read-only by every seed's job, so
    // they are measured once up front rather than inside the fan-out.
    let mut meta = SimRng::seed_from(base_seed);
    let extraction = measure_extraction(spec, 200, &mut meta);
    // One fleet job per seed; each derives its own RNG stream from the
    // seed index, so results do not depend on the worker count.
    let per_seed = engine.map((0..seeds).collect(), |s| {
        let mut rng = SimRng::seed_from(base_seed ^ (0xABCD_EF01 * (s as u64 + 1)));
        let mut planner = PlanningSubsystem::new(spec, cfg);
        let mut curve = Vec::with_capacity(episodes);
        let mut obs = Vec::with_capacity(routine.steps().len());
        for _ in 0..episodes {
            corrupt_sequence_into(routine.steps(), spec, &extraction, &mut rng, &mut obs);
            planner.train_episode(&obs, &mut rng);
            curve.push(planner.accuracy_vs_routine(&routine));
        }
        let final_accuracy = planner.accuracy_vs_routine(&routine);
        let minimal_fraction = minimal_fraction_of(&planner, &routine);
        (curve, final_accuracy, minimal_fraction)
    });
    let mut curves = Vec::with_capacity(seeds);
    let mut final_accuracy = 0.0;
    let mut minimal_fraction = 0.0;
    for (curve, fa, mf) in per_seed {
        final_accuracy += fa;
        minimal_fraction += mf;
        curves.push(curve);
    }
    let mean = coreda_core::metrics::mean_curve(&curves);
    AblationPoint {
        label: label.to_owned(),
        converge_95: sustained_crossing(&mean, 0.95, 3),
        final_accuracy: final_accuracy / seeds as f64,
        minimal_fraction: minimal_fraction / seeds as f64,
    }
}

/// The "fast learning" study: Dyna-Q with increasing planning budgets vs
/// one-step Q-learning and the paper's Watkins Q(λ), all on Tea-making
/// clean recordings, measured in episodes to perfect routine accuracy.
#[must_use]
pub fn fast_learning(episodes: usize, seeds: usize, base_seed: u64) -> Vec<AblationPoint> {
    fast_learning_with(FleetEngine::default(), episodes, seeds, base_seed)
}

/// [`fast_learning`] on an explicit [`FleetEngine`].
#[must_use]
pub fn fast_learning_with(
    engine: FleetEngine,
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> Vec<AblationPoint> {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let encoder = StateEncoder::new(&tea);
    let reward = RewardConfig::default();
    let td = TdConfig::new(Schedule::exponential(0.4, 0.997, 0.15), 0.05);
    let policy = EpsilonGreedy::constant(0.35);

    type SeededFactory = Box<dyn Fn(u64) -> Box<dyn TdControl> + Sync>;
    let make: Vec<(String, SeededFactory)> = vec![
        (
            "Q-learning (one-step)".into(),
            Box::new(move |_| Box::new(QLearning::new(encoder_shape(), td))),
        ),
        (
            "Watkins Q(0.8) [paper]".into(),
            Box::new(move |_| {
                Box::new(WatkinsQLambda::new(encoder_shape(), td, 0.8, TraceKind::Replacing))
            }),
        ),
        (
            "Dyna-Q, 5 planning steps".into(),
            Box::new(move |seed| Box::new(DynaQ::new(encoder_shape(), td, 5, seed))),
        ),
        (
            "Dyna-Q, 30 planning steps".into(),
            Box::new(move |seed| Box::new(DynaQ::new(encoder_shape(), td, 30, seed))),
        ),
    ];

    let mut points: Vec<AblationPoint> = make
        .into_iter()
        .map(|(label, factory)| {
            let per_seed = engine.map((0..seeds).collect(), |s| {
                let seed = base_seed ^ (0x1357_9BDF * (s as u64 + 1));
                let mut rng = SimRng::seed_from(seed);
                let mut learner = factory(seed);
                let mut curve = Vec::with_capacity(episodes);
                let mut seq = Vec::with_capacity(routine.steps().len());
                for ep in 0..episodes {
                    train_learner_episode_in(
                        learner.as_mut(),
                        &encoder,
                        reward,
                        routine.last(),
                        routine.steps(),
                        &policy,
                        ep as u64,
                        &mut rng,
                        &mut seq,
                    );
                    curve.push(routine_accuracy_of(learner.as_ref(), &encoder, &routine));
                }
                let final_acc = routine_accuracy_of(learner.as_ref(), &encoder, &routine);
                (curve, final_acc)
            });
            let mut curves = Vec::with_capacity(seeds);
            let mut final_acc = 0.0;
            for (curve, fa) in per_seed {
                final_acc += fa;
                curves.push(curve);
            }
            let mean = coreda_core::metrics::mean_curve(&curves);
            AblationPoint {
                label,
                converge_95: sustained_crossing(&mean, 0.95, 3),
                final_accuracy: final_acc / seeds as f64,
                minimal_fraction: f64::NAN,
            }
        })
        .collect();

    // Certainty equivalence: deterministic given the episodes (no
    // exploration), so one run suffices.
    let mut ce = CertaintyEquivalence::new(&tea, reward, 0.05);
    let mut ce_curve = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        ce.observe_episode(routine.steps());
        ce_curve.push(routine_accuracy(&ce, &routine));
    }
    points.push(AblationPoint {
        label: "Certainty equivalence (counts + VI)".into(),
        converge_95: sustained_crossing(&ce_curve, 0.95, 3),
        final_accuracy: *ce_curve.last().expect("episodes > 0"),
        minimal_fraction: f64::NAN,
    });
    points
}

fn encoder_shape() -> coreda_rl::space::ProblemShape {
    StateEncoder::new(&catalog::tea_making()).shape()
}

/// Algorithm-family comparison on the same protocol as
/// [`fast_learning`], with SARSA variants included.
#[must_use]
pub fn algorithm_family(episodes: usize, seeds: usize, base_seed: u64) -> Vec<AblationPoint> {
    algorithm_family_with(FleetEngine::default(), episodes, seeds, base_seed)
}

/// [`algorithm_family`] on an explicit [`FleetEngine`].
#[must_use]
pub fn algorithm_family_with(
    engine: FleetEngine,
    episodes: usize,
    seeds: usize,
    base_seed: u64,
) -> Vec<AblationPoint> {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let encoder = StateEncoder::new(&tea);
    let reward = RewardConfig::default();
    let td = TdConfig::new(Schedule::exponential(0.4, 0.997, 0.15), 0.05);
    let policy = EpsilonGreedy::constant(0.35);

    type Factory = Box<dyn Fn() -> Box<dyn TdControl> + Sync>;
    let algos: Vec<(String, Factory)> = vec![
        ("Q-learning".into(), Box::new(move || Box::new(QLearning::new(encoder_shape(), td)))),
        ("SARSA".into(), Box::new(move || Box::new(Sarsa::new(encoder_shape(), td)))),
        (
            "Expected SARSA".into(),
            Box::new(move || Box::new(ExpectedSarsa::new(encoder_shape(), td, 0.35))),
        ),
        (
            "Double Q-learning".into(),
            Box::new(move || Box::new(DoubleQLearning::new(encoder_shape(), td, 99))),
        ),
        (
            "Watkins Q(0.8) [paper]".into(),
            Box::new(move || {
                Box::new(WatkinsQLambda::new(encoder_shape(), td, 0.8, TraceKind::Replacing))
            }),
        ),
    ];

    algos
        .into_iter()
        .map(|(label, factory)| {
            let per_seed = engine.map((0..seeds).collect(), |s| {
                let mut rng = SimRng::seed_from(base_seed ^ (0x2468_ACE0 * (s as u64 + 1)));
                let mut learner = factory();
                let mut curve = Vec::with_capacity(episodes);
                let mut seq = Vec::with_capacity(routine.steps().len());
                for ep in 0..episodes {
                    train_learner_episode_in(
                        learner.as_mut(),
                        &encoder,
                        reward,
                        routine.last(),
                        routine.steps(),
                        &policy,
                        ep as u64,
                        &mut rng,
                        &mut seq,
                    );
                    curve.push(routine_accuracy_of(learner.as_ref(), &encoder, &routine));
                }
                let final_acc = routine_accuracy_of(learner.as_ref(), &encoder, &routine);
                (curve, final_acc)
            });
            let mut curves = Vec::with_capacity(seeds);
            let mut final_acc = 0.0;
            for (curve, fa) in per_seed {
                final_acc += fa;
                curves.push(curve);
            }
            let mean = coreda_core::metrics::mean_curve(&curves);
            AblationPoint {
                label,
                converge_95: sustained_crossing(&mean, 0.95, 3),
                final_accuracy: final_acc / seeds as f64,
                minimal_fraction: f64::NAN,
            }
        })
        .collect()
}

/// Renders ablation points as a table.
#[must_use]
pub fn render(title: &str, points: &[AblationPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Ablation: {title} ==");
    let _ = writeln!(
        out,
        "  {:<42} {:>12} {:>10} {:>9}",
        "configuration", "conv@95%", "final acc", "min-level"
    );
    for p in points {
        let conv = p.converge_95.map_or("n/a".to_owned(), |v| v.to_string());
        let minf = if p.minimal_fraction.is_nan() {
            "-".to_owned()
        } else {
            format!("{:.0}%", p.minimal_fraction * 100.0)
        };
        let _ = writeln!(
            out,
            "  {:<42} {:>12} {:>9.1}% {:>9}",
            p.label,
            conv,
            p.final_accuracy * 100.0,
            minf
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_shape_ablation_shows_structure_matters() {
        // The 100-vs-50 level gap is a quarter of the match-vs-mismatch
        // gap, so the level preference emerges noticeably later than the
        // routine itself — hence the longer horizon here.
        let points = reward_shapes(250, 8, 2007);
        assert_eq!(points.len(), 3);
        let paper = &points[0];
        let flat = &points[1];
        let broken = &points[2];
        // The paper's shape learns the routine and prefers minimal prompts.
        assert!(paper.final_accuracy > 0.9, "paper shape: {paper:?}");
        assert!(paper.minimal_fraction > 0.8, "paper shape should prefer minimal: {paper:?}");
        // Flat levels still learn the routine but have no level preference
        // (ties break toward minimal, so the fraction stays high-ish; the
        // distinguishing signal is gone though — accept anything).
        assert!(flat.final_accuracy > 0.9, "flat shape: {flat:?}");
        // Removing the mismatch penalty destroys routine learning: every
        // prompt looks equally good.
        assert!(
            broken.final_accuracy < 0.7,
            "no-penalty shape should not learn the routine: {broken:?}"
        );
    }

    #[test]
    fn dyna_q_accelerates_learning() {
        let points = fast_learning(60, 8, 2007);
        let one_step = points[0].converge_95.unwrap_or(usize::MAX);
        let dyna30 = points[3].converge_95.unwrap_or(usize::MAX);
        assert!(
            dyna30 < one_step,
            "Dyna-Q(30) should converge in fewer episodes: {points:#?}"
        );
        for p in &points {
            assert!(p.final_accuracy > 0.9, "all learners eventually solve it: {p:?}");
        }
        // Certainty equivalence needs the fewest episodes of all.
        let ce = points.last().unwrap();
        let ce_conv = ce.converge_95.unwrap_or(usize::MAX);
        assert!(
            ce_conv <= points.iter().filter_map(|p| p.converge_95).min().unwrap_or(usize::MAX),
            "CE should be the most sample-efficient: {points:#?}"
        );
        assert!(ce_conv <= 5, "clean episodes determine the routine immediately: {ce:?}");
    }

    #[test]
    fn lambda_sweep_runs_and_converges() {
        let points = lambda_sweep(&[0.0, 0.8], 80, 6, 2007);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.final_accuracy > 0.85, "{p:?}");
        }
    }

    #[test]
    fn algorithm_family_all_solve_the_task() {
        let points = algorithm_family(100, 6, 2007);
        assert_eq!(points.len(), 5);
        for p in &points {
            assert!(p.final_accuracy > 0.85, "{p:?}");
        }
    }
}
