//! Shared experiment plumbing: trial protocols and table rendering.

use coreda_adl::activity::AdlSpec;
use coreda_adl::step::StepId;
use coreda_core::fleet::FleetEngine;
use coreda_des::rng::SimRng;
use coreda_sensornet::detect::Thresholds;
use coreda_sensornet::network::{LinkConfig, StarNetwork};
use coreda_sensornet::node::PavenetNode;

/// Number of 100 ms samples per second (the PAVENET rate).
pub const TICKS_PER_SEC: u64 = 10;

/// Pulls a `--jobs N` option out of a raw argument list (so the caller's
/// positional parsing still works) and returns the matching engine.
/// `--jobs` with a missing or unparsable value falls back to the default
/// worker count; no `--jobs` at all does the same.
#[must_use]
pub fn engine_from_args(args: &mut Vec<String>) -> FleetEngine {
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let engine = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map_or_else(FleetEngine::default, FleetEngine::new);
        args.drain(i..(i + 2).min(args.len()));
        engine
    } else {
        FleetEngine::default()
    }
}

/// Simulates one performance of `step_idx` of `spec` and reports whether
/// the sensing pipeline extracted it: the tool's node must deliver at
/// least one `ToolUse` report to the base station while the step runs.
///
/// This is the paper's Table 3 trial: "when we pick up tea-box and take
/// tea-leaf from it, whether it can be extracted as the ADL step".
pub fn extract_trial(
    spec: &AdlSpec,
    step_idx: usize,
    link: LinkConfig,
    rng: &mut SimRng,
) -> bool {
    let mut net = StarNetwork::new(link);
    extract_trial_in(spec, step_idx, &mut net, rng)
}

/// Like [`extract_trial`], but reuses a caller-owned network so the link
/// table is not reallocated per trial. Each trial re-registers the node,
/// which resets its link — behaviour is identical to a fresh network.
pub fn extract_trial_in(
    spec: &AdlSpec,
    step_idx: usize,
    net: &mut StarNetwork,
    rng: &mut SimRng,
) -> bool {
    let step = &spec.steps()[step_idx];
    let tool = spec.tool(step.tool()).expect("spec is validated");
    let mut node = PavenetNode::new(tool.id().into(), tool.signal(), Thresholds::default());
    net.register(node.uid());

    // Duration drawn from the step's statistics, like a real performance.
    let secs = rng.normal(step.mean_duration_s(), step.sd_duration_s()).max(1.0);
    let ticks = (secs * TICKS_PER_SEC as f64).round() as u64;
    let mut delivered = false;
    for t in 0..ticks {
        if let Some(packet) = node.sample_tick(true, t * 100, rng) {
            if net.send_uplink(&packet, rng).is_delivered() {
                delivered = true;
            }
        }
    }
    delivered
}

/// Per-step extraction success probabilities measured by Monte-Carlo
/// (used to corrupt training data realistically).
pub fn measure_extraction(spec: &AdlSpec, trials: usize, rng: &mut SimRng) -> Vec<f64> {
    let mut net = StarNetwork::new(LinkConfig::default());
    (0..spec.steps().len())
        .map(|i| {
            let hits = (0..trials)
                .filter(|_| extract_trial_in(spec, i, &mut net, rng))
                .count();
            hits as f64 / trials as f64
        })
        .collect()
}

/// Applies extraction noise to a clean StepID sequence: each step is
/// dropped with its per-step miss probability (`1 − extraction`), the way
/// a missed detection removes it from the sensed sequence.
pub fn corrupt_sequence(
    steps: &[StepId],
    spec: &AdlSpec,
    extraction: &[f64],
    rng: &mut SimRng,
) -> Vec<StepId> {
    let mut out = Vec::with_capacity(steps.len());
    corrupt_sequence_into(steps, spec, extraction, rng, &mut out);
    out
}

/// [`corrupt_sequence`] into a caller-owned buffer, so a training loop
/// running hundreds of episodes reuses one allocation.
pub fn corrupt_sequence_into(
    steps: &[StepId],
    spec: &AdlSpec,
    extraction: &[f64],
    rng: &mut SimRng,
    out: &mut Vec<StepId>,
) {
    out.clear();
    out.extend(steps.iter().copied().filter(|s| {
        match spec.step_index(*s) {
            Some(i) => rng.chance(extraction[i].clamp(0.0, 1.0)),
            None => true, // idles / foreign steps pass through
        }
    }));
}

/// Renders a y-range-normalised ASCII line chart of `series` (values in
/// `[0, 1]`), `height` rows tall, one column per point (downsampled to
/// `max_width` columns if longer).
#[must_use]
pub fn ascii_chart(series: &[f64], height: usize, max_width: usize) -> String {
    use std::fmt::Write as _;
    if series.is_empty() || height == 0 {
        return String::new();
    }
    // Downsample by averaging buckets.
    let width = series.len().min(max_width.max(1));
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * series.len() / width;
            let hi = (((c + 1) * series.len()) / width).max(lo + 1);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let mut out = String::new();
    for row in (0..height).rev() {
        let lo = row as f64 / height as f64;
        let hi = (row + 1) as f64 / height as f64;
        let label = if row == height - 1 {
            "100% |"
        } else if row == 0 {
            "  0% |"
        } else {
            "     |"
        };
        out.push_str(label);
        for &v in &cols {
            let ch = if v >= hi {
                '█'
            } else if v > lo {
                '▄'
            } else {
                ' '
            };
            out.push(ch);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "     +{}", "-".repeat(width));
    out
}

/// Renders an aligned two-column table (label, value).
#[must_use]
pub fn render_table(title: &str, rows: &[(String, String)]) -> String {
    use std::fmt::Write as _;
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max(10);
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    for (label, value) in rows {
        let _ = writeln!(out, "  {label:<width$}  {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_adl::activity::catalog;

    #[test]
    fn extract_trial_usually_succeeds_on_long_steps() {
        let tea = catalog::tea_making();
        let mut rng = SimRng::seed_from(1);
        // Step 0 (tea-box, 6 s, duty 0.6) should essentially always extract.
        let hits =
            (0..50).filter(|_| extract_trial(&tea, 0, LinkConfig::default(), &mut rng)).count();
        assert!(hits >= 48, "tea-box extraction too weak: {hits}/50");
    }

    #[test]
    fn corrupt_sequence_drops_by_probability() {
        let tea = catalog::tea_making();
        let ids = tea.step_ids();
        let mut rng = SimRng::seed_from(2);
        // Kill step 1 always, keep the rest.
        let ext = vec![1.0, 0.0, 1.0, 1.0];
        let corrupted = corrupt_sequence(&ids, &tea, &ext, &mut rng);
        assert_eq!(corrupted, vec![ids[0], ids[2], ids[3]]);
    }

    #[test]
    fn ascii_chart_shape() {
        let series: Vec<f64> = (0..100).map(|i| f64::from(i) / 100.0).collect();
        let chart = ascii_chart(&series, 5, 60);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 6, "5 rows + axis");
        assert!(lines[0].starts_with("100% |"));
        assert!(lines[4].starts_with("  0% |"));
        // Rising series: the top row fills only at the right edge.
        let top = lines[0];
        let bottom = lines[4];
        assert!(top.trim_end().ends_with('█') || top.trim_end().ends_with('▄'));
        assert!(bottom.chars().filter(|&c| c == '█').count()
            > top.chars().filter(|&c| c == '█').count());
    }

    #[test]
    fn ascii_chart_handles_degenerate_input() {
        assert!(ascii_chart(&[], 5, 10).is_empty());
        assert!(ascii_chart(&[0.5], 0, 10).is_empty());
        let one = ascii_chart(&[1.0], 3, 10);
        assert!(one.contains('█'));
    }

    #[test]
    fn render_table_aligns() {
        let s = render_table("T", &[("a".into(), "1".into()), ("long label".into(), "2".into())]);
        assert!(s.contains("== T =="));
        assert!(s.contains("long label"));
    }

    #[test]
    fn engine_from_args_extracts_jobs() {
        let mut args: Vec<String> =
            ["40", "--jobs", "3", "2007"].iter().map(|s| (*s).to_owned()).collect();
        let engine = engine_from_args(&mut args);
        assert_eq!(engine.jobs(), 3);
        assert_eq!(args, vec!["40".to_owned(), "2007".to_owned()]);

        let mut bare: Vec<String> = vec!["40".to_owned()];
        let _ = engine_from_args(&mut bare);
        assert_eq!(bare, vec!["40".to_owned()]);

        // A trailing `--jobs` with no value falls back to the default.
        let mut dangling: Vec<String> = vec!["--jobs".to_owned()];
        assert!(engine_from_args(&mut dangling).jobs() >= 1);
        assert!(dangling.is_empty());
    }
}
