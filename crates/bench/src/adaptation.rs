//! Routine-change adaptation (paper §3.2, last paragraph).
//!
//! "Actually, we can set the parameters (converging condition, learning
//! rate, etc.) to make the learning update all the while instead of
//! converging. By doing this, CoReDA can always learn the newest routines
//! of a user…"
//!
//! This study makes that trade-off concrete: a user follows routine A,
//! then permanently switches to routine B. A planner whose learning rate
//! and exploration keep a floor ("always learning") re-converges on B;
//! one whose schedules decay to (near) zero ("converged & frozen") stays
//! stuck on A.

use coreda_adl::activity::catalog;
use coreda_adl::routine::Routine;
use coreda_core::metrics::mean_curve;
use coreda_core::planning::{PlanningConfig, PlanningSubsystem};
use coreda_des::rng::SimRng;
use coreda_rl::schedule::Schedule;

use crate::fig4::sustained_crossing;

/// Result of one adaptation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationPoint {
    /// Configuration label.
    pub label: String,
    /// Accuracy on routine A just before the switch.
    pub pre_switch_accuracy: f64,
    /// Accuracy on routine B at the end.
    pub post_switch_accuracy: f64,
    /// Episodes after the switch until accuracy on B sustains ≥ 95 %.
    pub episodes_to_readapt: Option<usize>,
}

/// The "always learning" configuration: floors on α and ε.
#[must_use]
pub fn always_learning() -> PlanningConfig {
    PlanningConfig::default()
}

/// The "converged & frozen" configuration: α and ε decay to near zero,
/// locking the policy in (the paper's default framing — "obviously it is
/// not proper" to keep adapting for patients whose abilities decline).
#[must_use]
pub fn converged_frozen() -> PlanningConfig {
    PlanningConfig {
        // α steps per transition (~3/episode), ε per episode: both are
        // effectively zero by the time the routine switches.
        alpha: Schedule::exponential(0.4, 0.99, 0.0005),
        epsilon: Schedule::exponential(0.35, 0.985, 0.0005),
        ..PlanningConfig::default()
    }
}

/// Runs the study: `phase` episodes of routine A, then `phase` of
/// routine B, averaged over `seeds` runs.
#[must_use]
pub fn run(phase: usize, seeds: usize, base_seed: u64) -> Vec<AdaptationPoint> {
    let tea = catalog::tea_making();
    let ids = tea.step_ids();
    let a = Routine::canonical(&tea);
    let b = Routine::new(&tea, vec![ids[1], ids[0], ids[2], ids[3]]);

    [("always learning (floored α, ε)", always_learning()),
     ("converged & frozen (decayed α, ε)", converged_frozen())]
        .into_iter()
        .map(|(label, cfg)| {
            let mut pre = 0.0;
            let mut post = 0.0;
            let mut post_curves = Vec::new();
            for s in 0..seeds {
                let mut rng = SimRng::seed_from(base_seed ^ (0x5A5A_5A5A * (s as u64 + 1)));
                let mut planner = PlanningSubsystem::new(&tea, cfg);
                for _ in 0..phase {
                    planner.train_episode(a.steps(), &mut rng);
                }
                pre += planner.accuracy_vs_routine(&a);
                let mut curve = Vec::with_capacity(phase);
                for _ in 0..phase {
                    planner.train_episode(b.steps(), &mut rng);
                    curve.push(planner.accuracy_vs_routine(&b));
                }
                post += planner.accuracy_vs_routine(&b);
                post_curves.push(curve);
            }
            let mean = mean_curve(&post_curves);
            AdaptationPoint {
                label: label.to_owned(),
                pre_switch_accuracy: pre / seeds as f64,
                post_switch_accuracy: post / seeds as f64,
                episodes_to_readapt: sustained_crossing(&mean, 0.95, 3),
            }
        })
        .collect()
}

/// Renders the study.
#[must_use]
pub fn render(points: &[AdaptationPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Adaptation: the user switches routines mid-life ==");
    let _ = writeln!(
        out,
        "  {:<36} {:>10} {:>10} {:>10}",
        "configuration", "pre-switch", "post", "re-adapt@"
    );
    for p in points {
        let re = p.episodes_to_readapt.map_or("never".to_owned(), |v| v.to_string());
        let _ = writeln!(
            out,
            "  {:<36} {:>9.0}% {:>9.0}% {:>10}",
            p.label,
            p.pre_switch_accuracy * 100.0,
            p.post_switch_accuracy * 100.0,
            re
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floored_schedules_readapt_frozen_ones_do_not() {
        let points = run(150, 8, 2007);
        let live = &points[0];
        let frozen = &points[1];
        // Both learn routine A initially.
        assert!(live.pre_switch_accuracy > 0.95, "{live:?}");
        assert!(frozen.pre_switch_accuracy > 0.95, "{frozen:?}");
        // Only the floored configuration recovers after the switch.
        assert!(live.post_switch_accuracy > 0.95, "{live:?}");
        assert!(
            frozen.post_switch_accuracy < live.post_switch_accuracy,
            "frozen schedules must adapt worse: {points:#?}"
        );
        assert!(live.episodes_to_readapt.is_some(), "{live:?}");
    }
}
