//! Bench-regression gate: re-measures the 10k-home serving cell and
//! fails (exit 1) when fresh throughput drops more than 10 % below the
//! `events_per_sec` committed in `BENCH_scale.json` — the `make ci` hook
//! that keeps the scale numbers honest without re-running the full
//! criterion suite.
//!
//! Usage: `bench_check [--tolerance-pct N] [--measure-only]`
//!
//! `--measure-only` prints the fresh measurement and exits 0 — the
//! iteration loop while optimising. A debug build refuses to judge
//! anything: unoptimised timings would fail every time, meaninglessly.

use std::time::Instant;

use coreda_core::metro::{run_scale, EngineKind, MetroConfig};
use coreda_des::time::SimDuration;

const HOMES: usize = 10_000;
const SIM_SECS: u64 = 360;
const JOBS: usize = 1;

fn cfg() -> MetroConfig {
    MetroConfig {
        homes: HOMES,
        horizon: SimDuration::from_secs(SIM_SECS),
        seed: 2007,
        jobs: JOBS,
        engine: EngineKind::Wheel,
        ..MetroConfig::default()
    }
}

/// Best of two timed runs after one warm-up — the same protocol
/// `scale_micro`'s `measure()` uses, so the comparison is apples to
/// apples with the committed file.
fn measure() -> (f64, u64) {
    let config = cfg();
    let ticks = run_scale(&config).pipeline_ticks();
    let secs = (0..2)
        .map(|_| {
            let t = Instant::now();
            let _ = run_scale(&config);
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    (secs, ticks)
}

/// Pulls `events_per_sec` out of the committed grid row for
/// (`HOMES`, `JOBS`) with a hand-rolled scan — the committed file is
/// written by our own bench, so its shape is stable and a JSON crate
/// would be a dependency for one line.
fn committed_events_per_sec(json: &str) -> Option<f64> {
    let row_key = format!("\"homes\": {HOMES}, \"sim_secs\": {SIM_SECS}, \"jobs\": {JOBS},");
    let row_at = json.find(&row_key)?;
    let tail = &json[row_at..];
    let field = "\"events_per_sec\": ";
    let val_at = tail.find(field)? + field.len();
    let val = &tail[val_at..];
    let end = val.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    val[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let measure_only = args.iter().any(|a| a == "--measure-only");
    let tolerance_pct: f64 = args
        .iter()
        .position(|a| a == "--tolerance-pct")
        .and_then(|i| args.get(i + 1))
        .map_or(10.0, |v| v.parse().expect("--tolerance-pct takes a number"));

    if cfg!(debug_assertions) {
        println!("bench_check: debug build — skipping (run under --release)");
        return;
    }

    let (secs, ticks) = measure();
    #[allow(clippy::cast_precision_loss)]
    let fresh = ticks as f64 / secs;
    println!("bench_check: {HOMES} homes x {SIM_SECS} s, jobs={JOBS}: {fresh:.0} events/s ({secs:.3} s)");
    if measure_only {
        return;
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let Some(committed) = committed_events_per_sec(&json) else {
        eprintln!("bench_check: no grid row for homes={HOMES} jobs={JOBS} in {path}");
        std::process::exit(1);
    };
    let floor = committed * (1.0 - tolerance_pct / 100.0);
    println!(
        "bench_check: committed {committed:.0} events/s, floor {floor:.0} (-{tolerance_pct}%)"
    );
    if fresh < floor {
        eprintln!(
            "bench_check: REGRESSION — fresh {fresh:.0} events/s is more than \
             {tolerance_pct}% below the committed {committed:.0}"
        );
        std::process::exit(1);
    }
    println!("bench_check: ok");
}
