//! Bench-regression gate: re-measures the 10k-home and 100k-home
//! serving cells and fails (exit 1) when fresh throughput drops more
//! than 10 % below the `events_per_sec` committed in `BENCH_scale.json`
//! — the `make ci` hook that keeps the scale numbers honest without
//! re-running the full criterion suite. The 100k cell is the epoch-
//! tiling guarantee: that row only holds its committed rate while wakes
//! serve in arena order, so a regression here means the locality
//! scheduling broke even if every equivalence test still passes.
//! Further gates ride along:
//!
//! - the committed `telemetry_overhead.overhead_pct` must stay under
//!   12 % — the recorder's true cost is ~0-3 % and the contract says
//!   < 5 %, but the committed number is wall clock on a drifting host,
//!   so the gate leaves room for measurement noise while still catching
//!   a real hot-path regression;
//! - the committed `care_overhead.overhead_pct` must stay under 5 % —
//!   the caregiver escalation overlay is a pure fold over the event
//!   stream plus an in-order analytics merge, and its paired-ratio
//!   protocol cancels host clock drift, so the contract bar applies
//!   directly;
//! - a fresh, fully deterministic durability probe: the steady-state
//!   delta checkpoint at 1k homes must encode to <= 15 % of the full
//!   snapshot's bytes. Byte counts don't drift with host load, so this
//!   gate has no tolerance knob.
//!
//! Usage: `bench_check [--tolerance-pct N] [--measure-only]`
//!
//! `--measure-only` prints the fresh measurement and exits 0 — the
//! iteration loop while optimising. A debug build skips the timing
//! gates (unoptimised timings would fail every time, meaninglessly)
//! but still runs the byte-size gate: codec bloat is visible at any
//! optimisation level.

use std::time::Instant;

use coreda_core::checkpoint::{save_checkpoint, save_delta};
use coreda_core::metro::{run_scale, run_scale_durable, EngineKind, MetroConfig};
use coreda_des::time::{SimDuration, SimTime};

const JOBS: usize = 1;

/// The gated grid cells: (homes, sim_secs). The 10k cell is the
/// original throughput gate; the 100k cell sits past the cache cliff
/// and holds the epoch-tiling speedup in place.
const GATED_CELLS: [(usize, u64); 2] = [(10_000, 360), (100_000, 120)];

fn cfg(homes: usize, sim_secs: u64) -> MetroConfig {
    MetroConfig {
        homes,
        horizon: SimDuration::from_secs(sim_secs),
        seed: 2007,
        jobs: JOBS,
        engine: EngineKind::Wheel,
        ..MetroConfig::default()
    }
}

/// Best of two timed runs after one warm-up — the same protocol
/// `scale_micro`'s `measure()` uses, so the comparison is apples to
/// apples with the committed file.
fn measure(homes: usize, sim_secs: u64) -> (f64, u64) {
    let config = cfg(homes, sim_secs);
    let ticks = run_scale(&config).pipeline_ticks();
    let secs = (0..2)
        .map(|_| {
            let t = Instant::now();
            let _ = run_scale(&config);
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    (secs, ticks)
}

/// Pulls `events_per_sec` out of the committed grid row for
/// (`homes`, `sim_secs`, `JOBS`) with a hand-rolled scan — the
/// committed file is written by our own bench, so its shape is stable
/// and a JSON crate would be a dependency for one line.
fn committed_events_per_sec(json: &str, homes: usize, sim_secs: u64) -> Option<f64> {
    let row_key = format!("\"homes\": {homes}, \"sim_secs\": {sim_secs}, \"jobs\": {JOBS},");
    scan_field(&json[json.find(&row_key)?..], "events_per_sec")
}

/// Scans `\"name\": <number>` out of `json`, tolerating a leading minus.
fn scan_field(json: &str, name: &str) -> Option<f64> {
    let field = format!("\"{name}\": ");
    let val_at = json.find(&field)? + field.len();
    let val = &json[val_at..];
    let end = val.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())?;
    val[..end].parse().ok()
}

/// The deterministic durability gate: at 1k homes with a 600 s cadence,
/// the steady-state delta must encode to <= 15 % of the full snapshot.
/// Pure byte counts — no timing, no host sensitivity, no tolerance.
fn durability_ratio_gate() -> Result<(), String> {
    let config = MetroConfig {
        homes: 1000,
        horizon: SimDuration::from_secs(1800),
        seed: 2007,
        jobs: 8,
        engine: EngineKind::Wheel,
        ..MetroConfig::default()
    };
    let stops: Vec<SimTime> =
        [600u64, 1200, 1800].iter().map(|&s| SimTime::from_secs(s)).collect();
    let (_, run) = run_scale_durable(&config, &stops);
    let full = save_checkpoint(&run.base, 8).len();
    let delta = save_delta(run.deltas.last().expect("two deltas"), 8).len();
    #[allow(clippy::cast_precision_loss)]
    let pct = 100.0 * delta as f64 / full as f64;
    println!(
        "bench_check: durability — 1k homes, 600 s cadence: full {full} B, \
         steady-state delta {delta} B ({pct:.2} % of full, bar 15 %)"
    );
    if pct > 15.0 {
        return Err(format!(
            "steady-state delta is {pct:.2} % of a full snapshot (bar: 15 %) — \
             the delta codec has lost its incrementality"
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let measure_only = args.iter().any(|a| a == "--measure-only");
    let tolerance_pct: f64 = args
        .iter()
        .position(|a| a == "--tolerance-pct")
        .and_then(|i| args.get(i + 1))
        .map_or(10.0, |v| v.parse().expect("--tolerance-pct takes a number"));

    if !measure_only {
        if let Err(msg) = durability_ratio_gate() {
            eprintln!("bench_check: REGRESSION — {msg}");
            std::process::exit(1);
        }
    }

    if cfg!(debug_assertions) {
        println!("bench_check: debug build — skipping timing gates (run under --release)");
        return;
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    let json = if measure_only {
        String::new()
    } else {
        match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("bench_check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    };
    for &(homes, sim_secs) in &GATED_CELLS {
        let (secs, ticks) = measure(homes, sim_secs);
        #[allow(clippy::cast_precision_loss)]
        let fresh = ticks as f64 / secs;
        println!(
            "bench_check: {homes} homes x {sim_secs} s, jobs={JOBS}: \
             {fresh:.0} events/s ({secs:.3} s)"
        );
        if measure_only {
            continue;
        }
        let Some(committed) = committed_events_per_sec(&json, homes, sim_secs) else {
            eprintln!("bench_check: no grid row for homes={homes} jobs={JOBS} in {path}");
            std::process::exit(1);
        };
        let floor = committed * (1.0 - tolerance_pct / 100.0);
        println!(
            "bench_check: committed {committed:.0} events/s, floor {floor:.0} (-{tolerance_pct}%)"
        );
        if fresh < floor {
            eprintln!(
                "bench_check: REGRESSION — {homes} homes fresh {fresh:.0} events/s is \
                 more than {tolerance_pct}% below the committed {committed:.0}"
            );
            std::process::exit(1);
        }
    }
    if measure_only {
        return;
    }

    // The committed recorder overhead: wall clock on a drifting host, so
    // the bar is 12 % rather than the recorder's < 5 % contract — wide
    // enough for measurement noise, tight enough that a real hot-path
    // regression (the recorder is ~0-3 % measured by CPU time) trips it.
    match scan_field(&json, "overhead_pct") {
        Some(overhead) => {
            println!("bench_check: committed telemetry overhead {overhead:.2} % (bar 12 %)");
            if overhead > 12.0 {
                eprintln!(
                    "bench_check: REGRESSION — committed telemetry overhead \
                     {overhead:.2} % exceeds the 12 % bar; re-run scale_micro on a \
                     quiet host or fix the recorder hot path"
                );
                std::process::exit(1);
            }
        }
        None => {
            eprintln!("bench_check: no telemetry_overhead.overhead_pct in {path}");
            std::process::exit(1);
        }
    }

    // The committed care-overlay overhead: the paired-ratio protocol
    // cancels clock drift, so the contract's 5 % bar applies as-is.
    let care = json
        .find("\"care_overhead\"")
        .and_then(|at| scan_field(&json[at..], "overhead_pct"));
    match care {
        Some(overhead) => {
            println!("bench_check: committed care overhead {overhead:.2} % (bar 5 %)");
            if overhead > 5.0 {
                eprintln!(
                    "bench_check: REGRESSION — committed care overhead {overhead:.2} % \
                     exceeds the 5 % bar; the escalation fold or the analytics merge \
                     has left the noise floor"
                );
                std::process::exit(1);
            }
        }
        None => {
            eprintln!("bench_check: no care_overhead.overhead_pct in {path}");
            std::process::exit(1);
        }
    }
    println!("bench_check: ok");
}
