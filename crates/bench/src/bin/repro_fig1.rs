//! Replays the paper's Figure 1 scenario — Mr. Tanaka making tea with two
//! lapses — over the full sensing/planning/reminding pipeline and prints
//! the resulting timeline.
//! Usage: `cargo run -p coreda-bench --bin repro_fig1 [seed]`

use coreda_core::scenario;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2007);
    let log = scenario::figure1(seed);
    println!("\n== Figure 1: a typical scenario of CoReDA (seed {seed}) ==\n");
    print!("{}", log.render());
    let reminders = log.reminders();
    println!("\nsummary: {} reminders, {} praises, completed: {}",
        reminders.len(),
        log.praise_count(),
        log.completed_at().map_or("no".to_owned(), |t| format!("yes at {t}")));
}
