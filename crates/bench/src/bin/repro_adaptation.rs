//! Adaptation study: what happens when the user's routine changes —
//! floored vs fully decayed learning schedules (paper §3.2 discussion).
//! Usage: `cargo run -p coreda-bench --bin repro_adaptation [phase] [seeds] [seed]`

use coreda_bench::adaptation;

fn main() {
    let mut args = std::env::args().skip(1);
    let phase: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(150);
    let seeds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let points = adaptation::run(phase, seeds, seed);
    print!("{}", adaptation::render(&points));
    println!("\n({phase} episodes per phase, {seeds} runs, seed {seed})");
}
