//! Scaling study: report delivery and step extraction as more tools key
//! up concurrently on the shared CC1000 channel.
//! Usage: `cargo run -p coreda-bench --bin repro_contention [trials] [seed]`

use coreda_bench::contention;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let points = contention::run(trials, seed);
    print!("{}", contention::render(&points));
}
