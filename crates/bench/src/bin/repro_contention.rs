//! Scaling study: report delivery and step extraction as more tools key
//! up concurrently on the shared CC1000 channel.
//! Usage: `cargo run -p coreda-bench --bin repro_contention [trials] [seed] [--jobs N]`

use coreda_bench::common::engine_from_args;
use coreda_bench::contention;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&mut raw);
    let mut args = raw.into_iter();
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let points = contention::run_on(engine, trials, seed);
    print!("{}", contention::render(&points));
}
