//! Reproduces Figure 4: the TD(λ) Q-learning learning curves for both
//! ADLs, with convergence read-outs at the 95 % and 98 % conditions.
//! Usage: `cargo run -p coreda-bench --bin repro_fig4 [episodes] [seeds] [seed] [--jobs N]`

use coreda_bench::common::engine_from_args;
use coreda_bench::fig4;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&mut raw);
    let mut args = raw.into_iter();
    let episodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let seeds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let curves = fig4::run_with(engine, episodes, seeds, seed);
    print!("{}", fig4::render(&curves));
    println!("\n({episodes} episodes, {seeds} independent runs, base seed {seed})");
}
