//! Failure-injection sweep: extraction precision and learning convergence
//! under increasingly lossy radio links.
//! Usage: `cargo run -p coreda-bench --bin repro_radio_loss [trials] [seed] [--jobs N]`

use coreda_bench::common::engine_from_args;
use coreda_bench::radio_loss;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&mut raw);
    let mut args = raw.into_iter();
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let points = radio_loss::run_on(engine, trials, 120, 10, seed);
    print!("{}", radio_loss::render(&points));
}
