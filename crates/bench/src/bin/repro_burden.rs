//! Longitudinal caregiver-burden study over a year of dementia
//! progression: lapses per episode, how many the system resolves, and
//! completion times with vs without assistance.
//! Usage: `cargo run -p coreda-bench --bin repro_burden [days] [stride] [episodes] [seed]`

use coreda_bench::burden;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(360);
    let stride: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let episodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let points = burden::run(days, stride, episodes, seed);
    print!("{}", burden::render(&points));
    println!("\n({episodes} episodes per sampled day, seed {seed})");
}
