//! Deployment study: per-tool energy consumption and battery-life
//! extrapolation for the PAVENET nodes.
//! Usage: `cargo run -p coreda-bench --bin repro_energy [episodes] [per_day] [seed]`

use coreda_bench::energy_study;

fn main() {
    let mut args = std::env::args().skip(1);
    let episodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let per_day: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3.0);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let rows = energy_study::run(episodes, per_day, seed);
    print!("{}", energy_study::render(&rows));
    println!("\n({episodes} simulated episodes, {per_day} episodes/day assumed, seed {seed})");
}
