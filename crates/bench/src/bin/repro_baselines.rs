//! Compares CoReDA against the pre-planned baseline and the oracle MDP
//! planner: prediction accuracy on personalised routines, plus live
//! completion-time outcomes.
//! Usage: `cargo run -p coreda-bench --bin repro_baselines [users] [episodes] [seed]`

use coreda_adl::activity::catalog;
use coreda_bench::baseline_cmp;

fn main() {
    let mut args = std::env::args().skip(1);
    let users: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let episodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);

    let acc = baseline_cmp::accuracy_study(&catalog::tea_making(), users, seed);
    print!("{}", baseline_cmp::render_accuracy(&acc));

    let live = baseline_cmp::live_study(episodes, seed);
    print!("{}", baseline_cmp::render_live(&live));
}
