//! Compares CoReDA against the pre-planned baseline and the oracle MDP
//! planner: prediction accuracy on personalised routines, plus live
//! completion-time outcomes.
//! Usage: `cargo run -p coreda-bench --bin repro_baselines [users] [episodes] [seed] [--jobs N]`

use coreda_adl::activity::catalog;
use coreda_bench::baseline_cmp;
use coreda_bench::common::engine_from_args;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&mut raw);
    let mut args = raw.into_iter();
    let users: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let episodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);

    let acc = baseline_cmp::accuracy_study_with(engine, &catalog::tea_making(), users, seed);
    print!("{}", baseline_cmp::render_accuracy(&acc));

    let live = baseline_cmp::live_study_with(engine, episodes, seed);
    print!("{}", baseline_cmp::render_live(&live));
}
