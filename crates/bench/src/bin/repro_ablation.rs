//! Runs the ablation suite: lambda sweep, reward shapes, fast-learning
//! (Dyna-Q), and the TD-algorithm family comparison.
//! Usage: `cargo run -p coreda-bench --bin repro_ablation [seeds] [seed]`

use coreda_bench::ablation;

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);

    let lam = ablation::lambda_sweep(&[0.0, 0.3, 0.6, 0.9], 120, seeds, seed);
    print!("{}", ablation::render("eligibility-trace lambda (Tea-making)", &lam));

    let rew = ablation::reward_shapes(250, seeds, seed);
    print!("{}", ablation::render("reward shape (Tea-making)", &rew));

    let fast = ablation::fast_learning(60, seeds, seed);
    print!("{}", ablation::render("fast learning / Dyna-Q (future work 4.2)", &fast));

    let fam = ablation::algorithm_family(120, seeds, seed);
    print!("{}", ablation::render("TD-control algorithm family", &fam));
}
