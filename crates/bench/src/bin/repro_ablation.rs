//! Runs the ablation suite: lambda sweep, reward shapes, fast-learning
//! (Dyna-Q), and the TD-algorithm family comparison.
//! Usage: `cargo run -p coreda-bench --bin repro_ablation [seeds] [seed] [--jobs N]`

use coreda_bench::ablation;
use coreda_bench::common::engine_from_args;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&mut raw);
    let mut args = raw.into_iter();
    let seeds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);

    let lam = ablation::lambda_sweep_with(engine, &[0.0, 0.3, 0.6, 0.9], 120, seeds, seed);
    print!("{}", ablation::render("eligibility-trace lambda (Tea-making)", &lam));

    let rew = ablation::reward_shapes_with(engine, 250, seeds, seed);
    print!("{}", ablation::render("reward shape (Tea-making)", &rew));

    let fast = ablation::fast_learning_with(engine, 60, seeds, seed);
    print!("{}", ablation::render("fast learning / Dyna-Q (future work 4.2)", &fast));

    let fam = ablation::algorithm_family_with(engine, 120, seeds, seed);
    print!("{}", ablation::render("TD-control algorithm family", &fam));
}
