//! Reproduces Table 4: predict precision per ADL step after training,
//! with the two reminder-trigger situations examined equally.
//! Usage: `cargo run -p coreda-bench --bin repro_table4 [samples] [seed] [--jobs N]`

use coreda_bench::common::engine_from_args;
use coreda_bench::table4;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&mut raw);
    let mut args = raw.into_iter();
    let samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let rows = table4::run_on(engine, samples, seed);
    print!("{}", table4::render(&rows));
    println!("\n({samples} test samples per ADL, seed {seed})");
}
