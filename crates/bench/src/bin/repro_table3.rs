//! Reproduces Table 3: extract precision of each ADL step over 40 trials
//! per tool (320 samples total, like the paper). Usage:
//! `cargo run -p coreda-bench --bin repro_table3 [trials] [seed] [--jobs N]`

use coreda_bench::common::engine_from_args;
use coreda_bench::table3;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&mut raw);
    let mut args = raw.into_iter();
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let rows = table3::run_with_link_on(engine, trials, seed, Default::default());
    print!("{}", table3::render(&rows));
    println!("\n({trials} trials per step, seed {seed})");
}
