//! Reproduces Table 3: extract precision of each ADL step over 40 trials
//! per tool (320 samples total, like the paper). Usage:
//! `cargo run -p coreda-bench --bin repro_table3 [trials] [seed]`

use coreda_bench::table3;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2007);
    let rows = table3::run(trials, seed);
    print!("{}", table3::render(&rows));
    println!("\n({trials} trials per step, seed {seed})");
}
