//! Minimal dependency-free argument parsing.
//!
//! The CLI's grammar is `coreda-cli <command> [--flag value]…`; this
//! module turns the raw argv into a [`Parsed`] bag with typed accessors
//! and precise error messages. (No external parser: the grammar is small
//! and the approved dependency list is smaller.)

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parsed command line: the subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    command: String,
    options: HashMap<String, String>,
}

impl Parsed {
    /// Parses argv (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when no subcommand is present, an option has
    /// no value, or a positional argument appears after the subcommand.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut it = args.into_iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut options = HashMap::new();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| ArgError::UnexpectedPositional(arg.clone()))?
                .to_owned();
            let value = it.next().ok_or_else(|| ArgError::MissingValue(key.clone()))?;
            options.insert(key, value);
        }
        Ok(Parsed { command, options })
    }

    /// The subcommand.
    #[must_use]
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A string option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparseable.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_owned(),
                value: v.to_owned(),
            }),
        }
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingOption`] when absent.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::MissingOption(key.to_owned()))
    }
}

/// Argument errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// `--key` without a value.
    MissingValue(String),
    /// A required option is absent.
    MissingOption(String),
    /// An option's value failed to parse.
    BadValue {
        /// Option name.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A bare word where an option was expected.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand (try 'help')"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::MissingOption(k) => write!(f, "required option --{k} is missing"),
            ArgError::BadValue { key, value } => {
                write!(f, "option --{key} got unparseable value {value:?}")
            }
            ArgError::UnexpectedPositional(a) => {
                write!(f, "unexpected argument {a:?} (options are --key value)")
            }
        }
    }
}

impl Error for ArgError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Parsed, ArgError> {
        Parsed::from_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_command_and_options() {
        let p = parse(&["simulate", "--adl", "tea", "--episodes", "5"]).unwrap();
        assert_eq!(p.command(), "simulate");
        assert_eq!(p.get("adl"), Some("tea"));
        assert_eq!(p.get_parsed("episodes", 0usize).unwrap(), 5);
        assert_eq!(p.get_or("profile", "moderate"), "moderate");
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(parse(&[]), Err(ArgError::MissingCommand));
        assert_eq!(parse(&["--adl", "tea"]), Err(ArgError::MissingCommand));
    }

    #[test]
    fn dangling_option_rejected() {
        assert_eq!(
            parse(&["train", "--dataset"]),
            Err(ArgError::MissingValue("dataset".to_owned()))
        );
    }

    #[test]
    fn positional_after_command_rejected() {
        assert!(matches!(
            parse(&["train", "stray"]),
            Err(ArgError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn bad_numeric_value_reported() {
        let p = parse(&["simulate", "--episodes", "many"]).unwrap();
        assert!(matches!(
            p.get_parsed("episodes", 0usize),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn require_reports_missing() {
        let p = parse(&["train"]).unwrap();
        assert_eq!(p.require("dataset"), Err(ArgError::MissingOption("dataset".to_owned())));
    }

    #[test]
    fn errors_display_helpfully() {
        assert!(ArgError::MissingValue("x".into()).to_string().contains("--x"));
        assert!(ArgError::MissingCommand.to_string().contains("help"));
    }
}
