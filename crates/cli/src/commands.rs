//! The CLI's subcommands, written against the library's public API and
//! returning their output as strings so tests can assert on them.

use std::error::Error;

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::dataset;
use coreda_adl::episode::EpisodeGenerator;
use coreda_adl::patient::PatientProfile;
use coreda_adl::routine::{Routine, RoutineSet};
use coreda_core::live::StochasticBehavior;
use coreda_core::persistence;
use coreda_core::planning::{LearnerKind, PlanningConfig, PlanningSubsystem};
use coreda_core::report::DailyReport;
use coreda_core::scenario;
use coreda_core::system::{Coreda, CoredaConfig};
use coreda_des::rng::SimRng;

use crate::args::Parsed;

/// A boxed error for command plumbing.
pub type CmdResult = Result<String, Box<dyn Error>>;

/// Resolves an `--adl` option to a catalog activity.
pub fn resolve_adl(name: &str) -> Result<AdlSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "tea" | "tea-making" => Ok(catalog::tea_making()),
        "tooth" | "tooth-brushing" => Ok(catalog::tooth_brushing()),
        "dressing" => Ok(catalog::dressing()),
        other => Err(format!(
            "unknown ADL {other:?}; available: tea, tooth, dressing"
        )),
    }
}

/// Resolves a `--profile` option to a patient profile.
pub fn resolve_profile(name: &str, user: &str) -> Result<PatientProfile, String> {
    match name.to_ascii_lowercase().as_str() {
        "unimpaired" => Ok(PatientProfile::unimpaired(user)),
        "mild" => Ok(PatientProfile::mild(user)),
        "moderate" => Ok(PatientProfile::moderate(user)),
        "severe" => Ok(PatientProfile::severe(user)),
        other => Err(format!(
            "unknown profile {other:?}; available: unimpaired, mild, moderate, severe"
        )),
    }
}

/// Resolves an `--algorithm` option to a learner kind.
pub fn resolve_algorithm(name: &str, seed: u64) -> Result<LearnerKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "qlambda" | "td-lambda" | "watkins" => Ok(LearnerKind::WatkinsQLambda),
        "q" | "q-learning" => Ok(LearnerKind::QLearning),
        "sarsa" => Ok(LearnerKind::Sarsa),
        "double-q" => Ok(LearnerKind::DoubleQ { seed }),
        "dyna-q" => Ok(LearnerKind::DynaQ { planning_steps: 20, seed }),
        other => Err(format!(
            "unknown algorithm {other:?}; available: qlambda, q, sarsa, double-q, dyna-q"
        )),
    }
}

/// `list` — show the activity catalog.
pub fn list() -> CmdResult {
    use std::fmt::Write as _;
    let mut out = String::new();
    for adl in catalog::all() {
        let _ = writeln!(out, "{adl}");
        for (i, step) in adl.steps().iter().enumerate() {
            let tool = adl.tool(step.tool()).expect("catalog is validated");
            let _ = writeln!(
                out,
                "  {}. {:<30} [{} on {}, ~{:.0}s]",
                i + 1,
                step.name(),
                tool.sensor(),
                tool.name(),
                step.mean_duration_s()
            );
        }
    }
    Ok(out)
}

/// `generate` — synthesise an episode dataset.
pub fn generate(p: &Parsed) -> CmdResult {
    let adl = resolve_adl(p.get_or("adl", "tea"))?;
    let episodes: usize = p.get_parsed("episodes", 120)?;
    let seed: u64 = p.get_parsed("seed", 2007)?;
    let user = p.get_or("user", "anonymous");
    let profile = resolve_profile(p.get_or("profile", "mild"), user)?;
    let routine = Routine::canonical(&adl);
    let generator =
        EpisodeGenerator::new(adl.clone(), RoutineSet::single(routine), profile);
    let mut rng = SimRng::seed_from(seed);
    let batch = generator.generate_batch(episodes, &mut rng);
    let text = dataset::write_episodes(adl.name(), &batch);
    if let Some(path) = p.get("out") {
        std::fs::write(path, &text)?;
        Ok(format!("wrote {episodes} episodes of {} to {path}\n", adl.name()))
    } else {
        Ok(text)
    }
}

/// `train` — learn a routine from a dataset and save the policy.
pub fn train(p: &Parsed) -> CmdResult {
    let path = p.require("dataset")?;
    let text = std::fs::read_to_string(path)?;
    let (adl_name, episodes) = dataset::parse_episodes(&text)?;
    let adl = resolve_adl(&adl_name)?;
    let seed: u64 = p.get_parsed("seed", 2007)?;
    let learner = resolve_algorithm(p.get_or("algorithm", "qlambda"), seed)?;
    let cfg = PlanningConfig { learner, ..PlanningConfig::default() };
    let mut planner = PlanningSubsystem::new(&adl, cfg);
    let mut rng = SimRng::seed_from(seed);
    for ep in &episodes {
        planner.train_episode(&ep.step_ids(), &mut rng);
    }
    let routine = Routine::canonical(&adl);
    let accuracy = planner.accuracy_vs_routine(&routine);
    let mut out = format!(
        "trained on {} episodes of {adl_name}; canonical-routine accuracy {:.0}%\n",
        episodes.len(),
        accuracy * 100.0
    );
    if let Some(out_path) = p.get("out") {
        let blob = persistence::save_policy(&planner);
        std::fs::write(out_path, &blob)?;
        out.push_str(&format!("policy saved to {out_path} ({} bytes)\n", blob.len()));
    }
    Ok(out)
}

/// `evaluate` — load a policy and print its per-transition guidance.
pub fn evaluate(p: &Parsed) -> CmdResult {
    use std::fmt::Write as _;
    let adl = resolve_adl(p.get_or("adl", "tea"))?;
    let blob = std::fs::read(p.require("policy")?)?;
    let mut planner = PlanningSubsystem::new(&adl, PlanningConfig::default());
    persistence::restore_policy(&mut planner, &blob)?;
    let routine = Routine::canonical(&adl);
    let mut out = String::new();
    for (prev, cur, next) in routine.transitions() {
        let prompt = planner.predict(prev, cur).expect("in-domain");
        let confidence = planner.prediction_confidence(prev, cur).unwrap_or(0.0);
        let mark = if Some(prompt.tool) == next.tool() { "ok " } else { "MISS" };
        let _ = writeln!(
            out,
            "  ({prev}, {cur}) -> prompt {tool} [{level}] confidence {conf:.2} {mark}",
            tool = prompt.tool,
            level = prompt.level,
            conf = confidence,
        );
    }
    let _ = writeln!(
        out,
        "accuracy vs canonical routine: {:.0}%",
        planner.accuracy_vs_routine(&routine) * 100.0
    );
    Ok(out)
}

/// `simulate` — run live episodes and print a caregiver report.
pub fn simulate(p: &Parsed) -> CmdResult {
    let adl = resolve_adl(p.get_or("adl", "tea"))?;
    let episodes: usize = p.get_parsed("episodes", 5)?;
    let seed: u64 = p.get_parsed("seed", 2007)?;
    let user = p.get_or("user", "Mr. Tanaka").to_owned();
    let profile = resolve_profile(p.get_or("profile", "moderate"), &user)?;
    let routine = Routine::canonical(&adl);
    let mut system = Coreda::new(adl.clone(), &user, CoredaConfig::default(), seed);
    match p.get("policy") {
        Some(path) => {
            let blob = std::fs::read(path)?;
            persistence::restore_policy(system.planner_mut(), &blob)?;
        }
        None => {
            let mut rng = SimRng::seed_from(seed ^ 0xF00D);
            for _ in 0..200 {
                system.planner_mut().train_episode(routine.steps(), &mut rng);
            }
        }
    }
    let mut rng = SimRng::seed_from(seed ^ 0xBEEF);
    let mut logs = Vec::new();
    let mut out = String::new();
    for i in 1..=episodes {
        let mut behavior = StochasticBehavior::new(profile.clone());
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        if p.get_or("verbose", "false") == "true" {
            out.push_str(&format!("--- episode {i} ---\n{}", log.render()));
        }
        logs.push(log);
    }
    let report = DailyReport::from_logs(&user, format!("{episodes} episodes"), &logs);
    out.push_str(&report.render());
    Ok(out)
}

/// `sensor-trace` — record a raw 10 Hz signal trace of one step's tool.
pub fn sensor_trace(p: &Parsed) -> CmdResult {
    use coreda_sensornet::trace::SignalTrace;
    let adl = resolve_adl(p.get_or("adl", "tea"))?;
    let step_no: usize = p.get_parsed("step", 1)?;
    let seconds: u64 = p.get_parsed("seconds", 10)?;
    let seed: u64 = p.get_parsed("seed", 2007)?;
    let step = adl
        .steps()
        .get(step_no.saturating_sub(1))
        .ok_or_else(|| format!("{} has no step {step_no}", adl.name()))?;
    let tool = adl.tool(step.tool()).expect("spec is validated");
    let mut rng = SimRng::seed_from(seed);
    // One second of stillness, the manipulation, one second of stillness.
    let ticks = (seconds as usize + 2) * 10;
    let active_from = 10;
    let active_to = ticks - 10;
    let trace = SignalTrace::record(
        tool.id().raw(),
        &tool.signal(),
        ticks,
        |i| (active_from..active_to).contains(&i),
        &mut rng,
    );
    let text = trace.to_text();
    if let Some(path) = p.get("out") {
        std::fs::write(path, &text)?;
        Ok(format!(
            "wrote {}s trace of {} ({}) to {path}
",
            seconds,
            step.name(),
            tool.name()
        ))
    } else {
        Ok(text)
    }
}

/// `scenario` — replay the paper's Figure 1.
pub fn run_scenario(p: &Parsed) -> CmdResult {
    let seed: u64 = p.get_parsed("seed", 2007)?;
    Ok(scenario::figure1(seed).render())
}

/// `fleet` — run a benchmark suite on the parallel fleet engine.
///
/// Every suite fans its `(config, seed)` grid out over `--jobs` workers;
/// results are bit-identical at any worker count, so `--jobs` is purely a
/// wall-clock knob.
pub fn fleet(p: &Parsed) -> CmdResult {
    use coreda_bench::{ablation, baseline_cmp, contention, fig4, radio_loss, table3, table4};
    use coreda_core::fleet::{default_jobs, FleetEngine};

    let jobs: usize = p.get_parsed("jobs", default_jobs())?;
    let seeds: usize = p.get_parsed("seeds", 4)?;
    let seed: u64 = p.get_parsed("seed", 2007)?;
    let engine = FleetEngine::new(jobs);
    let suite = p.get_or("suite", "ablation");

    let mut out = format!(
        "fleet: suite={suite} jobs={} seeds={seeds} seed={seed}\n",
        engine.jobs()
    );
    match suite.to_ascii_lowercase().as_str() {
        "ablation" => {
            let lam = ablation::lambda_sweep_with(engine, &[0.0, 0.3, 0.6, 0.9], 120, seeds, seed);
            out.push_str(&ablation::render("Eligibility-trace decay (lambda)", &lam));
            let algos = ablation::algorithm_family_with(engine, 120, seeds, seed);
            out.push_str(&ablation::render("Algorithm family", &algos));
        }
        "fig4" => {
            out.push_str(&fig4::render(&fig4::run_with(engine, 160, seeds, seed)));
        }
        "table3" => {
            out.push_str(&table3::render(&table3::run_with_link_on(
                engine,
                200,
                seed,
                Default::default(),
            )));
        }
        "table4" => {
            out.push_str(&table4::render(&table4::run_on(engine, 200, seed)));
        }
        "radio-loss" => {
            out.push_str(&radio_loss::render(&radio_loss::run_on(engine, 120, 120, seeds, seed)));
        }
        "contention" => {
            out.push_str(&contention::render(&contention::run_on(engine, 60, seed)));
        }
        "baselines" => {
            let tea = catalog::tea_making();
            let rows = baseline_cmp::accuracy_study_with(engine, &tea, seeds.max(1), seed);
            out.push_str(&baseline_cmp::render_accuracy(&rows));
            out.push_str(&baseline_cmp::render_live(&baseline_cmp::live_study_with(
                engine, 12, seed,
            )));
        }
        other => {
            return Err(format!(
                "unknown suite {other:?}; available: ablation, fig4, table3, table4, \
                 radio-loss, contention, baselines"
            )
            .into())
        }
    }
    Ok(out)
}

/// Parses the metro knobs shared by `scale`, `checkpoint` and `resume`.
fn metro_config(
    p: &Parsed,
    default_homes: usize,
    default_hours: f64,
) -> Result<coreda_core::metro::MetroConfig, Box<dyn Error>> {
    use coreda_core::fleet::default_jobs;
    use coreda_core::metro::{EngineKind, MetroConfig, SchedMode};
    use coreda_des::time::SimDuration;

    let homes: usize = p.get_parsed("homes", default_homes)?;
    let hours: f64 = p.get_parsed("hours", default_hours)?;
    let jobs: usize = p.get_parsed("jobs", default_jobs())?;
    let seed: u64 = p.get_parsed("seed", 2007)?;
    let engine = match p.get_or("engine", "wheel").to_ascii_lowercase().as_str() {
        "wheel" => EngineKind::Wheel,
        "heap" => EngineKind::Heap,
        other => {
            return Err(format!("unknown engine {other:?}; available: wheel, heap").into())
        }
    };
    // A pure performance knob — results are bit-identical either way —
    // kept switchable so regressions can be bisected against the
    // strict-order reference sweep.
    let sched = match p.get_or("sched", "epoch").to_ascii_lowercase().as_str() {
        "epoch" => SchedMode::Epoch,
        "strict" => SchedMode::Strict,
        other => {
            return Err(format!("unknown sched {other:?}; available: epoch, strict").into())
        }
    };
    if homes == 0 {
        return Err("--homes must be at least 1".into());
    }
    if !hours.is_finite() || hours <= 0.0 {
        return Err("--hours must be a positive number".into());
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let horizon = SimDuration::from_millis((hours * 3_600_000.0) as u64);
    Ok(MetroConfig { homes, horizon, seed, jobs, engine, sched, ..MetroConfig::default() })
}

/// Encodes each fleet snapshot and writes it as `<prefix>-<N>s.ckpt`,
/// appending a line per file to `out`.
fn write_snapshots(
    prefix: &str,
    ckpts: &[coreda_core::MetroCheckpoint],
    jobs: usize,
    out: &mut String,
) -> Result<(), Box<dyn Error>> {
    for ckpt in ckpts {
        let blob = coreda_core::save_checkpoint(ckpt, jobs);
        let secs = ckpt.at.as_millis() / 1000;
        let path = format!("{prefix}-{secs}s.ckpt");
        std::fs::write(&path, &blob)?;
        out.push_str(&format!("snapshot @ {secs}s -> {path} ({} bytes)\n", blob.len()));
    }
    Ok(())
}

/// `scale` — serve a metro fleet of independent homes.
///
/// Runs `--homes` full CoReDA households for `--hours` of simulated time
/// on the multi-home serving engine, sharded over `--jobs` workers.
/// Results are bit-identical at any worker count and for either queue
/// engine; only the header echoes the knobs. `--checkpoint-every` writes
/// durable fleet snapshots along the way; `--resume-from` continues one
/// (the resumed report is bit-identical to never having stopped).
pub fn scale(p: &Parsed) -> CmdResult {
    use coreda_core::escalation::CarePolicy;
    use coreda_core::metro::{
        resume_scale, resume_scale_checkpointed, resume_scale_traced, run_scale,
        run_scale_care, run_scale_checkpointed, run_scale_checkpointed_traced,
        run_scale_durable, run_scale_traced, run_scale_walled,
    };
    use coreda_des::time::SimTime;

    let cfg = metro_config(p, 16, 0.5)?;
    let hours: f64 = p.get_parsed("hours", 0.5)?;
    let header = format!(
        "scale: homes={} hours={hours} engine={} jobs={} seed={}\n",
        cfg.homes, cfg.engine, cfg.jobs, cfg.seed
    );

    // --care true overlays the caregiver escalation monitor — a pure
    // fold over the event log, so the fleet report is untouched; the
    // run gains the deterministic escalation summary and the fleet
    // analytics quantile rollup. The overlay is not checkpointable
    // state, so it stays plain-run only.
    if p.get_parsed("care", false)? {
        if p.get("trace-out").is_some()
            || p.get("wal-out").is_some()
            || p.get("resume-from").is_some()
            || p.get("checkpoint-every").is_some()
        {
            return Err("--care cannot combine with --trace-out, --wal-out, \
                        --resume-from, or --checkpoint-every; drop one"
                .into());
        }
        let (report, care) = run_scale_care(&cfg, &CarePolicy::default());
        let mut out = header;
        out.push_str(&report.render());
        out.push_str(&care.render());
        if let Some(path) = p.get("care-out") {
            std::fs::write(path, care.render_log())?;
            out.push_str(&format!(
                "escalation log -> {path} ({} events)\n",
                care.events.len()
            ));
        }
        return Ok(out);
    }

    let every_s: u64 = p.get_parsed("checkpoint-every", 0)?;
    let stops: Vec<SimTime> = if every_s == 0 {
        Vec::new()
    } else {
        (1..)
            .map(|k| k * every_s * 1000)
            .take_while(|&ms| ms <= cfg.horizon.as_millis())
            .map(SimTime::from_millis)
            .collect()
    };
    if every_s > 0 && stops.is_empty() {
        return Err("--checkpoint-every exceeds the horizon; nothing to snapshot".into());
    }
    let ckpt_prefix = p.get("checkpoint-out");
    if !stops.is_empty() && ckpt_prefix.is_none() {
        return Err("--checkpoint-every needs --checkpoint-out PREFIX".into());
    }
    let resume = match p.get("resume-from") {
        Some(path) => {
            let blob = std::fs::read(path)?;
            let ckpt = coreda_core::load_checkpoint(&blob, cfg.jobs)?;
            if ckpt.at.as_millis() >= cfg.horizon.as_millis() {
                return Err(format!(
                    "snapshot is at {}s but --hours ends the run at {}s; resume needs a \
                     horizon past the snapshot",
                    ckpt.at.as_millis() / 1000,
                    cfg.horizon.as_millis() / 1000
                )
                .into());
            }
            Some(ckpt)
        }
        None => None,
    };

    // --trace-out turns the flight recorder on; the report itself is
    // bit-identical either way (recording draws no randomness).
    let mut out = header;

    // --wal-out turns the write-ahead event log on. Alone it writes the
    // whole run's log; with --checkpoint-every it switches the snapshot
    // stream to incremental durability — a full base at the first stop,
    // then one compact delta per stop, costs that scale with activity
    // rather than fleet size. The report is bit-identical either way
    // (logging is derived, never fed back).
    if let Some(wal_path) = p.get("wal-out") {
        if p.get("trace-out").is_some() || resume.is_some() {
            return Err(
                "--wal-out cannot combine with --trace-out or --resume-from; drop one".into()
            );
        }
        let digest = coreda_core::config_digest(&cfg);
        if stops.is_empty() {
            let (report, wal) = run_scale_walled(&cfg);
            out.push_str(&report.render());
            let blob = coreda_core::encode_wal(digest, &wal);
            std::fs::write(wal_path, &blob)?;
            out.push_str(&format!(
                "write-ahead log: {} records -> {wal_path} ({} bytes)\n",
                wal.len(),
                blob.len()
            ));
        } else {
            let prefix = ckpt_prefix.expect("checked above");
            let (report, run) = run_scale_durable(&cfg, &stops);
            out.push_str(&report.render());
            let base_blob = coreda_core::save_checkpoint(&run.base, cfg.jobs);
            let base_secs = run.base.at.as_millis() / 1000;
            let base_path = format!("{prefix}-{base_secs}s.ckpt");
            std::fs::write(&base_path, &base_blob)?;
            out.push_str(&format!(
                "base snapshot @ {base_secs}s -> {base_path} ({} bytes)\n",
                base_blob.len()
            ));
            for delta in &run.deltas {
                let blob = coreda_core::save_delta(delta, cfg.jobs);
                let secs = delta.at.as_millis() / 1000;
                let path = format!("{prefix}-{secs}s.delta");
                std::fs::write(&path, &blob)?;
                out.push_str(&format!(
                    "delta @ {secs}s -> {path} ({} bytes, {} of {} homes dirty)\n",
                    blob.len(),
                    delta.dirty_homes(),
                    run.base.homes.len()
                ));
            }
            let blob = coreda_core::encode_wal(digest, &run.wal);
            std::fs::write(wal_path, &blob)?;
            out.push_str(&format!(
                "write-ahead log: {} records -> {wal_path} ({} bytes)\n",
                run.wal.len(),
                blob.len()
            ));
        }
        return Ok(out);
    }

    match (p.get("trace-out"), resume, stops.is_empty()) {
        (None, None, true) => out.push_str(&run_scale(&cfg).render()),
        (None, None, false) => {
            let (report, ckpts) = run_scale_checkpointed(&cfg, &stops);
            out.push_str(&report.render());
            write_snapshots(ckpt_prefix.expect("checked above"), &ckpts, cfg.jobs, &mut out)?;
        }
        (Some(path), None, true) => {
            let traced = run_scale_traced(&cfg);
            std::fs::write(path, traced.telemetry.to_jsonl())?;
            out.push_str(&traced.report.render());
            out.push_str(&format!("telemetry JSONL -> {path}\n"));
        }
        (Some(path), None, false) => {
            let (traced, ckpts) = run_scale_checkpointed_traced(&cfg, &stops);
            std::fs::write(path, traced.telemetry.to_jsonl())?;
            out.push_str(&traced.report.render());
            out.push_str(&format!("telemetry JSONL -> {path}\n"));
            write_snapshots(ckpt_prefix.expect("checked above"), &ckpts, cfg.jobs, &mut out)?;
        }
        (None, Some(ckpt), true) => out.push_str(&resume_scale(&cfg, &ckpt)?.render()),
        (None, Some(ckpt), false) => {
            let (report, ckpts) = resume_scale_checkpointed(&cfg, &ckpt, &stops)?;
            out.push_str(&report.render());
            write_snapshots(ckpt_prefix.expect("checked above"), &ckpts, cfg.jobs, &mut out)?;
        }
        (Some(path), Some(ckpt), true) => {
            let traced = resume_scale_traced(&cfg, &ckpt)?;
            std::fs::write(path, traced.telemetry.to_jsonl())?;
            out.push_str(&traced.report.render());
            out.push_str(&format!("telemetry JSONL -> {path}\n"));
        }
        (Some(_), Some(_), false) => {
            return Err(
                "--trace-out cannot combine with both --resume-from and --checkpoint-every; \
                 drop one"
                    .into(),
            )
        }
    }
    Ok(out)
}

/// `checkpoint` — run a metro fleet and write one durable snapshot.
///
/// Serves the fleet to `--hours`, capturing the complete resumable state
/// at `--at` seconds (default: the horizon) into `--out`. The snapshot
/// is versioned, checksummed, and config-fingerprinted; `resume`
/// continues it bit-identically.
pub fn checkpoint(p: &Parsed) -> CmdResult {
    use coreda_core::metro::run_scale_checkpointed;
    use coreda_des::time::SimTime;

    let cfg = metro_config(p, 16, 0.5)?;
    let out_path = p.require("out")?;
    let at_s: u64 = p.get_parsed("at", cfg.horizon.as_millis() / 1000)?;
    let at = SimTime::from_millis(at_s * 1000);
    if at == SimTime::ZERO || at.as_millis() > cfg.horizon.as_millis() {
        return Err(format!(
            "--at must lie in (0, horizon]; got {at_s}s with a {}s horizon",
            cfg.horizon.as_millis() / 1000
        )
        .into());
    }
    let (report, ckpts) = run_scale_checkpointed(&cfg, &[at]);
    let blob = coreda_core::save_checkpoint(&ckpts[0], cfg.jobs);
    std::fs::write(out_path, &blob)?;
    Ok(format!(
        "checkpoint: homes={} at={at_s}s engine={} jobs={} seed={}\n{}snapshot @ {at_s}s -> \
         {out_path} ({} bytes)\n",
        cfg.homes,
        cfg.engine,
        cfg.jobs,
        cfg.seed,
        report.render(),
        blob.len()
    ))
}

/// `resume` — continue a metro fleet from a snapshot file.
///
/// Loads `--from`, validates its version, checksum and config
/// fingerprint (`--homes`/`--seed` must match the snapshotted run;
/// `--jobs`, `--engine` and `--hours` may change freely), and serves to
/// the new horizon. The report is bit-identical to a run that was never
/// interrupted.
///
/// `--from` also accepts a comma-separated incremental chain —
/// `base.ckpt,120s.delta,240s.delta` from `scale --wal-out
/// --checkpoint-every` — folded base-first before serving. `--wal FILE`
/// reads the (possibly torn) write-ahead log back tolerantly and
/// cross-checks the resumed replay against the stored tail: a log that
/// disagrees with the deterministic replay belongs to a different
/// history and fails the resume.
pub fn resume(p: &Parsed) -> CmdResult {
    use coreda_core::metro::{resume_scale, resume_scale_durable, resume_scale_traced, DurableRun};

    let from = p.require("from")?;
    let mut parts = from.split(',');
    let base_path = parts.next().expect("split yields at least one part");
    let blob = std::fs::read(base_path)?;
    // Decoding is jobs-invariant, so one serial decode serves any run.
    let base = coreda_core::load_checkpoint(&blob, 1)?;
    let mut deltas = Vec::new();
    for path in parts {
        deltas.push(coreda_core::load_delta(&std::fs::read(path)?, 1)?);
    }
    let wal = match p.get("wal") {
        // Tolerant read: a log torn mid-chunk by the crash still yields
        // its intact record prefix.
        Some(path) => coreda_core::decode_wal_tolerant(&std::fs::read(path)?)?.records,
        None => Vec::new(),
    };
    let at = deltas.last().map_or(base.at, |d| d.at);
    // Default --homes to what the snapshot holds; the digest still
    // guards against resuming a genuinely different fleet.
    let cfg = metro_config(p, base.homes.len(), 0.5)?;
    if at.as_millis() >= cfg.horizon.as_millis() {
        return Err(format!(
            "snapshot is at {}s but --hours ends the run at {}s; resume needs a horizon \
             past the snapshot",
            at.as_millis() / 1000,
            cfg.horizon.as_millis() / 1000
        )
        .into());
    }
    let header = format!(
        "resume: from={from} at={}s homes={} engine={} jobs={} seed={}{wal_note}\n",
        at.as_millis() / 1000,
        cfg.homes,
        cfg.engine,
        cfg.jobs,
        cfg.seed,
        wal_note = if wal.is_empty() {
            String::new()
        } else {
            format!(" wal={} records", wal.len())
        },
    );
    if !deltas.is_empty() || !wal.is_empty() {
        if p.get("trace-out").is_some() {
            return Err("--trace-out cannot combine with an incremental chain or --wal; \
                        drop one"
                .into());
        }
        let run = DurableRun { base, deltas, wal };
        return Ok(format!("{header}{}", resume_scale_durable(&cfg, &run)?.render()));
    }
    match p.get("trace-out") {
        Some(path) => {
            let traced = resume_scale_traced(&cfg, &base)?;
            std::fs::write(path, traced.telemetry.to_jsonl())?;
            Ok(format!("{header}{}telemetry JSONL -> {path}\n", traced.report.render()))
        }
        None => Ok(format!("{header}{}", resume_scale(&cfg, &base)?.render())),
    }
}

/// `trace` — serve a metro fleet with the flight recorder on.
///
/// Same serving engine as `scale`, but every home collects pipeline
/// counters, stage-latency histograms (idle-detect delay, wrong-tool to
/// red-blink, prompt to compliance), and a bounded ring of trace events.
/// Prints the deterministic telemetry summary; `--out` additionally
/// writes the full JSONL export. The summary is bit-identical at any
/// `--jobs` count; only the header (peak queue depth) varies.
pub fn trace(p: &Parsed) -> CmdResult {
    use coreda_core::fleet::default_jobs;
    use coreda_core::metro::{run_scale_traced, run_scale_walled, MetroConfig};
    use coreda_des::time::SimDuration;

    let homes: usize = p.get_parsed("homes", 8)?;
    let seconds: u64 = p.get_parsed("seconds", 900)?;
    let jobs: usize = p.get_parsed("jobs", default_jobs())?;
    let seed: u64 = p.get_parsed("seed", 2007)?;
    if homes == 0 {
        return Err("--homes must be at least 1".into());
    }
    if seconds == 0 {
        return Err("--seconds must be at least 1".into());
    }
    let cfg = MetroConfig {
        homes,
        horizon: SimDuration::from_secs(seconds),
        seed,
        jobs,
        ..MetroConfig::default()
    };
    // --replay-home: time-travel replay of one home's logged
    // transitions, reconstructed from the write-ahead event log.
    if let Some(home) = p.get("replay-home") {
        let home: u32 = home.parse()?;
        if home as usize >= homes {
            return Err(format!(
                "--replay-home {home} is out of range for a {homes}-home fleet"
            )
            .into());
        }
        let (_, wal) = run_scale_walled(&cfg);
        let mut text = format!(
            "trace: homes={homes} seconds={seconds} seed={seed} replay of home {home}\n",
        );
        text.push_str(&coreda_core::render_home_timeline(&wal, home));
        return Ok(text);
    }
    let out = run_scale_traced(&cfg);
    let mut text = format!(
        "trace: homes={homes} seconds={seconds} jobs={jobs} seed={seed} \
         (peak queue depth {peak})\n",
        peak = out.peak_pending,
    );
    text.push_str(&out.telemetry.render_summary());
    if let Some(path) = p.get("out") {
        std::fs::write(path, out.telemetry.to_jsonl())?;
        text.push_str(&format!("telemetry JSONL -> {path}\n"));
    }
    Ok(text)
}

/// `serve` — drive a metro fleet through the online serving front end.
///
/// Same households as `scale`, but every home sits behind a byte-level
/// wire connection: the server offers each DES wake as a `Poll` frame,
/// the mote client answers with a `Report`, and prompts/escalations
/// ride back as `Deliver` frames — all through the versioned,
/// CRC-guarded codec. Reports are advisory (they only move a
/// flow-control watermark), so under the sim clock the served report is
/// bit-identical to `scale` at any `--jobs` and either `--engine`; the
/// wire accounting line is the only addition.
pub fn serve(p: &Parsed) -> CmdResult {
    use coreda_serve::{serve_scale, ServeOptions};

    let cfg = metro_config(p, 16, 0.5)?;
    let hours: f64 = p.get_parsed("hours", 0.5)?;
    let header = format!(
        "serve: homes={} hours={hours} engine={} jobs={} seed={}\n",
        cfg.homes, cfg.engine, cfg.jobs, cfg.seed
    );
    let trace_out = p.get("trace-out");
    let care: bool = p.get_parsed("care", false)?;
    let opts = ServeOptions {
        record: false,
        trace: trace_out.is_some(),
        care: care.then(coreda_core::escalation::CarePolicy::default),
    };
    let outcome = serve_scale(cfg, &opts)?;
    let mut out = header;
    out.push_str(&outcome.output.report.render());
    let w = &outcome.wire;
    out.push_str(&format!(
        "wire: {} frames in / {} frames out, {} reports, {} deliveries, {} byes\n",
        w.frames_in, w.frames_out, w.reports, w.delivers, w.byes_out
    ));
    if let Some(care) = &outcome.care {
        out.push_str(&format!("wire escalations: {}\n", w.escalations));
        out.push_str(&care.render());
    }
    if let Some(path) = trace_out {
        std::fs::write(path, outcome.output.telemetry.to_jsonl())?;
        out.push_str(&format!("telemetry JSONL -> {path}\n"));
    }
    Ok(out)
}

/// `loadgen` — replay a metro fleet as concurrent wire clients.
///
/// Load-generator mode for the serving front end: every home becomes a
/// client hammering the ingestion loop through the real codec, and the
/// report aggregates wire traffic plus delivery-latency quantiles. By
/// default the fleet runs on the sim clock (as fast as the machine
/// allows); `--wall S` paces wakes on the wall clock at `S`× real time
/// instead. Everything above the timing lines is deterministic.
pub fn loadgen(p: &Parsed) -> CmdResult {
    use coreda_serve::run_loadgen;

    let cfg = metro_config(p, 64, 0.25)?;
    let speedup = match p.get("wall") {
        None => None,
        Some(_) => {
            let s: f64 = p.get_parsed("wall", 0.0)?;
            if !s.is_finite() || s <= 0.0 {
                return Err("--wall must be a positive speed-up factor".into());
            }
            Some(s)
        }
    };
    let report = run_loadgen(cfg, speedup)?;
    let mut out = report.render();
    out.push_str(&report.render_timing());
    Ok(out)
}

/// `fuzz` — deterministic simulation-testing campaign.
///
/// Expands `--seed` into a stream of fault plans (radio loss bursts,
/// node crashes, sensor flips, clock skew, non-compliance, severe
/// lapses, routine drift), serves each under the real pipeline on both
/// queue engines with every invariant oracle attached, and shrinks any
/// violation to a minimal `.seed.json` repro. Fails (non-zero exit) if
/// any oracle fires.
pub fn fuzz(p: &Parsed) -> CmdResult {
    use coreda_testkit::fuzz::{fuzz, FuzzConfig};

    let defaults = FuzzConfig::default();
    let cfg = FuzzConfig {
        seconds: p.get_parsed("seconds", defaults.seconds)?,
        seed: p.get_parsed("seed", defaults.seed)?,
        jobs: p.get_parsed("jobs", defaults.jobs)?,
        out_dir: p.get("out").map(std::path::PathBuf::from),
        trace_dir: p.get("trace-out").map(std::path::PathBuf::from),
        max_plans: p.get_parsed("plans", defaults.max_plans)?,
        kill_resume: p.get_parsed("kill-resume", defaults.kill_resume)?,
        served: p.get_parsed("served", defaults.served)?,
        care: p.get_parsed("care", defaults.care)?,
    };
    let report = fuzz(&cfg)?;
    let rendered = report.render();
    if report.passed() {
        Ok(rendered)
    } else {
        Err(rendered.into())
    }
}

/// `replay` — re-run `.seed.json` fault plans from the regression corpus.
///
/// Each entry must reproduce its recorded expectation exactly: the named
/// oracle fires again, or (for clean entries) every oracle stays silent.
pub fn replay(p: &Parsed) -> CmdResult {
    use coreda_testkit::corpus;
    use coreda_testkit::harness::Harness;

    let harness = Harness::new();
    let outcomes = match (p.get("file"), p.get("dir")) {
        (Some(file), None) => {
            vec![corpus::replay_file(&harness, std::path::Path::new(file))?]
        }
        (None, Some(dir)) => corpus::replay_dir(&harness, std::path::Path::new(dir))?,
        _ => return Err("replay needs exactly one of --file FILE or --dir DIR".into()),
    };
    let mut out = String::new();
    for o in &outcomes {
        out.push_str(&o.render());
        out.push('\n');
    }
    let failed = outcomes.iter().filter(|o| !o.pass).count();
    out.push_str(&format!("replayed {}, {failed} failed\n", outcomes.len()));
    if failed == 0 {
        Ok(out)
    } else {
        Err(out.into())
    }
}

/// `help` — usage text.
#[must_use]
pub fn help() -> String {
    "\
coreda-cli — the CoReDA context-aware ADL reminding system

USAGE: coreda-cli <command> [--option value]...

COMMANDS
  list                       show the activity catalog
  generate                   synthesise an episode dataset
      --adl tea|tooth|dressing activity                   [tea]
      --episodes N           how many                     [120]
      --profile P            unimpaired|mild|moderate|severe [mild]
      --seed N               rng seed                     [2007]
      --out FILE             write to file instead of stdout
  train                      learn a routine from a dataset
      --dataset FILE         dataset produced by 'generate'  (required)
      --out FILE             save the learned policy blob
      --algorithm A          qlambda|q|sarsa|double-q|dyna-q [qlambda]
      --seed N               rng seed                     [2007]
  evaluate                   inspect a saved policy
      --policy FILE          policy blob from 'train'       (required)
      --adl tea|tooth        activity the policy is for   [tea]
  simulate                   run live guided episodes
      --adl tea|tooth        activity                     [tea]
      --episodes N           how many                     [5]
      --profile P            patient severity             [moderate]
      --policy FILE          use a saved policy (else trains in-process)
      --user NAME            user name for prompts        [Mr. Tanaka]
      --verbose true         print every episode timeline
      --seed N               rng seed                     [2007]
  sensor-trace               record a raw 10 Hz signal trace
      --adl tea|tooth        activity                     [tea]
      --step N               1-based step number          [1]
      --seconds N            manipulation length          [10]
      --seed N               rng seed                     [2007]
      --out FILE             write to file instead of stdout
  scenario                   replay the paper's Figure 1
      --seed N               rng seed                     [2007]
  fleet                      run a benchmark suite on the parallel engine
      --suite S              ablation|fig4|table3|table4|radio-loss|
                             contention|baselines        [ablation]
      --jobs N               worker threads (results are identical at
                             any N)                      [all cores]
      --seeds N              seeds per sweep point        [4]
      --seed N               base rng seed                [2007]
  scale                      serve a metro fleet of homes
      --homes N              independent households       [16]
      --hours H              simulated horizon (fractional ok) [0.5]
      --engine wheel|heap    timing-wheel wakes or dense heap
                             polling (identical results) [wheel]
      --jobs N               worker threads (results are identical at
                             any N)                      [all cores]
      --seed N               base rng seed                [2007]
      --trace-out FILE       also run the flight recorder and write
                             telemetry JSONL here
      --checkpoint-every S   write a fleet snapshot every S simulated
                             seconds (needs --checkpoint-out)
      --checkpoint-out P     snapshot path prefix: writes P-<N>s.ckpt
      --resume-from FILE     continue from a snapshot instead of starting
                             fresh (bit-identical to never stopping)
      --wal-out FILE         write the write-ahead event log here; with
                             --checkpoint-every the snapshot stream turns
                             incremental (P-<N>s.ckpt base, then compact
                             P-<N>s.delta per stop)
      --care true            overlay the caregiver escalation monitor:
                             prints the escalation summary and the fleet
                             analytics rollup (bit-identical at any
                             --jobs and either --engine)   [false]
      --care-out FILE        with --care, write the full escalation log
                             here, one line per event
  checkpoint                 run a fleet and write one durable snapshot
      --out FILE             snapshot file                  (required)
      --at S                 snapshot instant, seconds    [the horizon]
      --homes/--hours/--engine/--jobs/--seed as for scale
  resume                     continue a fleet from a snapshot
      --from FILE            snapshot from 'checkpoint' or
                             --checkpoint-every; a comma-separated
                             base.ckpt,...delta chain folds base-first
                                                            (required)
      --wal FILE             cross-check the resumed replay against a
                             stored write-ahead log (torn tails are
                             salvaged tolerantly)
      --hours H              new total horizon (must lie past the
                             snapshot instant)            [0.5]
      --homes/--seed         must match the snapshotted run (the config
                             fingerprint is enforced)
      --engine/--jobs        free to change; results are identical
      --trace-out FILE       flight-record the resumed run; telemetry
                             merges across the snapshot boundary
  trace                      serve homes with the flight recorder on
      --homes N              independent households       [8]
      --seconds N            simulated horizon            [900]
      --jobs N               worker threads (summary is identical at
                             any N)                      [all cores]
      --seed N               base rng seed                [2007]
      --out FILE             write full telemetry JSONL here
      --replay-home N        time-travel replay: print home N's logged
                             transitions from the write-ahead event log
  serve                      drive a fleet through the online serving
                             front end: every home behind a byte-level
                             wire connection (versioned, CRC-guarded
                             frames); under the sim clock the report is
                             bit-identical to 'scale'
      --homes/--hours/--engine/--jobs/--seed as for scale
      --care true            caregiver escalations ride back to the
                             clients as Escalate frames; prints the wire
                             escalation count plus the care summary
                                                           [false]
      --trace-out FILE       also run the flight recorder and write
                             telemetry JSONL here
  loadgen                    replay a fleet as concurrent wire clients
      --homes N              independent households       [64]
      --hours H              simulated horizon (fractional ok) [0.25]
      --engine/--jobs/--seed as for scale
      --wall S               pace wakes on the wall clock at S x real
                             time instead of the sim clock
  fuzz                       deterministic simulation-testing campaign
      --seconds N            wall-clock budget            [60]
      --seed N               campaign seed                [2007]
      --jobs N               workers for the jobs differential [3]
      --plans N              hard cap on fault plans      [unlimited]
      --kill-resume true     also kill-and-resume every plan through the
                             durability codecs (full snapshot, then
                             incremental deltas; write-ahead log torn
                             mid-chunk), checking the resumed run
                             against its uninterrupted ghost [false]
      --served true          fuzz the served ingestion path instead:
                             transport fault plans (duplicated, reordered,
                             delayed frames; mid-session hangups) checked
                             against the batch run on both queue engines
                                                           [false]
      --care true            fuzz the caregiver escalation overlay
                             instead: caregiver-outage fault plans checked
                             by the escalation_consistency oracle across
                             both engines, a jobs differential, and the
                             served path                   [false]
      --out DIR              write shrunken .seed.json repros here
      --trace-out DIR        write violation flight records (.trace.jsonl)
                             here                        [--out dir]
  replay                     re-run .seed.json fault-plan repros
      --file FILE            one corpus entry
      --dir DIR              every *.seed.json in a directory
  help                       this text
"
    .to_owned()
}

/// Dispatches a parsed command line.
pub fn dispatch(p: &Parsed) -> CmdResult {
    match p.command() {
        "list" => list(),
        "generate" => generate(p),
        "train" => train(p),
        "evaluate" => evaluate(p),
        "simulate" => simulate(p),
        "sensor-trace" => sensor_trace(p),
        "scenario" => run_scenario(p),
        "fleet" => fleet(p),
        "scale" => scale(p),
        "checkpoint" => checkpoint(p),
        "resume" => resume(p),
        "trace" => trace(p),
        "serve" => serve(p),
        "loadgen" => loadgen(p),
        "fuzz" => fuzz(p),
        "replay" => replay(p),
        "help" => Ok(help()),
        other => Err(format!("unknown command {other:?}; try 'help'").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Parsed {
        Parsed::from_args(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("coreda-cli-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn list_shows_both_adls() {
        let out = list().unwrap();
        assert!(out.contains("Tea-making"));
        assert!(out.contains("Tooth-brushing"));
        assert!(out.contains("pressure on electronic-pot"));
    }

    #[test]
    fn generate_train_evaluate_pipeline() {
        let data = temp_path("dataset.txt");
        let policy = temp_path("policy.bin");
        let out = generate(&parse(&[
            "generate", "--adl", "tea", "--episodes", "150",
            "--out", data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote 150 episodes"));

        let out = train(&parse(&[
            "train", "--dataset", data.to_str().unwrap(),
            "--out", policy.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("accuracy 100%"), "{out}");

        let out = evaluate(&parse(&[
            "evaluate", "--policy", policy.to_str().unwrap(), "--adl", "tea",
        ]))
        .unwrap();
        assert!(out.contains("accuracy vs canonical routine: 100%"), "{out}");
        assert!(!out.contains("MISS"), "{out}");

        let _ = std::fs::remove_file(data);
        let _ = std::fs::remove_file(policy);
    }

    #[test]
    fn generate_to_stdout_is_parseable() {
        let out = generate(&parse(&["generate", "--episodes", "3"])).unwrap();
        let (adl, eps) = coreda_adl::dataset::parse_episodes(&out).unwrap();
        assert_eq!(adl, "Tea-making");
        assert_eq!(eps.len(), 3);
    }

    #[test]
    fn simulate_prints_a_report() {
        let out =
            simulate(&parse(&["simulate", "--episodes", "2", "--profile", "mild"])).unwrap();
        assert!(out.contains("Care report"), "{out}");
        assert!(out.contains("2"), "{out}");
    }

    #[test]
    fn sensor_trace_roundtrips() {
        let out = sensor_trace(&parse(&["sensor-trace", "--step", "2", "--seconds", "5"]))
            .unwrap();
        let trace = coreda_sensornet::trace::SignalTrace::from_text(&out).unwrap();
        assert_eq!(trace.tool, coreda_adl::activity::catalog::POT);
        assert_eq!(trace.readings.len(), 70, "5s active + 2s lead in/out at 10 Hz");
    }

    #[test]
    fn sensor_trace_rejects_bad_step() {
        let err = sensor_trace(&parse(&["sensor-trace", "--step", "9"])).unwrap_err();
        assert!(err.to_string().contains("no step 9"));
    }

    #[test]
    fn scenario_prints_the_timeline() {
        let out = run_scenario(&parse(&["scenario"])).unwrap();
        assert!(out.contains("ADL completed"), "{out}");
    }

    #[test]
    fn train_accepts_alternative_algorithms() {
        let data = temp_path("dyna-dataset.txt");
        generate(&parse(&[
            "generate", "--episodes", "60", "--out", data.to_str().unwrap(),
        ]))
        .unwrap();
        let out = train(&parse(&[
            "train", "--dataset", data.to_str().unwrap(), "--algorithm", "dyna-q",
        ]))
        .unwrap();
        assert!(out.contains("accuracy 100%"), "{out}");
        let _ = std::fs::remove_file(data);
    }

    #[test]
    fn unknown_inputs_error_helpfully() {
        assert!(resolve_adl("cooking").is_err());
        assert!(resolve_profile("cyborg", "x").is_err());
        assert!(resolve_algorithm("deep-rl", 0).is_err());
        let err = dispatch(&parse(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn help_lists_every_command() {
        let h = help();
        for cmd in [
            "list", "generate", "train", "evaluate", "simulate", "scenario", "fleet", "scale",
            "checkpoint", "resume", "trace", "serve", "loadgen", "fuzz", "replay",
        ] {
            assert!(h.contains(cmd), "help is missing {cmd}");
        }
        assert_eq!(dispatch(&parse(&["help"])).unwrap(), h);
    }

    #[test]
    fn fleet_runs_a_suite_and_jobs_do_not_change_output() {
        let serial = fleet(&parse(&[
            "fleet", "--suite", "contention", "--jobs", "1", "--seed", "7",
        ]))
        .unwrap();
        let parallel = fleet(&parse(&[
            "fleet", "--suite", "contention", "--jobs", "8", "--seed", "7",
        ]))
        .unwrap();
        assert!(serial.contains("Scaling"), "{serial}");
        // The header echoes the worker count; everything below it must
        // be byte-identical.
        let body = |s: &str| s.split_once('\n').unwrap().1.to_owned();
        assert_eq!(body(&serial), body(&parallel));
    }

    #[test]
    fn scale_serves_homes_and_jobs_do_not_change_output() {
        let serial = scale(&parse(&[
            "scale", "--homes", "6", "--hours", "0.2", "--jobs", "1", "--seed", "11",
        ]))
        .unwrap();
        let parallel = scale(&parse(&[
            "scale", "--homes", "6", "--hours", "0.2", "--jobs", "8", "--seed", "11",
        ]))
        .unwrap();
        assert!(serial.contains("6 homes"), "{serial}");
        assert!(serial.contains("episodes:"), "{serial}");
        // The header echoes the worker count; everything below it must
        // be byte-identical.
        let body = |s: &str| s.split_once('\n').unwrap().1.to_owned();
        assert_eq!(body(&serial), body(&parallel));
    }

    #[test]
    fn trace_prints_summary_and_jobs_do_not_change_it() {
        let serial = trace(&parse(&[
            "trace", "--homes", "4", "--seconds", "300", "--jobs", "1", "--seed", "11",
        ]))
        .unwrap();
        let parallel = trace(&parse(&[
            "trace", "--homes", "4", "--seconds", "300", "--jobs", "8", "--seed", "11",
        ]))
        .unwrap();
        assert!(serial.contains("telemetry: 4 home(s)"), "{serial}");
        assert!(serial.contains("p95"), "{serial}");
        // The header echoes jobs and the queue-depth gauge; everything
        // below it must be byte-identical.
        let body = |s: &str| s.split_once('\n').unwrap().1.to_owned();
        assert_eq!(body(&serial), body(&parallel));
    }

    #[test]
    fn trace_writes_jsonl_when_asked() {
        let path = temp_path("trace.jsonl");
        let out = trace(&parse(&[
            "trace", "--homes", "2", "--seconds", "120",
            "--out", path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("telemetry JSONL ->"), "{out}");
        let jsonl = std::fs::read_to_string(&path).unwrap();
        assert!(jsonl.starts_with("{\"kind\":\"summary\""), "{jsonl}");
        assert_eq!(jsonl.lines().count(), 3, "summary + one line per home");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn scale_trace_out_keeps_the_report_and_writes_jsonl() {
        let path = temp_path("scale-trace.jsonl");
        let plain = scale(&parse(&[
            "scale", "--homes", "3", "--hours", "0.1", "--jobs", "1", "--seed", "5",
        ]))
        .unwrap();
        let traced = scale(&parse(&[
            "scale", "--homes", "3", "--hours", "0.1", "--jobs", "1", "--seed", "5",
            "--trace-out", path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(traced.starts_with(&plain), "recording must not change the report");
        assert!(std::fs::read_to_string(&path).unwrap().contains("\"kind\":\"summary\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_rejects_bad_knobs() {
        let err = trace(&parse(&["trace", "--homes", "0"])).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
        let err = trace(&parse(&["trace", "--seconds", "0"])).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn scale_rejects_bad_knobs() {
        let err = scale(&parse(&["scale", "--engine", "quantum"])).unwrap_err();
        assert!(err.to_string().contains("unknown engine"));
        let err = scale(&parse(&["scale", "--hours", "-1"])).unwrap_err();
        assert!(err.to_string().contains("positive"));
        let err = scale(&parse(&["scale", "--homes", "0"])).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn fleet_rejects_unknown_suite() {
        let err = fleet(&parse(&["fleet", "--suite", "nope"])).unwrap_err();
        assert!(err.to_string().contains("unknown suite"));
    }

    /// The body of a report, skipping the command-specific header line.
    fn body(s: &str) -> &str {
        s.split_once('\n').unwrap().1
    }

    #[test]
    fn checkpoint_then_resume_matches_an_uninterrupted_scale() {
        let snap = temp_path("mid.ckpt");
        let full = scale(&parse(&[
            "scale", "--homes", "3", "--hours", "0.1", "--jobs", "1", "--seed", "5",
        ]))
        .unwrap();
        let out = checkpoint(&parse(&[
            "checkpoint", "--homes", "3", "--hours", "0.05", "--jobs", "1", "--seed", "5",
            "--out", snap.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("snapshot @ 180s ->"), "{out}");
        // The engine stays wheel (the report echoes it and counts raw DES
        // events, which are engine-dependent); jobs may change freely.
        let resumed = resume(&parse(&[
            "resume", "--from", snap.to_str().unwrap(), "--hours", "0.1", "--jobs", "8",
            "--seed", "5",
        ]))
        .unwrap();
        assert_eq!(
            body(&resumed),
            body(&full),
            "a resumed fleet must be bit-identical to one that never stopped"
        );
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn scale_checkpoint_every_writes_resumable_snapshots() {
        let prefix = temp_path("periodic");
        let out = scale(&parse(&[
            "scale", "--homes", "2", "--hours", "0.05", "--jobs", "1", "--seed", "9",
            "--checkpoint-every", "60", "--checkpoint-out", prefix.to_str().unwrap(),
        ]))
        .unwrap();
        for secs in [60, 120, 180] {
            assert!(out.contains(&format!("snapshot @ {secs}s ->")), "{out}");
        }
        let full = scale(&parse(&[
            "scale", "--homes", "2", "--hours", "0.05", "--jobs", "1", "--seed", "9",
        ]))
        .unwrap();
        let mid = format!("{}-120s.ckpt", prefix.to_str().unwrap());
        let resumed = scale(&parse(&[
            "scale", "--homes", "2", "--hours", "0.05", "--jobs", "1", "--seed", "9",
            "--resume-from", &mid,
        ]))
        .unwrap();
        assert_eq!(body(&resumed), body(&full));
        for secs in [60, 120, 180] {
            let _ = std::fs::remove_file(format!("{}-{secs}s.ckpt", prefix.to_str().unwrap()));
        }
    }

    #[test]
    fn scale_wal_out_writes_an_incremental_chain_that_resumes_bit_identically() {
        let prefix = temp_path("durable");
        let wal_path = temp_path("durable.wal");
        let out = scale(&parse(&[
            "scale", "--homes", "2", "--hours", "0.05", "--jobs", "1", "--seed", "9",
            "--checkpoint-every", "60", "--checkpoint-out", prefix.to_str().unwrap(),
            "--wal-out", wal_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("base snapshot @ 60s ->"), "{out}");
        assert!(out.contains("delta @ 120s ->"), "{out}");
        assert!(out.contains("write-ahead log:"), "{out}");
        let full = scale(&parse(&[
            "scale", "--homes", "2", "--hours", "0.05", "--jobs", "1", "--seed", "9",
        ]))
        .unwrap();
        // Fold base + the 120s delta (the 180s one sits at the horizon),
        // cross-check the stored log tail past 120s against the replay,
        // and land on the uninterrupted result.
        let chain = format!("{p}-60s.ckpt,{p}-120s.delta", p = prefix.to_str().unwrap());
        let resumed = resume(&parse(&[
            "resume", "--from", &chain, "--wal", wal_path.to_str().unwrap(),
            "--hours", "0.05", "--jobs", "8", "--seed", "9",
        ]))
        .unwrap();
        assert!(resumed.contains("wal="), "{resumed}");
        assert_eq!(body(&resumed), body(&full));
        // A delta is a small fraction of the base snapshot: the whole
        // point of incremental durability.
        let base_len = std::fs::metadata(format!("{}-60s.ckpt", prefix.to_str().unwrap()))
            .unwrap()
            .len();
        let delta_len = std::fs::metadata(format!("{}-120s.delta", prefix.to_str().unwrap()))
            .unwrap()
            .len();
        assert!(
            delta_len * 4 < base_len,
            "delta ({delta_len} B) should be well under the base ({base_len} B)"
        );
        for suffix in ["60s.ckpt", "120s.delta", "180s.delta"] {
            let _ = std::fs::remove_file(format!("{}-{suffix}", prefix.to_str().unwrap()));
        }
        let _ = std::fs::remove_file(wal_path);
    }

    #[test]
    fn trace_replay_home_prints_a_timeline() {
        let out = trace(&parse(&[
            "trace", "--homes", "3", "--seconds", "600", "--seed", "11",
            "--replay-home", "1",
        ]))
        .unwrap();
        assert!(out.contains("replay of home 1"), "{out}");
        assert!(out.contains("episode started"), "{out}");
        assert!(out.contains("home 1:"), "{out}");
        let err = trace(&parse(&[
            "trace", "--homes", "3", "--replay-home", "3",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn resume_rejects_a_mismatched_config_and_a_short_horizon() {
        let snap = temp_path("guard.ckpt");
        checkpoint(&parse(&[
            "checkpoint", "--homes", "2", "--hours", "0.05", "--jobs", "1", "--seed", "5",
            "--out", snap.to_str().unwrap(),
        ]))
        .unwrap();
        let err = resume(&parse(&[
            "resume", "--from", snap.to_str().unwrap(), "--hours", "0.1", "--seed", "6",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("different run configuration"), "{err}");
        let err = resume(&parse(&[
            "resume", "--from", snap.to_str().unwrap(), "--hours", "0.05", "--seed", "5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("past the snapshot"), "{err}");
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn checkpoint_rejects_bad_knobs() {
        let err = checkpoint(&parse(&["checkpoint", "--homes", "1"])).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
        let err = checkpoint(&parse(&[
            "checkpoint", "--homes", "1", "--hours", "0.05", "--at", "999", "--out", "x.ckpt",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("(0, horizon]"), "{err}");
        let err = scale(&parse(&[
            "scale", "--homes", "1", "--hours", "0.05", "--checkpoint-every", "60",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--checkpoint-out"), "{err}");
    }

    #[test]
    fn serve_matches_scale_and_jobs_do_not_change_output() {
        let batch = scale(&parse(&[
            "scale", "--homes", "4", "--hours", "0.1", "--jobs", "1", "--seed", "11",
        ]))
        .unwrap();
        let served = serve(&parse(&[
            "serve", "--homes", "4", "--hours", "0.1", "--jobs", "1", "--seed", "11",
        ]))
        .unwrap();
        let parallel = serve(&parse(&[
            "serve", "--homes", "4", "--hours", "0.1", "--jobs", "8", "--seed", "11",
        ]))
        .unwrap();
        // The served body is the batch report plus one wire line; the
        // header echoes the worker count, nothing else may vary with it.
        let body = |s: &str| s.split_once('\n').unwrap().1.to_owned();
        assert!(body(&served).starts_with(&body(&batch)), "{served}");
        assert!(served.contains("wire:"), "{served}");
        assert_eq!(body(&served), body(&parallel));
    }

    #[test]
    fn serve_trace_out_writes_telemetry_jsonl() {
        let path = temp_path("serve-trace.jsonl");
        let out = serve(&parse(&[
            "serve", "--homes", "2", "--hours", "0.05", "--jobs", "1", "--seed", "3",
            "--trace-out", path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("telemetry JSONL ->"), "{out}");
        let jsonl = std::fs::read_to_string(&path).unwrap();
        assert!(jsonl.starts_with("{\"kind\":\"summary\""), "{jsonl}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loadgen_is_deterministic_above_the_timing_lines() {
        let run = || {
            loadgen(&parse(&[
                "loadgen", "--homes", "4", "--hours", "0.05", "--jobs", "2", "--seed", "7",
            ]))
            .unwrap()
        };
        let (a, b) = (run(), run());
        // Everything before the wall-clock timing is a pure function of
        // the config; only the `wall:`/latency lines may move.
        let head = |s: &str| {
            s.lines().take_while(|l| !l.trim_start().starts_with("wall:")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(head(&a), head(&b));
        assert!(a.contains("coreda-serve loadgen: 4 homes"), "{a}");
        assert!(a.contains("handshake:"), "{a}");
        assert!(a.contains("deliveries:"), "{a}");
        assert!(a.contains("wall:"), "{a}");
    }

    #[test]
    fn loadgen_rejects_a_bad_wall_factor() {
        let err = loadgen(&parse(&[
            "loadgen", "--homes", "1", "--hours", "0.05", "--wall", "-2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
    }

    #[test]
    fn fuzz_served_campaign_passes() {
        let out = fuzz(&parse(&[
            "fuzz", "--plans", "2", "--seconds", "30", "--served", "true",
        ]))
        .unwrap();
        assert!(out.contains("2 plans"), "{out}");
    }

    #[test]
    fn fuzz_campaign_with_kill_resume_passes() {
        let out = fuzz(&parse(&[
            "fuzz", "--plans", "2", "--seconds", "30", "--kill-resume", "true", "--jobs", "2",
        ]))
        .unwrap();
        assert!(out.contains("2 plans"), "{out}");
    }

    #[test]
    fn fuzz_care_campaign_passes() {
        let out = fuzz(&parse(&[
            "fuzz", "--plans", "2", "--seconds", "30", "--care", "true",
        ]))
        .unwrap();
        assert!(out.contains("2 plans"), "{out}");
    }

    #[test]
    fn scale_care_overlay_is_identical_across_jobs_and_engines() {
        let base = scale(&parse(&[
            "scale", "--homes", "4", "--hours", "0.2", "--jobs", "1", "--seed", "11",
            "--care", "true",
        ]))
        .unwrap();
        let parallel = scale(&parse(&[
            "scale", "--homes", "4", "--hours", "0.2", "--jobs", "8", "--seed", "11",
            "--care", "true",
        ]))
        .unwrap();
        let heap = scale(&parse(&[
            "scale", "--homes", "4", "--hours", "0.2", "--jobs", "8", "--seed", "11",
            "--engine", "heap", "--care", "true",
        ]))
        .unwrap();
        assert!(base.contains("caregiver escalations:"), "{base}");
        assert!(base.contains("fleet analytics:"), "{base}");
        let body = |s: &str| s.split_once('\n').unwrap().1.to_owned();
        assert_eq!(body(&base), body(&parallel));
        // The report counts raw DES events (engine-dependent), but the
        // care summary and analytics must agree across engines.
        let care_part = |s: &str| s[s.find("caregiver escalations:").unwrap()..].to_owned();
        assert_eq!(care_part(&base), care_part(&heap));
    }

    #[test]
    fn scale_care_rejects_durability_combinations() {
        let err = scale(&parse(&[
            "scale", "--homes", "2", "--hours", "0.1", "--care", "true",
            "--wal-out", "/tmp/never-written.wal",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--care cannot combine"), "{err}");
    }

    #[test]
    fn scale_care_out_writes_the_escalation_log() {
        let log = temp_path("care.log");
        let out = scale(&parse(&[
            "scale", "--homes", "4", "--hours", "0.2", "--jobs", "2", "--seed", "11",
            "--care", "true", "--care-out", log.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("escalation log ->"), "{out}");
        let text = std::fs::read_to_string(&log).unwrap();
        let _ = std::fs::remove_file(&log);
        // Every rendered line names a lifecycle stage.
        assert!(text
            .lines()
            .all(|l| l.contains("raised") || l.contains("acked") || l.contains("resolved")));
    }

    #[test]
    fn serve_care_summary_matches_the_batch_overlay() {
        let batch = scale(&parse(&[
            "scale", "--homes", "4", "--hours", "0.2", "--jobs", "1", "--seed", "11",
            "--care", "true",
        ]))
        .unwrap();
        let served = serve(&parse(&[
            "serve", "--homes", "4", "--hours", "0.2", "--jobs", "8", "--seed", "11",
            "--care", "true",
        ]))
        .unwrap();
        assert!(served.contains("wire escalations:"), "{served}");
        // Served and batch agree on the care summary: same escalations,
        // same fleet analytics, any worker count.
        let care_part = |s: &str| s[s.find("caregiver escalations:").unwrap()..].to_owned();
        assert_eq!(care_part(&batch), care_part(&served));
    }
}
