//! `coreda-cli` — the CoReDA context-aware ADL reminding system, from a
//! terminal: browse the activity catalog, generate datasets, train and
//! inspect policies, simulate guided episodes, and replay the paper's
//! Figure 1 scenario. Run `coreda-cli help` for usage.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::Parsed::from_args(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::help());
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
