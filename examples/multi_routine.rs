//! Future work §4.1: "multi-routine plan — for some ADLs, such as
//! dressing, one user may have multiple routines to complete it."
//!
//! A user who alternates between two tea-making orders defeats a planner
//! that can only represent one routine — unless the *state pair*
//! representation disambiguates them. Because CoReDA's states carry the
//! previous step, two routines that diverge after the first step remain
//! separable: the state (idle, tea-box) predicts differently from
//! (idle, pot). This example trains on both routines and checks the
//! learned policy against each.
//!
//! Run with: `cargo run --example multi_routine [seed]`

use coreda::prelude::*;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(11);

    let tea = catalog::tea_making();
    let ids = tea.step_ids();

    // Routine A: the canonical order. Routine B: hot water first.
    let a = Routine::canonical(&tea);
    let b = Routine::new(&tea, vec![ids[1], ids[0], ids[2], ids[3]]);
    let set = RoutineSet::weighted(vec![(a.clone(), 1.0), (b.clone(), 1.0)]);
    println!("Routine A: {:?}", a.steps().iter().map(ToString::to_string).collect::<Vec<_>>());
    println!("Routine B: {:?}", b.steps().iter().map(ToString::to_string).collect::<Vec<_>>());

    // Train on a 50/50 mixture of both routines.
    let generator = EpisodeGenerator::new(
        tea.clone(),
        set.clone(),
        PatientProfile::unimpaired("Ms. Mori"),
    );
    let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
    let mut rng = SimRng::seed_from(seed);
    for _ in 0..400 {
        let ep = generator.generate_clean(&mut rng);
        planner.train_episode(&ep.step_ids(), &mut rng);
    }

    println!("\nPer-routine prediction accuracy after mixed training:");
    println!("  routine A: {:.0}%", planner.accuracy_vs_routine(&a) * 100.0);
    println!("  routine B: {:.0}%", planner.accuracy_vs_routine(&b) * 100.0);

    println!("\nWhy it works — predictions key on the (previous, current) pair:");
    for routine in [&a, &b] {
        for (prev, cur, next) in routine.transitions() {
            let predicted = planner.predict_tool(prev, cur);
            let ok = if predicted == next.tool() { "✓" } else { "✗ (ambiguous)" };
            println!(
                "  ({prev:>7}, {cur:>7}) → predict {:<8} want {:<8} {ok}",
                predicted.map_or("?".to_owned(), |t| t.to_string()),
                next.to_string()
            );
        }
        println!();
    }

    println!("Note the one genuinely ambiguous state: both routines pass through");
    println!("different second steps, so every (prev, cur) pair is unique here.");
    println!("Routines that *reconverge and diverge again* would need deeper");
    println!("history — that is the open problem the paper's future work names.");
}
