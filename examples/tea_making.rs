//! The paper's Figure 1 scenario, end to end: Mr. Tanaka makes tea, grabs
//! the tea-cup too early, freezes before drinking — and CoReDA prompts
//! him through both lapses over the full sensor → radio → sensing →
//! planning → reminding pipeline.
//!
//! Run with: `cargo run --example tea_making [seed]`

use coreda::prelude::*;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2007);

    println!("CoReDA — Figure 1 scenario (seed {seed})");
    println!("----------------------------------------");
    println!("Mr. Tanaka always makes tea in four steps:");
    println!("  1) take tea-leaf from the tea-box and put it in the kettle");
    println!("  2) pour hot water from the electronic pot into the kettle");
    println!("  3) pour tea into the tea-cup");
    println!("  4) drink a cup of tea");
    println!();
    println!("Today his dementia acts up twice: he grabs the tea-cup after");
    println!("step 1, and freezes after step 3.\n");

    let log = scenario::figure1(seed);
    print!("{}", log.render());

    println!();
    for (t, reminder) in log.reminders() {
        let methods: Vec<String> = reminder
            .methods
            .iter()
            .map(|m| match m {
                ReminderMethod::TextMessage(s) => format!("text {s:?}"),
                ReminderMethod::ToolPicture(p) => format!("picture of {p}"),
                ReminderMethod::GreenLed { tool, pattern } => {
                    format!("green LED on {tool} ({} blinks)", pattern.blinks)
                }
                ReminderMethod::RedLed { tool, pattern } => {
                    format!("red LED on {tool} ({} blinks)", pattern.blinks)
                }
            })
            .collect();
        println!("reminder at {t}:");
        for m in methods {
            println!("    - {m}");
        }
    }

    match log.completed_at() {
        Some(t) => println!("\nTea made at {t}, with {} praises.", log.praise_count()),
        None => println!("\nThe episode did not complete — try another seed."),
    }
}
