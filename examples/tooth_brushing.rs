//! Tooth-brushing with a moderately impaired patient, watched over many
//! mornings: CoReDA learns the routine offline, then guides live episodes
//! while continuing to learn online, and we track how its help evolves.
//!
//! Run with: `cargo run --example tooth_brushing [mornings] [seed]`

use coreda::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let mornings: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let tooth = catalog::tooth_brushing();
    let routine = Routine::canonical(&tooth);

    // This user has moderate dementia: frequent freezes and wrong grabs.
    let profile = PatientProfile::moderate("Mrs. Sato");
    println!(
        "Patient: {} (wrong-tool {:.0}%, freeze {:.0}%, compliance {:.0}%)\n",
        profile.name(),
        profile.wrong_tool_prob() * 100.0,
        profile.forget_prob() * 100.0,
        profile.compliance() * 100.0
    );

    // Offline training from recorded episodes (with realistic slips in
    // the recordings — the planner filters what it can't use).
    let config = CoredaConfig { online_learning: true, ..CoredaConfig::default() };
    let mut system = Coreda::new(tooth.clone(), "Mrs. Sato", config, seed);
    let generator = EpisodeGenerator::new(
        tooth.clone(),
        RoutineSet::single(routine.clone()),
        PatientProfile::mild("Mrs. Sato"),
    );
    let mut rng = SimRng::seed_from(seed ^ 0xAAAA);
    let episodes = generator.generate_batch(120, &mut rng);
    system.train_offline(&episodes, &mut rng);
    println!(
        "Offline training done: routine accuracy {:.0}%\n",
        system.planner().accuracy_vs_routine(&routine) * 100.0
    );

    // Live mornings.
    println!("{:<9} {:>11} {:>10} {:>8}", "morning", "completion", "reminders", "praises");
    let mut live_rng = SimRng::seed_from(seed ^ 0xBBBB);
    for morning in 1..=mornings {
        let mut behavior = StochasticBehavior::new(profile.clone());
        let log = system.run_live(&routine, &mut behavior, &mut live_rng);
        let completion = log
            .completed_at()
            .map_or("timed out".to_owned(), |t| format!("{:.1}s", t.as_secs_f64()));
        println!(
            "{:<9} {:>11} {:>10} {:>8}",
            morning,
            completion,
            log.reminders().len(),
            log.praise_count()
        );
    }

    println!(
        "\nPlanner has now seen {} episodes (offline + online).",
        system.planner().episodes_trained()
    );
}
