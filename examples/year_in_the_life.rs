//! A year in the life: dementia progresses, CoReDA keeps up, the care
//! team gets quarterly reports.
//!
//! Ties the longitudinal pieces together: the severity trajectory from
//! `coreda-adl::drift`, live guided episodes, caregiver `DailyReport`s
//! aggregated per quarter, and policy persistence between "server
//! restarts" at each quarter boundary.
//!
//! Run with: `cargo run --release --example year_in_the_life [seed]`

use coreda::adl::drift::SeverityTrajectory;
use coreda::core::persistence;
use coreda::core::report::DailyReport;
use coreda::prelude::*;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2007);

    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let trajectory = SeverityTrajectory::default();

    // Initial deployment: learn the routine from recordings.
    let mut system = Coreda::new(tea.clone(), "Mr. Tanaka", CoredaConfig::default(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0x1EA);
    for _ in 0..200 {
        system.planner_mut().train_episode(routine.steps(), &mut rng);
    }
    let mut policy_blob = persistence::save_policy(system.planner());
    println!("Deployed. Learned policy is {} bytes.\n", policy_blob.len());

    let episodes_per_sampled_day = 3;
    for quarter in 0..4u32 {
        // Simulate a server restart at each quarter: rebuild, restore.
        let mut system =
            Coreda::new(tea.clone(), "Mr. Tanaka", CoredaConfig::default(), seed + u64::from(quarter));
        persistence::restore_policy(system.planner_mut(), &policy_blob)
            .expect("the saved policy matches the ADL");

        let mut logs = Vec::new();
        for week in 0..3u32 {
            let day = quarter * 90 + week * 30;
            let profile = trajectory.profile_on_day("Mr. Tanaka", day);
            for _ in 0..episodes_per_sampled_day {
                let mut behavior = StochasticBehavior::new(profile.clone());
                logs.push(system.run_live(&routine, &mut behavior, &mut rng));
            }
        }
        let report = DailyReport::from_logs(
            "Mr. Tanaka",
            format!("Q{} (days {}-{})", quarter + 1, quarter * 90, quarter * 90 + 89),
            &logs,
        );
        print!("{}", report.render());
        println!(
            "  minimal-level share: {:.0}%\n",
            report.minimal_fraction() * 100.0
        );
        policy_blob = persistence::save_policy(system.planner());
    }

    let late = trajectory.profile_on_day("Mr. Tanaka", 360);
    println!(
        "By year's end the patient freezes at {:.0}% of boundaries (was {:.0}%),\n\
         yet the learned policy — persisted across every restart — keeps\n\
         guiding each episode to completion.",
        late.forget_prob() * 100.0,
        trajectory.profile_on_day("Mr. Tanaka", 0).forget_prob() * 100.0
    );
}
