//! Design criterion 4: "It should easily generalize to other ADLs."
//!
//! This example defines a brand-new activity — hand-washing, the domain
//! of Boger et al.'s planning system the paper cites — entirely through
//! the public API, and runs the whole stack on it: sensing calibration,
//! routine learning, and a live guided episode. No code in the library
//! knows about hand-washing.
//!
//! Run with: `cargo run --example custom_adl [seed]`

use coreda::prelude::*;

fn hand_washing() -> AdlSpec {
    // One PAVENET node per tool: configure its uid as the tool id and go.
    let acc = |duty: f64| SignalModel::accelerometer(0.03, 0.45, duty);
    let tools = vec![
        Tool::new(ToolId::new(20), "tap", acc(0.5)),
        Tool::new(ToolId::new(21), "soap", acc(0.6)),
        Tool::new(ToolId::new(22), "nail-brush", acc(0.7)),
        Tool::new(ToolId::new(23), "hand-towel", acc(0.35)),
    ];
    let steps = vec![
        Step::new("Turn on the tap and wet hands", ToolId::new(20), 4.0, 0.8),
        Step::new("Lather with soap", ToolId::new(21), 6.0, 1.2),
        Step::new("Scrub with the nail brush", ToolId::new(22), 5.0, 1.0),
        Step::new("Dry with the hand towel", ToolId::new(23), 4.0, 0.8),
    ];
    AdlSpec::new("Hand-washing", tools, steps)
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5);

    let washing = hand_washing();
    println!("New activity defined through the public API: {washing}\n");

    // This user lathers *before* wetting their hands — a personal routine
    // the pre-planned baseline cannot serve.
    let ids = washing.step_ids();
    let personal = Routine::new(&washing, vec![ids[1], ids[0], ids[2], ids[3]]);
    println!("Personal routine: lather first, then wet, scrub, dry.\n");

    let mut system = Coreda::new(washing.clone(), "Mr. Lee", CoredaConfig::default(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0x1234);
    for _ in 0..150 {
        system.planner_mut().train_episode(personal.steps(), &mut rng);
    }
    println!(
        "Learned the personal routine: accuracy {:.0}%",
        system.planner().accuracy_vs_routine(&personal) * 100.0
    );

    // The canonical baseline gets this user wrong.
    let baseline = CanonicalReminder::new(&washing);
    let baseline_acc = coreda::core::baseline::routine_accuracy(&baseline, &personal);
    println!("Pre-planned baseline on the same user: {:.0}%\n", baseline_acc * 100.0);

    // A live episode with a freeze: the prompt is routine-aware.
    let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
    let log = system.run_live(&personal, &mut behavior, &mut rng);
    print!("{}", log.render());
    match log.completed_at() {
        Some(t) => println!("\nHands washed at {t}."),
        None => println!("\nEpisode did not complete."),
    }
}
