//! A whole instrumented home: several activities, one user — with the
//! learned routines persisted across a (simulated) server restart.
//!
//! Run with: `cargo run --example smart_home [seed]`

use coreda::core::persistence;
use coreda::prelude::*;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2007);

    // Install both of the paper's activities behind one base station.
    let mut home = CoredaHome::new("Mr. Tanaka", CoredaConfig::default(), seed);
    home.install(catalog::tea_making()).expect("fresh home");
    home.install(catalog::tooth_brushing()).expect("distinct tools");
    println!("Installed activities:");
    for name in home.activities() {
        println!("  - {name}");
    }
    println!(
        "\nTool routing: pot → {:?}, brush → {:?}",
        home.owner_of(ToolId::new(catalog::POT)).unwrap(),
        home.owner_of(ToolId::new(catalog::BRUSH)).unwrap()
    );

    // Weeks of recordings teach each activity's routine.
    let mut rng = SimRng::seed_from(seed ^ 0xC0FFEE);
    let mut blobs = Vec::new();
    for name in ["Tea-making", "Tooth-brushing"] {
        let spec = home.system(name).expect("installed").spec().clone();
        let routine = Routine::canonical(&spec);
        for _ in 0..200 {
            home.system_mut(name)
                .expect("installed")
                .planner_mut()
                .train_episode(routine.steps(), &mut rng);
        }
        let acc = home.system(name).expect("installed").planner().accuracy_vs_routine(&routine);
        let blob = persistence::save_policy(home.system(name).expect("installed").planner());
        println!("\n{name}: learned to {:.0}%, policy saved ({} bytes)", acc * 100.0, blob.len());
        blobs.push((name, spec, routine, blob));
    }

    // The server reboots: all learned state is gone…
    println!("\n-- server restart --");
    let mut home = CoredaHome::new("Mr. Tanaka", CoredaConfig::default(), seed + 1);
    home.install(catalog::tea_making()).expect("fresh home");
    home.install(catalog::tooth_brushing()).expect("distinct tools");

    // …until the persisted policies are restored.
    for (name, _spec, routine, blob) in &blobs {
        let planner = home.system_mut(name).expect("installed").planner_mut();
        persistence::restore_policy(planner, blob).expect("valid blob");
        let acc = home.system(name).expect("installed").planner().accuracy_vs_routine(routine);
        println!("{name}: restored, accuracy {:.0}%", acc * 100.0);
    }

    // And guidance works immediately, no retraining.
    let (_, spec, routine, _) = &blobs[0];
    let mut behavior = StochasticBehavior::new(PatientProfile::moderate("Mr. Tanaka"));
    let log = home
        .run_live(spec.name(), routine, &mut behavior, &mut rng)
        .expect("installed");
    println!("\nFirst episode after restart ({}):", spec.name());
    print!("{}", log.render());
    println!(
        "\nHome-wide energy so far: {:.1} mJ",
        home.total_energy_uj() / 1000.0
    );
}
