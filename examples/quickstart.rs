//! Quick start: learn Mr. Tanaka's tea-making routine and ask CoReDA what
//! he should do next at every point of the activity.
//!
//! Run with: `cargo run --example quickstart`

use coreda::prelude::*;

fn main() {
    // The paper's Tea-making ADL: four steps, four instrumented tools.
    let tea = catalog::tea_making();
    println!("Activity: {tea}");
    for (i, step) in tea.steps().iter().enumerate() {
        let tool = tea.tool(step.tool()).expect("spec is validated");
        println!("  step {}: {:<28} ({} on {})", i + 1, step.name(), tool.sensor(), tool.name());
    }

    // Mr. Tanaka's personal routine happens to follow the canonical order.
    let routine = Routine::canonical(&tea);

    // Learn it from 120 recorded episodes, as in the paper's evaluation.
    let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
    let mut rng = SimRng::seed_from(2007);
    for _ in 0..120 {
        planner.train_episode(routine.steps(), &mut rng);
    }
    println!("\nTrained on {} episodes.", planner.episodes_trained());

    // Ask for the prompt at every state along the routine.
    let reminding = RemindingSubsystem::new("Mr. Tanaka");
    println!("\nLearned guidance:");
    for (prev, cur, next) in routine.transitions() {
        let prompt = planner.predict(prev, cur).expect("states are in the ADL");
        let reminder = reminding.compose(prompt, Trigger::IdleTimeout, &tea);
        let text = reminder
            .methods
            .iter()
            .find_map(|m| match m {
                ReminderMethod::TextMessage(t) => Some(t.as_str()),
                _ => None,
            })
            .expect("reminders always carry text");
        let ok = if Some(prompt.tool) == next.tool() { "✓" } else { "✗" };
        println!("  after ({prev}, {cur}): {text} [{}] {ok}", prompt.level);
    }

    let accuracy = planner.accuracy_vs_routine(&routine);
    println!("\nRoutine prediction accuracy: {:.0}%", accuracy * 100.0);
}
